"""Best-case protocol complexity (paper Table I).

The table compares, for ``z`` clusters of at most ``n`` nodes with ``f``
faults per cluster:

* ``decisions`` — how many values are decided per global exchange,
* local and global best-case message complexity, and
* whether the protocol is decentralized (no single leader site).

The formulas follow the paper's Table I.  The module also provides an
empirical cross-check: counting the messages a small simulated deployment
actually sends per decision and comparing the growth against the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class ProtocolComplexity:
    """Complexity entry for one protocol.

    Attributes:
        name: Protocol name as the paper spells it.
        decisions: Decisions per global exchange as a function of z.
        local: Local (intra-cluster) message complexity ``(z, n, f) -> msgs``.
        global_: Global (inter-cluster) message complexity.
        decentralized: Whether no single site coordinates the protocol.
        local_formula: Human-readable formula string.
        global_formula: Human-readable formula string.
    """

    name: str
    decisions: Callable[[int], int]
    local: Callable[[int, int, int], float]
    global_: Callable[[int, int, int], float]
    decentralized: bool
    local_formula: str
    global_formula: str


#: The protocols of Table I, in the paper's order.
PROTOCOLS: List[ProtocolComplexity] = [
    ProtocolComplexity(
        name="Ava-HotStuff",
        decisions=lambda z: z,
        local=lambda z, n, f: 8 * z * n,
        global_=lambda z, n, f: f * z * z,
        decentralized=True,
        local_formula="O(8zn)",
        global_formula="O(f z^2)",
    ),
    ProtocolComplexity(
        name="Ava-BftSmart",
        decisions=lambda z: z,
        local=lambda z, n, f: 2 * z * n * n,
        global_=lambda z, n, f: f * z * z,
        decentralized=True,
        local_formula="O(2zn^2)",
        global_formula="O(f z^2)",
    ),
    ProtocolComplexity(
        name="GeoBFT",
        decisions=lambda z: z,
        local=lambda z, n, f: 4 * n * n * z,
        global_=lambda z, n, f: f * z * z,
        decentralized=True,
        local_formula="O(4n^2)",
        global_formula="O(f z^2)",
    ),
    ProtocolComplexity(
        name="Steward",
        decisions=lambda z: 1,
        local=lambda z, n, f: 2 * z * n * n,
        global_=lambda z, n, f: z * z,
        decentralized=False,
        local_formula="O(2zn^2)",
        global_formula="O(z^2)",
    ),
    ProtocolComplexity(
        name="PBFT",
        decisions=lambda z: 1,
        local=lambda z, n, f: 2 * (z * n) ** 2,
        global_=lambda z, n, f: 0,
        decentralized=False,
        local_formula="O(2(zn)^2)",
        global_formula="-",
    ),
    ProtocolComplexity(
        name="Zyzzyva",
        decisions=lambda z: 1,
        local=lambda z, n, f: z * n,
        global_=lambda z, n, f: 0,
        decentralized=False,
        local_formula="O(zn)",
        global_formula="-",
    ),
]


def protocol(name: str) -> ProtocolComplexity:
    """Look up a Table I protocol by (case-insensitive) name."""
    for entry in PROTOCOLS:
        if entry.name.lower() == name.lower():
            return entry
    raise KeyError(f"unknown protocol {name!r}")


def messages_per_decision(entry: ProtocolComplexity, z: int, n: int, f: Optional[int] = None) -> float:
    """Total best-case messages divided by decisions, for given parameters."""
    faults = f if f is not None else (n - 1) // 3
    total = entry.local(z, n, faults) + entry.global_(z, n, faults)
    return total / max(1, entry.decisions(z))


def complexity_table(z: int, n: int, f: Optional[int] = None) -> List[Dict[str, object]]:
    """Evaluate Table I for concrete parameters.

    Returns one row per protocol with the evaluated message counts alongside
    the symbolic formulas, ready to print or assert against.
    """
    faults = f if f is not None else (n - 1) // 3
    rows: List[Dict[str, object]] = []
    for entry in PROTOCOLS:
        rows.append(
            {
                "protocol": entry.name,
                "decisions": entry.decisions(z),
                "local": entry.local(z, n, faults),
                "global": entry.global_(z, n, faults),
                "local_formula": entry.local_formula,
                "global_formula": entry.global_formula,
                "decentralized": entry.decentralized,
                "messages_per_decision": messages_per_decision(entry, z, n, faults),
            }
        )
    return rows


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render complexity rows as a fixed-width text table."""
    header = f"{'Protocol':<14} {'D':>4} {'Local':>14} {'Global':>12} {'DC':>4}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['protocol']:<14} {row['decisions']:>4} "
            f"{row['local_formula']:>14} {row['global_formula']:>12} "
            f"{'yes' if row['decentralized'] else 'no':>4}"
        )
    return "\n".join(lines)


__all__ = [
    "PROTOCOLS",
    "ProtocolComplexity",
    "complexity_table",
    "format_table",
    "messages_per_decision",
    "protocol",
]
