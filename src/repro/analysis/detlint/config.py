"""Rule scoping: which packages own which invariants.

Scopes are expressed over *module-relative* posix paths: for any file whose
absolute path contains a ``repro`` directory, the path from that directory
on (``repro/net/adversity.py``); otherwise the path as given on the command
line (``tests/test_x.py``).  Keeping the scope map here — instead of inside
each rule — makes the ownership story reviewable in one place and lets the
test suite point rules at fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple


def _default_hot_path_classes() -> Dict[str, FrozenSet[str]]:
    return {
        "repro/sim/events.py": frozenset({"Event", "EventQueue"}),
        "repro/sim/simulator.py": frozenset({"Timer", "DeadlinePool", "PooledTimer"}),
        "repro/net/message.py": frozenset({"Envelope"}),
        "repro/net/crypto.py": frozenset({"Signature"}),
        "repro/net/network.py": frozenset({"_Port"}),
    }


@dataclass(frozen=True)
class LintConfig:
    """Scoping knobs shared by every rule.

    Attributes:
        package_root: Prefix of module paths that belong to the simulation
            package; rules never fire outside it (tests and benchmarks are
            scanned, but own none of these invariants directly).
        shard_owned: Packages whose state lives inside per-cluster
            ``Shard``s — where iteration order and module-level mutation
            are serial-vs-sharded parity hazards (DET003/DET004/DET005).
        wallclock_exempt: Packages allowed to read the host clock: the
            harness measures real wall time (``ResultRow.wall_seconds``)
            and the analysis tools are offline (DET001).
        rng_home: The single module allowed to construct raw
            ``random.Random`` streams (DET002).
        rng_exempt: Offline packages exempt from DET002 (analysis tooling).
        hot_path_classes: ``{module: {class, ...}}`` — instance-heavy
            classes that must declare ``__slots__`` (SLOT001), on top of
            the always-checked ``Message`` subclasses.
        message_registry: ``(module, name)`` of the protocol-message
            registry tuple; every ``Message`` subclass defined in that
            module must be listed in it (REG001).
        spec_root_class: Name of the serializable-spec root; every
            dataclass reachable from its field annotations must be
            tagged-dict JSON-serializable (SER001).
    """

    package_root: str = "repro/"
    shard_owned: Tuple[str, ...] = ("repro/core/", "repro/net/", "repro/consensus/", "repro/sim/")
    wallclock_exempt: Tuple[str, ...] = ("repro/harness/", "repro/analysis/")
    rng_home: str = "repro/sim/rng.py"
    rng_exempt: Tuple[str, ...] = ("repro/analysis/",)
    hot_path_classes: Dict[str, FrozenSet[str]] = field(default_factory=_default_hot_path_classes)
    message_registry: Tuple[str, str] = ("repro/core/messages.py", "CORE_MESSAGE_TYPES")
    spec_root_class: str = "ScenarioSpec"

    def in_package(self, module_rel: str) -> bool:
        return module_rel.startswith(self.package_root)

    def is_shard_owned(self, module_rel: str) -> bool:
        return module_rel.startswith(self.shard_owned)


DEFAULT_CONFIG = LintConfig()

__all__ = ["DEFAULT_CONFIG", "LintConfig"]
