"""Inline suppressions: ``# detlint: disable=RULE[,RULE...] [-- rationale]``.

A suppression comment sanctions findings *on its own physical line*; a
``disable-file=`` form within the first ten lines sanctions a rule for the
whole module.  The free-text rationale after ``--`` is not parsed — it is
the reviewable justification the suppression carries at the site, which is
the policy: a disable without a why does not survive review.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

_LINE_RE = re.compile(r"#\s*detlint:\s*disable=([A-Z0-9*,\s]+?)(?:\s*--.*)?$")
_FILE_RE = re.compile(r"#\s*detlint:\s*disable-file=([A-Z0-9*,\s]+?)(?:\s*--.*)?$")

#: How deep into the module a ``disable-file=`` marker may appear.
_FILE_MARKER_WINDOW = 10


def _parse_codes(raw: str) -> FrozenSet[str]:
    return frozenset(code.strip() for code in raw.split(",") if code.strip())


class SuppressionIndex:
    """Per-line and per-file suppressed rule codes for one module."""

    def __init__(self, source_lines: List[str]) -> None:
        self._by_line: Dict[int, FrozenSet[str]] = {}
        self._file_wide: FrozenSet[str] = frozenset()
        for lineno, text in enumerate(source_lines, start=1):
            match = _LINE_RE.search(text)
            if match:
                self._by_line[lineno] = _parse_codes(match.group(1))
            if lineno <= _FILE_MARKER_WINDOW:
                file_match = _FILE_RE.search(text)
                if file_match:
                    self._file_wide = self._file_wide | _parse_codes(file_match.group(1))

    def suppresses(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is sanctioned at ``line``."""
        if rule in self._file_wide or "*" in self._file_wide:
            return True
        codes = self._by_line.get(line)
        if codes is None:
            return False
        return rule in codes or "*" in codes


__all__ = ["SuppressionIndex"]
