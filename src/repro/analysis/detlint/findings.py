"""The :class:`Finding` record and its human/JSON renderings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location.

    Attributes:
        rule: Rule code, e.g. ``"DET002"``.
        path: Module-relative posix path (``repro/net/adversity.py`` for
            package files, the as-given path otherwise).  Stable across
            invocation directories, so baseline entries match anywhere.
        line: 1-based source line.
        col: 0-based column.
        message: What is wrong, concretely.
        context: Enclosing ``Class.method`` qualname (or symbol name) the
            finding lives in; the line-drift-proof half of the baseline key.
        hint: How to fix it.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    context: str = ""
    hint: str = ""

    @property
    def baseline_key(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.context}"

    def render(self) -> str:
        """One-line human rendering (``path:line:col CODE message``)."""
        where = f" ({self.context})" if self.context else ""
        hint = f"  [fix: {self.hint}]" if self.hint else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{where}{hint}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``--json`` report shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "hint": self.hint,
        }


__all__ = ["Finding"]
