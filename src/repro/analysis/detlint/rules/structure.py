"""Structural rules: SLOT001, REG001, SER001.

These encode the repo's class-level contracts: hot-path classes declare
``__slots__``, protocol messages plug into the compiled digest walker and
the CPU-cost model, and everything a :class:`ScenarioSpec` can reference
survives the JSON round-trip that carries specs across process boundaries.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.detlint.config import LintConfig
from repro.analysis.detlint.findings import Finding
from repro.analysis.detlint.rules.base import (
    ModuleFile,
    Project,
    Rule,
    annotation_is_classvar,
    class_has_slots,
    dataclass_field_annotations,
    defined_methods,
    direct_base_names,
    is_dataclass_def,
    register,
)


# ---------------------------------------------------------------------- #
# SLOT001 — __slots__ on hot-path classes
# ---------------------------------------------------------------------- #
@register
class SlotsRule(Rule):
    """SLOT001: instance-heavy classes pay per-instance ``__dict__`` rent.

    A chained-HotStuff run allocates millions of events, envelopes, and
    signatures; a ``__dict__`` per instance costs ~100 bytes and a pointer
    chase on every attribute read.  Hot-path classes (the config names
    them) and ``Message`` subclasses must declare ``__slots__`` — with one
    sanctioned exception: ``Message`` subclasses keep their digest/size
    caches in the instance ``__dict__`` (see ``Message.digest``), so every
    one of them carries a baseline entry recording that trade instead of a
    fix.  The rule still fires on *new* message classes, forcing each
    addition to either join the baseline deliberately or restructure the
    cache.
    """

    code = "SLOT001"
    title = "hot-path class without __slots__"
    hint = "declare __slots__ (or baseline the class with a rationale if it relies on __dict__ caches)"

    def check_module(self, module: ModuleFile, config: LintConfig) -> Iterator[Finding]:
        if not config.in_package(module.module_rel):
            return
        hot_names = config.hot_path_classes.get(module.module_rel, frozenset())
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            is_message = "Message" in direct_base_names(node)
            if not is_message and node.name not in hot_names:
                continue
            if class_has_slots(node):
                continue
            what = "Message subclass" if is_message else "hot-path class"
            yield self.finding(
                module,
                node,
                f"{what} {node.name} allocates a per-instance __dict__",
                context=node.name,
            )


# ---------------------------------------------------------------------- #
# REG001 — protocol-message contract
# ---------------------------------------------------------------------- #
def _annotation_text(annotation: ast.expr) -> str:
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse covers all shipped grammar
        return ""


def _carries_certificate(class_node: ast.ClassDef) -> Optional[str]:
    """Name of the first field whose type implies quorum verification.

    A bare ``Signature`` (or ``Optional[Signature]``) is one verify — the
    default ``verification_cost`` of 1 is already right.  A ``Certificate``
    or any *container* of signatures means an O(quorum) check.
    """
    for stmt in dataclass_field_annotations(class_node):
        if not isinstance(stmt.target, ast.Name) or annotation_is_classvar(stmt.annotation):
            continue
        text = _annotation_text(stmt.annotation)
        if "Certificate" in text:
            return stmt.target.id
        if "Signature" in text and text not in ("Signature", "Optional[Signature]"):
            return stmt.target.id
    return None


@register
class MessageContractRule(Rule):
    """REG001: every protocol message plugs into the shared machinery.

    Three contracts travel with a ``Message`` subclass: it must be a
    ``@dataclass`` (the compiled digest walker enumerates ``fields()``; a
    plain class silently digests to the empty field tuple), a message whose
    fields carry a :class:`Certificate` or a quorum of ``Signature``s must
    override ``verification_cost`` (otherwise the receiver-side CPU model
    bills one scalar verify for an O(n) certificate check — the exact
    distortion PR 9's accounting fixed), and every message defined in the
    core registry module must be listed in ``CORE_MESSAGE_TYPES`` so the
    wire-compatibility goldens see it.
    """

    code = "REG001"
    title = "Message subclass violates the registry/digest/cost contract"
    hint = "make it a @dataclass, add verification_cost() for certificate payloads, list it in the registry"

    def check_module(self, module: ModuleFile, config: LintConfig) -> Iterator[Finding]:
        if not config.in_package(module.module_rel):
            return
        registry_module, registry_name = config.message_registry
        registry: Optional[Set[str]] = None
        if module.module_rel == registry_module:
            registry = self._registry_members(module, registry_name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or "Message" not in direct_base_names(node):
                continue
            if not is_dataclass_def(node):
                yield self.finding(
                    module,
                    node,
                    f"Message subclass {node.name} is not a @dataclass "
                    "(the compiled digest walker would see zero fields)",
                    context=node.name,
                )
            cert_field = _carries_certificate(node)
            if cert_field is not None and "verification_cost" not in defined_methods(node):
                yield self.finding(
                    module,
                    node,
                    f"{node.name}.{cert_field} carries certificate/signature material "
                    "but the class does not override verification_cost()",
                    context=node.name,
                )
            if registry is not None and node.name not in registry:
                yield self.finding(
                    module,
                    node,
                    f"{node.name} is defined in the registry module but missing "
                    f"from {registry_name}",
                    context=node.name,
                )

    @staticmethod
    def _registry_members(module: ModuleFile, registry_name: str) -> Optional[Set[str]]:
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == registry_name for t in stmt.targets):
                continue
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                return {elt.id for elt in stmt.value.elts if isinstance(elt, ast.Name)}
        return None


# ---------------------------------------------------------------------- #
# SER001 — ScenarioSpec-reachable dataclasses must round-trip JSON
# ---------------------------------------------------------------------- #
_SAFE_SCALARS = frozenset({"str", "int", "float", "bool", "bytes", "None", "object", "Ellipsis"})
_SAFE_CONTAINERS = frozenset({"List", "list", "Tuple", "tuple", "Sequence", "Iterable", "FrozenSet"})
_SAFE_MAPPINGS = frozenset({"Dict", "dict", "Mapping", "MutableMapping"})
_UNION_HEADS = frozenset({"Optional", "Union"})


def _head_name(annotation: ast.expr) -> str:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr
    return getattr(target, "id", "")


class _SpecIndex:
    """Cross-module class/alias/serializer indexes for SER001."""

    def __init__(self, project: Project, config: LintConfig) -> None:
        self.classes: Dict[str, Tuple[ModuleFile, ast.ClassDef]] = {}
        self.aliases: Dict[str, ast.expr] = {}
        to_funcs: Set[str] = set()
        from_funcs: Set[str] = set()
        for module in project.modules:
            if not config.in_package(module.module_rel):
                continue
            for stmt in module.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    self.classes.setdefault(stmt.name, (module, stmt))
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name) and _head_name(stmt.value) in _UNION_HEADS:
                        self.aliases[target.id] = stmt.value
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if stmt.name.endswith("_to_dict") and stmt.args.args:
                        to_funcs.add(_annotation_name(stmt.args.args[0].annotation))
                    elif stmt.name.endswith("_from_dict"):
                        from_funcs.add(_annotation_name(stmt.returns))
        #: Classes with a module-level serializer pair (population_to_dict, ...).
        self.module_serialized = to_funcs & from_funcs

    def equipped(self, class_node: ast.ClassDef) -> bool:
        """Whether a class carries its own tagged-dict serializer."""
        methods = defined_methods(class_node)
        if "to_dict" in methods and "from_dict" in methods:
            return True
        return class_node.name in self.module_serialized


def _annotation_name(annotation: Optional[ast.expr]) -> str:
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split("[")[0].strip()
    return _head_name(annotation)


@register
class SpecSerializationRule(Rule):
    """SER001: specs cross process boundaries as JSON, or not at all.

    ``ScenarioSpec`` travels to forked shard workers, into result-row
    manifests, and through the scenario-pack files — always via
    ``to_dict``/``from_dict``.  A dataclass that becomes reachable from a
    spec field without either (a) its own serializer pair or (b) fields
    that are all plainly JSON-representable will pickle fine in-process
    and then fail (or worse: silently lose data) on the first
    multiprocess or file-backed run.  This rule walks the annotation graph
    from the spec root and flags the first unserializable field on every
    reachable, unequipped dataclass.
    """

    code = "SER001"
    title = "ScenarioSpec-reachable dataclass is not JSON-serializable"
    hint = "give the class to_dict/from_dict (or *_to_dict/*_from_dict module functions), or restrict its fields to JSON-safe types"

    def check_project(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        index = _SpecIndex(project, config)
        root = index.classes.get(config.spec_root_class)
        if root is None or not is_dataclass_def(root[1]):
            return
        visited: Set[str] = set()
        queue: List[str] = [config.spec_root_class]
        while queue:
            name = queue.pop(0)
            if name in visited:
                continue
            visited.add(name)
            entry = index.classes.get(name)
            if entry is None:
                continue
            module, class_node = entry
            if not is_dataclass_def(class_node):
                continue
            equipped = index.equipped(class_node)
            for stmt in dataclass_field_annotations(class_node):
                if not isinstance(stmt.target, ast.Name) or annotation_is_classvar(stmt.annotation):
                    continue
                safe, referenced = self._classify(stmt.annotation, index)
                # Reachability flows through equipped classes (their custom
                # serializers delegate to the referenced types' serializers),
                # but their own fields are not judged — the serializer pair
                # owns the encoding of whatever the annotations say.
                queue.extend(referenced)
                if equipped:
                    continue
                if not safe:
                    yield self.finding(
                        module,
                        stmt,
                        f"{name}.{stmt.target.id} is typed "
                        f"{_annotation_text(stmt.annotation)!r}, which does not "
                        "survive the tagged-dict JSON round-trip",
                        context=f"{name}.{stmt.target.id}",
                    )

    def _classify(self, annotation: ast.expr, index: _SpecIndex) -> Tuple[bool, List[str]]:
        """``(json_safe, referenced_class_names)`` for one annotation."""
        referenced: List[str] = []

        def walk(node: ast.expr) -> bool:
            if isinstance(node, ast.Constant):
                if node.value is None or node.value is Ellipsis:
                    return True
                if isinstance(node.value, str):
                    name = node.value.split("[")[0].strip()
                    return walk(ast.Name(id=name))
                return False
            head = _head_name(node)
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
                return walk(node.left) and walk(node.right)
            if not isinstance(node, ast.Subscript):
                if head in _SAFE_SCALARS:
                    return True
                if head in index.aliases:
                    referenced.append(head)
                    return walk(index.aliases[head])
                if head in index.classes:
                    referenced.append(head)
                    _, class_node = index.classes[head]
                    return is_dataclass_def(class_node)
                return False
            if head in _UNION_HEADS:
                elts = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
                return all(walk(elt) for elt in elts)
            if head in _SAFE_CONTAINERS:
                elts = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
                return all(walk(elt) for elt in elts)
            if head in _SAFE_MAPPINGS:
                if isinstance(node.slice, ast.Tuple) and len(node.slice.elts) == 2:
                    key, value = node.slice.elts
                    return _head_name(key) in ("str", "int") and walk(value)
                return False
            if head == "ClassVar":
                return True
            return False

        return walk(annotation), referenced


__all__ = ["MessageContractRule", "SlotsRule", "SpecSerializationRule"]
