"""Rule protocol, registry, and the shared AST toolbox."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Type

from repro.analysis.detlint.config import LintConfig
from repro.analysis.detlint.findings import Finding

#: Ordered registry of rule classes, populated by :func:`register`.
RULE_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(rule_cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the registry (import-order stable)."""
    RULE_REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


class Rule:
    """One statically checkable invariant.

    Subclasses set ``code``/``title``/``hint`` and override
    :meth:`check_module` (per-file rules) and/or :meth:`check_project`
    (cross-file rules — run once after every module is parsed).
    """

    code: str = ""
    title: str = ""
    hint: str = ""

    def check_module(self, module: "ModuleFile", config: LintConfig) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "Project", config: LintConfig) -> Iterator[Finding]:
        return iter(())

    def finding(
        self,
        module: "ModuleFile",
        node: ast.AST,
        message: str,
        context: str = "",
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` with this rule's defaults."""
        return Finding(
            rule=self.code,
            path=module.module_rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            context=context or module.context_of(node),
            hint=self.hint if hint is None else hint,
        )


# ---------------------------------------------------------------------- #
# Parsed-module model
# ---------------------------------------------------------------------- #
class ModuleFile:
    """One parsed source file plus the derived indexes rules share."""

    def __init__(self, path: str, module_rel: str, source: str) -> None:
        self.path = path
        self.module_rel = module_rel
        self.source_lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._contexts: Dict[int, str] = {}
        self._annotate_contexts(self.tree, "")
        #: ``alias -> dotted module`` for ``import x [as y]`` and
        #: ``name -> "module.name"`` for ``from module import name [as y]``.
        self.import_map: Dict[str, str] = {}
        self._index_imports()

    # -- enclosing-scope qualnames ------------------------------------- #
    def _annotate_contexts(self, node: ast.AST, context: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_context = context
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                child_context = f"{context}.{child.name}" if context else child.name
            self._contexts[id(child)] = child_context
            self._annotate_contexts(child, child_context)

    def context_of(self, node: ast.AST) -> str:
        """Qualname of the class/function enclosing ``node`` ('' at top level)."""
        return self._contexts.get(id(node), "")

    # -- imports -------------------------------------------------------- #
    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_map[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.import_map[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve_call_name(self, func: ast.expr) -> str:
        """Fully qualified dotted name of a call target, best effort.

        ``time()`` after ``from time import time`` resolves to
        ``"time.time"``; ``dt.now()`` after ``import datetime as dt`` to
        ``"datetime.now"`` — callers match on prefixes, so attribute chains
        through un-importable roots return ``""``.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        root = self.import_map.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Project:
    """Every parsed module of one run, for cross-file rules."""

    def __init__(self, modules: List[ModuleFile]) -> None:
        self.modules = modules

    def find(self, module_rel: str) -> Optional[ModuleFile]:
        for module in self.modules:
            if module.module_rel == module_rel:
                return module
        return None


# ---------------------------------------------------------------------- #
# Shared AST predicates
# ---------------------------------------------------------------------- #
def class_has_slots(node: ast.ClassDef) -> bool:
    """Whether a class body assigns ``__slots__`` or uses ``@dataclass(slots=True)``."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots" and isinstance(keyword.value, ast.Constant):
                    if keyword.value.value is True:
                        return True
    return False


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """Whether a class is decorated with ``@dataclass`` (bare or called)."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def direct_base_names(node: ast.ClassDef) -> List[str]:
    """Unqualified names of a class's direct bases."""
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def defined_methods(node: ast.ClassDef) -> List[str]:
    """Names of methods defined directly in a class body."""
    return [
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def dataclass_field_annotations(node: ast.ClassDef) -> List[ast.AnnAssign]:
    """The class body's annotated assignments (dataclass field declarations)."""
    return [stmt for stmt in node.body if isinstance(stmt, ast.AnnAssign)]


def annotation_is_classvar(annotation: ast.expr) -> bool:
    """Whether an annotation is ``ClassVar[...]`` (not a dataclass field)."""
    target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
    return name == "ClassVar"


__all__ = [
    "ModuleFile",
    "Project",
    "RULE_REGISTRY",
    "Rule",
    "annotation_is_classvar",
    "class_has_slots",
    "dataclass_field_annotations",
    "defined_methods",
    "direct_base_names",
    "is_dataclass_def",
    "register",
]
