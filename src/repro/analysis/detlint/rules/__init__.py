"""Rule registry: importing this package registers every shipped rule."""

from __future__ import annotations

from typing import List

from repro.analysis.detlint.rules import determinism as _determinism  # noqa: F401
from repro.analysis.detlint.rules import structure as _structure  # noqa: F401
from repro.analysis.detlint.rules.base import RULE_REGISTRY, Rule

#: Rule codes in registration (== documentation) order.
RULES = tuple(RULE_REGISTRY)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in stable code order."""
    return [RULE_REGISTRY[code]() for code in sorted(RULE_REGISTRY)]


__all__ = ["RULES", "all_rules"]
