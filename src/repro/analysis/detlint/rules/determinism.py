"""Determinism rules: DET001–DET005.

These guard the dynamic invariants the parity suites and the determinism
probe enforce at runtime — same seed ⇒ same bytes, same results under
every shard layout — by flagging the static patterns that historically
break them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.detlint.config import LintConfig
from repro.analysis.detlint.findings import Finding
from repro.analysis.detlint.rules.base import ModuleFile, Rule, register

# ---------------------------------------------------------------------- #
# DET001 — wall clock / host entropy
# ---------------------------------------------------------------------- #
#: Exact call targets that read the host clock or entropy pool.
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid3",
        "uuid.uuid4",
        "uuid.uuid5",
    }
)


@register
class WallClockRule(Rule):
    """DET001: simulation code must live on virtual time only.

    A ``time.time()`` (or ``datetime.now`` / ``os.urandom`` / ``uuid``)
    inside the simulated system injects the *host's* clock or entropy into
    results: two identically seeded runs diverge, and the fixed-seed
    fingerprint gate turns red with no pointer to why.  Only the harness —
    which measures real wall-clock cost (``ResultRow.wall_seconds``) — and
    the offline analysis tools may read the host clock.
    """

    code = "DET001"
    title = "wall-clock/entropy call in simulation code"
    hint = "use the kernel's virtual clock (simulator.now) or a SeededRng stream"

    def check_module(self, module: ModuleFile, config: LintConfig) -> Iterator[Finding]:
        if not config.in_package(module.module_rel):
            return
        if module.module_rel.startswith(config.wallclock_exempt):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call_name(node.func)
            if name in _WALLCLOCK_CALLS or name.startswith("secrets."):
                yield self.finding(module, node, f"call to {name}() reads host clock/entropy")


# ---------------------------------------------------------------------- #
# DET002 — raw random streams outside sim/rng.py
# ---------------------------------------------------------------------- #
@register
class RawRandomRule(Rule):
    """DET002: every stream derives from ``sim/rng.py``.

    A bare ``random.Random(seed)`` (or module-global ``random.random()``)
    bypasses the namespaced seed-derivation scheme *and* the
    ``strict_streams`` ownership audit: its draws are invisible to the
    shard-ownership guard, so a component on shard A can silently consume
    entropy interleaved with shard B and break serial-vs-sharded parity.
    Simulation-time draws go through ``SeededRng``; configuration-time
    data synthesis goes through ``config_rng`` (same module), which keeps
    every generator construction site in one audited file.
    """

    code = "DET002"
    title = "raw random stream constructed/used outside sim/rng.py"
    hint = "draw from a repro.sim.rng.SeededRng stream (or config_rng for config-time synthesis)"

    def check_module(self, module: ModuleFile, config: LintConfig) -> Iterator[Finding]:
        if not config.in_package(module.module_rel):
            return
        if module.module_rel == config.rng_home or module.module_rel.startswith(config.rng_exempt):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random" and node.level == 0:
                names = ", ".join(alias.name for alias in node.names)
                yield self.finding(module, node, f"imports {names} from the global random module")
            elif isinstance(node, ast.Call):
                name = module.resolve_call_name(node.func)
                if name.startswith("random."):
                    yield self.finding(module, node, f"call to {name}() uses the global random module")


# ---------------------------------------------------------------------- #
# DET003 — unordered set iteration on scheduling paths
# ---------------------------------------------------------------------- #
#: Consumers whose result does not depend on iteration order.
_ORDER_FREE_CONSUMERS = frozenset({"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"})
#: Converters that freeze the (hash-dependent) iteration order into a sequence.
_ORDER_SENSITIVE_CONVERTERS = frozenset({"list", "tuple", "enumerate"})
#: Set methods returning another set.
_SET_PRODUCING_METHODS = frozenset({"union", "intersection", "difference", "symmetric_difference", "copy"})
#: Annotation names denoting a set type.
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"})


def _iter_scope_children(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's body without descending into nested scopes."""
    for child in ast.iter_child_nodes(node):
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            yield from _iter_scope_children(child)


def _annotation_kind(annotation: Optional[ast.expr]) -> Optional[str]:
    """``"set"``/``"dict_of_sets"`` if an annotation denotes one, else ``None``."""
    if annotation is None:
        return None
    target = annotation
    if isinstance(target, ast.Subscript):
        base = target.value
        base_name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if base_name in _SET_ANNOTATIONS:
            return "set"
        if base_name in ("Dict", "dict", "Mapping", "MutableMapping", "DefaultDict"):
            if isinstance(target.slice, ast.Tuple) and len(target.slice.elts) == 2:
                if _annotation_kind(target.slice.elts[1]) == "set":
                    return "dict_of_sets"
        return None
    name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
    if name in _SET_ANNOTATIONS:
        return "set"
    return None


class _SetScope:
    """One lexical scope's set-typed bindings (names and ``self.attr``s)."""

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}  # name -> "set" | "dict_of_sets"

    def bind(self, name: str, kind: Optional[str]) -> None:
        if kind is not None:
            self.names[name] = kind


@register
class SetIterationRule(Rule):
    """DET003: set iteration order is a scheduling-order hazard.

    In the shard-owned packages every iteration either schedules work,
    sends messages, or builds sequences others iterate — and ``set``
    iteration order is the string-hash order, which ``PYTHONHASHSEED``
    re-randomizes per process.  A bare ``for x in some_set`` can therefore
    produce different event interleavings across runs (and across the
    forked shard workers), which is exactly the divergence the byte-parity
    gates exist to catch — minus the pointer to the offending line that
    this rule provides.  Wrap the iteration in ``sorted(...)`` or keep the
    collection a dict/list (insertion-ordered) instead.
    """

    code = "DET003"
    title = "iteration over a set without sorted()"
    hint = "iterate sorted(<set>) or restructure onto an insertion-ordered dict/list"

    def check_module(self, module: ModuleFile, config: LintConfig) -> Iterator[Finding]:
        if not config.is_shard_owned(module.module_rel):
            return
        self._module = module
        # Pre-mark every order-free consumer's arguments so comprehension
        # checks can pardon `sorted(x for x in some_set)`.
        self._order_free_args: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_FREE_CONSUMERS:
                    for arg in node.args:
                        self._order_free_args.add(id(arg))
        # Class-attribute tables: ClassDef id -> {"attr": kind}, harvested
        # from every method body so ``self._x = set()`` in __init__ covers
        # uses in later methods.
        self._class_attrs: Dict[int, Dict[str, str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._class_attrs[id(node)] = self._harvest_class_attrs(node)
        module_scope = _SetScope()
        self._harvest_bindings(module.tree, module_scope)
        yield from self._check_scope(module.tree, [module_scope], [])

    # -- binding harvest ------------------------------------------------ #
    def _harvest_class_attrs(self, class_node: ast.ClassDef) -> Dict[str, str]:
        attrs: Dict[str, str] = {}
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in _iter_scope_children(method):
                kind: Optional[str] = None
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    kind = self._value_kind(stmt.value, [], [])
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    kind = _annotation_kind(stmt.annotation)
                    targets = [stmt.target]
                if kind is None:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs[target.attr] = kind
        return attrs

    def _harvest_bindings(self, scope_node: ast.AST, scope: _SetScope) -> None:
        """Record set-typed names assigned directly in one scope."""
        if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in list(scope_node.args.args) + list(scope_node.args.kwonlyargs):
                scope.bind(arg.arg, _annotation_kind(arg.annotation))
        for stmt in _iter_scope_children(scope_node):
            if isinstance(stmt, ast.Assign):
                kind = self._value_kind(stmt.value, [scope], [])
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        scope.bind(target.id, kind)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                kind = _annotation_kind(stmt.annotation)
                if kind is None and stmt.value is not None:
                    kind = self._value_kind(stmt.value, [scope], [])
                scope.bind(stmt.target.id, kind)

    # -- type lookup ----------------------------------------------------- #
    def _value_kind(
        self, value: ast.expr, scopes: List[_SetScope], class_stack: List[ast.ClassDef]
    ) -> Optional[str]:
        if self._is_set_expr(value, scopes, class_stack):
            return "set"
        return None

    def _is_set_expr(
        self, node: ast.expr, scopes: List[_SetScope], class_stack: List[ast.ClassDef]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_PRODUCING_METHODS
                and self._is_set_expr(func.value, scopes, class_stack)
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            for scope in reversed(scopes):
                if scope.names.get(node.id) == "set":
                    return True
            return False
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                for class_node in reversed(class_stack):
                    if self._class_attrs.get(id(class_node), {}).get(node.attr) == "set":
                        return True
            return False
        if isinstance(node, ast.Subscript):
            return self._is_dict_of_sets(node.value, scopes, class_stack)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_set_expr(node.left, scopes, class_stack)
        return False

    def _is_dict_of_sets(
        self, node: ast.expr, scopes: List[_SetScope], class_stack: List[ast.ClassDef]
    ) -> bool:
        if isinstance(node, ast.Name):
            return any(scope.names.get(node.id) == "dict_of_sets" for scope in reversed(scopes))
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) and node.value.id == "self":
            return any(
                self._class_attrs.get(id(c), {}).get(node.attr) == "dict_of_sets"
                for c in reversed(class_stack)
            )
        return False

    # -- flagging --------------------------------------------------------- #
    def _check_scope(
        self, scope_node: ast.AST, scopes: List[_SetScope], class_stack: List[ast.ClassDef]
    ) -> Iterator[Finding]:
        for stmt in _iter_scope_children(scope_node):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(stmt.iter, scopes, class_stack):
                    yield self._flag(stmt.iter)
            elif isinstance(stmt, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in stmt.generators:
                    if self._is_set_expr(generator.iter, scopes, class_stack):
                        if not self._consumed_order_free(stmt):
                            yield self._flag(generator.iter)
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CONVERTERS
                    and stmt.args
                    and self._is_set_expr(stmt.args[0], scopes, class_stack)
                ):
                    yield self._flag(stmt.args[0])
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = _SetScope()
                self._harvest_bindings(stmt, inner)
                yield from self._check_scope(stmt, scopes + [inner], class_stack)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._check_scope(stmt, scopes, class_stack + [stmt])

    def _consumed_order_free(self, comp_node: ast.AST) -> bool:
        return id(comp_node) in self._order_free_args

    def _flag(self, node: ast.expr) -> Finding:
        return self.finding(
            self._module,
            node,
            "iterates a set in hash order (PYTHONHASHSEED-dependent) on a shard-owned path",
        )

    # Populated per module in check_module before traversal begins.
    _order_free_args: Set[int] = set()


# ---------------------------------------------------------------------- #
# DET004 — module-level mutable state in shard-owned packages
# ---------------------------------------------------------------------- #
_MUTABLE_CONSTRUCTORS = frozenset({"set", "dict", "list", "defaultdict", "OrderedDict", "Counter", "deque"})


@register
class ModuleStateRule(Rule):
    """DET004: module globals are shared across every Shard in-process.

    Per-cluster ``Shard``s own *all* mutable simulation state — that
    contract is what makes serial a pure special case of sharded.  A
    module-level dict/list/set is invisible to that partitioning: in the
    in-process interleaved mode every shard reads and writes the same
    object in shard-schedule order, while forked workers each get a
    private copy — two executions of "the same" state that can diverge.
    Pure memo caches of deterministic values (digest interning, per-class
    walkers) are parity-safe and carry inline suppressions with their
    rationale; anything else must move into shard-owned state.
    """

    code = "DET004"
    title = "module-level mutable state in a shard-owned package"
    hint = "move onto a Shard-owned object, or sanction a pure memo with an inline disable + rationale"

    def check_module(self, module: ModuleFile, config: LintConfig) -> Iterator[Finding]:
        if not config.is_shard_owned(module.module_rel):
            return
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target] if isinstance(stmt.target, ast.Name) else []
                value = stmt.value
            else:
                continue
            if not targets:
                continue
            verdict = self._mutable_kind(value)
            if verdict is None:
                continue
            empty, kind = verdict
            for target in targets:
                # Dunders (__all__ and friends) are interpreter/tooling
                # protocol, not simulation state; non-empty UPPER_CASE
                # literals are constant tables (RTT matrices, alias maps) —
                # read-only by convention.
                if target.id.startswith("__") and target.id.endswith("__"):
                    continue
                if not empty and target.id.isupper():
                    continue
                what = f"empty {kind} cache" if empty else f"mutable {kind}"
                yield self.finding(
                    module,
                    stmt,
                    f"module-level {what} {target.id!r} is shared across shards",
                    context=target.id,
                )

    @staticmethod
    def _mutable_kind(value: ast.expr) -> Optional[Tuple[bool, str]]:
        """``(is_empty, kind)`` for mutable initializers, else ``None``."""
        if isinstance(value, ast.Dict):
            return (not value.keys, "dict")
        if isinstance(value, ast.List):
            return (not value.elts, "list")
        if isinstance(value, ast.Set):
            return (False, "set")
        if isinstance(value, ast.Call):
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
            if name in _MUTABLE_CONSTRUCTORS:
                return (not value.args and not value.keywords, name)
        return None


# ---------------------------------------------------------------------- #
# DET005 — id()/hash() in ordering or keying
# ---------------------------------------------------------------------- #
@register
class IdentityOrderRule(Rule):
    """DET005: CPython object identity is an address, not a value.

    ``id(x)`` is the allocation address — different every run, different
    in every forked shard worker — so any ordering or keying built on it
    (or on ``hash()`` inside a sort key, which for strings is
    ``PYTHONHASHSEED``-randomized) is nondeterministic by construction.
    Key and sort on stable value identities (replica ids, sequence
    numbers, digests) instead.
    """

    code = "DET005"
    title = "id()/hash() used for ordering or keying"
    hint = "order/key on stable value identity (ids, sequence numbers, digests)"

    def check_module(self, module: ModuleFile, config: LintConfig) -> Iterator[Finding]:
        if not config.is_shard_owned(module.module_rel):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "id":
                yield self.finding(module, node, "id() is a per-run allocation address")
                continue
            # hash() inside a sorted/min/max call or a .sort key.
            is_order_call = (isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")) or (
                isinstance(func, ast.Attribute) and func.attr == "sort"
            )
            if not is_order_call:
                continue
            subtrees = list(node.args) + [kw.value for kw in node.keywords]
            for subtree in subtrees:
                for inner in ast.walk(subtree):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == "hash"
                    ):
                        yield self.finding(
                            module, inner, "hash() inside an ordering expression is seed-randomized"
                        )


__all__ = [
    "IdentityOrderRule",
    "ModuleStateRule",
    "RawRandomRule",
    "SetIterationRule",
    "WallClockRule",
]
