"""detlint — static determinism & shard-safety analysis.

The runtime guarantees this reproduction sells — byte-identical fixed-seed
ResultRows, serial-vs-sharded parity across shard layouts, golden-pinned
wire/op — are enforced dynamically by minutes-long parity suites and the
determinism probe.  ``detlint`` is their *static* complement: an AST
analyzer that flags, at commit time and with a ``file:line`` pointer, the
hazard classes that historically break those suites (stray RNGs outside
``sim/rng.py``, unsorted ``set`` iteration on scheduling paths,
module-level mutable state shared across ``Shard``s, hot-path classes
without ``__slots__``, unregistered protocol messages, spec dataclasses
that cannot round-trip through JSON).

Run it as::

    python -m repro.analysis.detlint src/

Findings can be sanctioned inline (``# detlint: disable=RULE -- rationale``)
or through the checked-in baseline file (``detlint_baseline.json``), which
CI only ever allows to shrink.  See the README's "Static analysis" section
for the rule table and policy.
"""

from __future__ import annotations

from repro.analysis.detlint.baseline import Baseline
from repro.analysis.detlint.engine import LintReport, lint_paths
from repro.analysis.detlint.findings import Finding
from repro.analysis.detlint.rules import RULES, all_rules

__all__ = ["Baseline", "Finding", "LintReport", "RULES", "all_rules", "lint_paths"]
