"""The lint driver: collect files, run rules, apply suppressions + baseline."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.detlint.baseline import Baseline
from repro.analysis.detlint.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.detlint.findings import Finding
from repro.analysis.detlint.rules import all_rules
from repro.analysis.detlint.rules.base import ModuleFile, Project
from repro.analysis.detlint.suppressions import SuppressionIndex


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``findings`` are the *actionable* ones — not suppressed inline, not
    covered by the baseline.  ``stale_baseline`` holds baseline entries
    that matched nothing (the ratchet: they must be deleted).  ``errors``
    are files that could not be parsed.  The run gates on all three.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[Dict[str, str]] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_scanned: int = 0
    rule_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale_baseline and not self.errors

    def stats(self) -> Dict[str, object]:
        """A JSON-ready summary (the CI ``--stats`` artifact)."""
        return {
            "files_scanned": self.files_scanned,
            "actionable": len(self.findings),
            "suppressed_inline": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline_entries": len(self.stale_baseline),
            "parse_errors": len(self.errors),
            "by_rule": dict(sorted(self.rule_counts.items())),
        }


def module_rel_path(path: str) -> str:
    """Module-relative posix path: from the rightmost ``repro`` component.

    ``/repo/src/repro/net/adversity.py`` → ``repro/net/adversity.py``;
    paths without a ``repro`` component (tests, benchmarks, fixtures) are
    returned relative as given — rules scoped to ``repro/`` then skip them
    by construction.  Using the *rightmost* component lets the test suite
    exercise rules on fixture trees like ``tmp/.../repro/core/x.py``.
    """
    normalized = path.replace(os.sep, "/").lstrip("./")
    parts = normalized.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return normalized


def collect_files(paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in ("__pycache__", ".git"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    # De-duplicate while keeping the sorted order stable.
    seen: set = set()
    unique: List[str] = []
    for path in sorted(out):
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_paths(
    paths: List[str],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Run every registered rule over ``paths`` and fold in the policy layers.

    Raw findings pass through two sanction filters, in order: inline
    suppressions (``# detlint: disable=...`` on the finding's line), then
    the baseline.  What survives is actionable and fails the run.
    """
    config = config or DEFAULT_CONFIG
    report = LintReport()
    modules: List[ModuleFile] = []
    suppressions: Dict[str, SuppressionIndex] = {}
    for path in collect_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = ModuleFile(path=path, module_rel=module_rel_path(path), source=source)
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append(f"{path}: {exc}")
            continue
        modules.append(module)
        suppressions[module.module_rel] = SuppressionIndex(module.source_lines)
    report.files_scanned = len(modules)

    raw: List[Tuple[Finding, str]] = []  # (finding, module_rel for suppression lookup)
    rules = all_rules()
    for module in modules:
        for rule in rules:
            for finding in rule.check_module(module, config):
                raw.append((finding, module.module_rel))
    project = Project(modules)
    for rule in rules:
        for finding in rule.check_project(project, config):
            raw.append((finding, finding.path))

    for finding, module_rel in raw:
        report.rule_counts[finding.rule] = report.rule_counts.get(finding.rule, 0) + 1
        index = suppressions.get(module_rel)
        if index is not None and index.suppresses(finding.rule, finding.line):
            report.suppressed += 1
            continue
        if baseline is not None and baseline.covers(finding):
            report.baselined += 1
            continue
        report.findings.append(finding)

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    return report


__all__ = ["LintReport", "collect_files", "lint_paths", "module_rel_path"]
