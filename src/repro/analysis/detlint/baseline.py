"""The checked-in baseline of sanctioned legacy findings.

The baseline is a ratchet, not a dumping ground: each entry names one
``(rule, path, context)`` finding that predates the analyzer (or is an
explicit, rationale-carrying design decision, e.g. ``Message`` dataclasses
whose digest caches live in the instance ``__dict__``).  Entries are keyed
without line numbers so refactors that merely move code do not churn the
file.  CI enforces the shrink-only policy from both sides:

* a finding **not** covered by the baseline (or an inline suppression)
  fails the run — the baseline cannot be grown by accident, only by a
  reviewed edit adding an entry with a rationale, and
* a baseline entry that no longer matches any finding **also** fails the
  run — fixing the code obliges you to delete the entry, so the file never
  accretes dead weight and its length only moves down.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.analysis.detlint.findings import Finding

_VERSION = 1


class Baseline:
    """Sanctioned findings, loaded from / saved to ``detlint_baseline.json``."""

    def __init__(self, entries: Optional[List[Dict[str, str]]] = None) -> None:
        #: key -> entry dict ({"rule", "path", "context", "rationale"}).
        self._entries: Dict[str, Dict[str, str]] = {}
        for entry in entries or []:
            self._entries[self._key(entry)] = dict(entry)
        self._matched: set = set()

    @staticmethod
    def _key(entry: Dict[str, str]) -> str:
        return f"{entry['rule']}::{entry['path']}::{entry.get('context', '')}"

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #
    def covers(self, finding: Finding) -> bool:
        """Whether ``finding`` is sanctioned; marks the entry as live."""
        key = finding.baseline_key
        if key in self._entries:
            self._matched.add(key)
            return True
        return False

    def stale_entries(self) -> List[Dict[str, str]]:
        """Entries that matched nothing this run — the code was fixed.

        The shrink ratchet: these must be *deleted* from the baseline file
        (a stale entry fails CI), so the baseline can only move toward
        empty.
        """
        return [entry for key, entry in sorted(self._entries.items()) if key not in self._matched]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file (the :meth:`save` shape)."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise ValueError(f"{path}: not a detlint baseline (want version={_VERSION})")
        return cls(entries=payload.get("entries", []))

    def save(self, path: str) -> None:
        """Write the baseline with stable ordering (reviewable diffs)."""
        entries = [self._entries[key] for key in sorted(self._entries)]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": _VERSION, "entries": entries}, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], rationales: Optional[Dict[str, str]] = None
    ) -> "Baseline":
        """Build a baseline sanctioning ``findings`` (``--write-baseline``).

        ``rationales`` maps baseline keys (or bare rule codes, as a batch
        default) to justification strings carried into the entries.
        """
        rationales = rationales or {}
        entries: List[Dict[str, str]] = []
        seen: set = set()
        for finding in findings:
            key = finding.baseline_key
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "context": finding.context,
                    "rationale": rationales.get(key, rationales.get(finding.rule, "TODO: justify")),
                }
            )
        return cls(entries=entries)


__all__ = ["Baseline"]
