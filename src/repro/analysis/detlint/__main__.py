"""CLI: ``python -m repro.analysis.detlint src [tests ...]``.

Exit codes: ``0`` clean, ``1`` actionable findings or stale baseline
entries, ``2`` usage or parse errors.  ``--write-baseline`` regenerates the
baseline file from the current findings (every entry starts with a
``TODO: justify`` rationale — filling those in is part of the review).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.detlint.baseline import Baseline
from repro.analysis.detlint.engine import lint_paths
from repro.analysis.detlint.rules import all_rules

DEFAULT_BASELINE = "detlint_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.detlint",
        description="AST determinism & shard-safety linter for the simulator.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to scan")
    parser.add_argument("--json", action="store_true", help="emit findings as JSON on stdout")
    parser.add_argument("--stats", metavar="PATH", help="write a JSON run summary to PATH ('-' for stdout)")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file of sanctioned findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to sanction every current finding, then exit",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.title}")
            print(f"        fix: {rule.hint}")
        return 0

    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            baseline = None
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"detlint: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    report = lint_paths(args.paths, baseline=baseline)

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(args.baseline)
        print(f"detlint: wrote {len(report.findings)} entries to {args.baseline}")
        return 0

    if args.stats:
        payload = json.dumps(report.stats(), indent=2, sort_keys=True)
        if args.stats == "-":
            print(payload)
        else:
            with open(args.stats, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")

    if args.json:
        print(json.dumps([finding.to_dict() for finding in report.findings], indent=2))
    else:
        for finding in report.findings:
            print(finding.render())

    for error in report.errors:
        print(f"detlint: error: {error}", file=sys.stderr)
    for entry in report.stale_baseline:
        print(
            "detlint: stale baseline entry (the finding is gone — delete it): "
            f"{entry['rule']}::{entry['path']}::{entry.get('context', '')}",
            file=sys.stderr,
        )

    if report.errors:
        return 2
    if report.findings or report.stale_baseline:
        if report.findings and not args.json:
            print(
                f"detlint: {len(report.findings)} finding(s) in {report.files_scanned} file(s) "
                f"({report.suppressed} suppressed inline, {report.baselined} baselined)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
