"""Analytical models: protocol complexity (Table I) and report formatting."""

from repro.analysis.complexity import PROTOCOLS, ProtocolComplexity, complexity_table

__all__ = ["PROTOCOLS", "ProtocolComplexity", "complexity_table"]
