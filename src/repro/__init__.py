"""Hamava reproduction: fault-tolerant reconfigurable geo-replication.

A pure-Python, simulation-backed reproduction of *Hamava: Fault-tolerant
Reconfigurable Geo-Replication on Heterogeneous Clusters* (ICDE 2025).

Quickstart::

    from repro import build_deployment

    deployment = build_deployment([(4, "us-west1"), (7, "europe-west3")],
                                  engine="hotstuff", seed=7)
    metrics = deployment.run(duration=5.0, warmup=1.0)
    print(metrics.summary())

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
reproduction of every table and figure in the paper.
"""

from repro.core.config import ClusterSpec, HamavaConfig, SystemConfig
from repro.core.replica import ByzantineBehavior, HamavaReplica
from repro.core.types import ReconfigRequest, Transaction, join_request, leave_request
from repro.harness.deployment import Deployment, DeploymentSpec, build_deployment
from repro.harness.faults import FaultInjector
from repro.harness.metrics import MetricsCollector

__version__ = "1.0.0"

__all__ = [
    "ByzantineBehavior",
    "ClusterSpec",
    "Deployment",
    "DeploymentSpec",
    "FaultInjector",
    "HamavaConfig",
    "HamavaReplica",
    "MetricsCollector",
    "ReconfigRequest",
    "SystemConfig",
    "Transaction",
    "build_deployment",
    "join_request",
    "leave_request",
    "__version__",
]
