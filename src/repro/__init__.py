"""Hamava reproduction: fault-tolerant reconfigurable geo-replication.

A pure-Python, simulation-backed reproduction of *Hamava: Fault-tolerant
Reconfigurable Geo-Replication on Heterogeneous Clusters* (ICDE 2025).

Quickstart — declare a scenario, run it, read the row::

    from repro import Scenario

    row = (
        Scenario("quickstart")
        .clusters((4, "us-west1"), (7, "europe-west3"))
        .engine("hotstuff")
        .seed(7)
        .duration(5.0, warmup=1.0)
        .run_one()
    )
    print(row.throughput, row.latency_mean)

Schedules — joins, leaves, crashes, Byzantine leaders, churn loops — are
declarative events on the same builder::

    Scenario("churny").clusters(7, 7).join(0, at=2.0).leave("r1.6", at=4.0)

Scenarios compile to serializable :class:`ScenarioSpec` objects
(``spec().to_json()`` / ``ScenarioSpec.from_json``), and multi-seed grids
run through :class:`ScenarioRunner`, optionally across worker processes::

    from repro import ScenarioRunner

    rows = ScenarioRunner(workers=4).run(scenarios, seeds=[1, 2, 3])
    ScenarioRunner.save(rows, "results.json")

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
reproduction of every table and figure in the paper.
"""

from repro.core.config import ClusterSpec, HamavaConfig, SystemConfig
from repro.core.replica import ByzantineBehavior, HamavaReplica
from repro.core.types import ReconfigRequest, Transaction, join_request, leave_request
from repro.harness.builder import DeploymentBuilder, Scenario
from repro.harness.deployment import Deployment, DeploymentSpec, build_deployment
from repro.harness.faults import FaultInjector
from repro.harness.metrics import MetricsCollector
from repro.harness.runner import (
    AggregateRow,
    ResultRow,
    ScenarioRunner,
    aggregate_rows,
    run_scenario,
)
from repro.harness.scenario import (
    ByzantineEvent,
    ChurnLoop,
    ClockSkewEvent,
    CrashEvent,
    FlappingPartitionEvent,
    GrayReplicaEvent,
    JoinEvent,
    LeaveEvent,
    PartitionEvent,
    RegionOutageEvent,
    ScenarioSpec,
    register_preset,
)
from repro.net.adversity import CongestionConfig, CrossTrafficStream, RttTrace

__version__ = "1.1.0"

from repro.workload.population import ClientPopulation, PopulationConfig

__all__ = [
    "AggregateRow",
    "ByzantineBehavior",
    "ByzantineEvent",
    "ChurnLoop",
    "ClientPopulation",
    "ClockSkewEvent",
    "ClusterSpec",
    "CongestionConfig",
    "CrashEvent",
    "CrossTrafficStream",
    "Deployment",
    "DeploymentBuilder",
    "DeploymentSpec",
    "FaultInjector",
    "FlappingPartitionEvent",
    "GrayReplicaEvent",
    "HamavaConfig",
    "HamavaReplica",
    "JoinEvent",
    "LeaveEvent",
    "MetricsCollector",
    "PartitionEvent",
    "PopulationConfig",
    "ReconfigRequest",
    "RegionOutageEvent",
    "ResultRow",
    "RttTrace",
    "Scenario",
    "ScenarioRunner",
    "ScenarioSpec",
    "SystemConfig",
    "Transaction",
    "aggregate_rows",
    "build_deployment",
    "join_request",
    "leave_request",
    "register_preset",
    "run_scenario",
    "__version__",
]
