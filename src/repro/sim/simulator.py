"""The discrete-event simulator driving every scenario.

The simulator owns the virtual clock and the event queue.  Components
schedule callbacks (message deliveries, timer expirations, client think
times); the simulator pops them in deterministic order and advances the
clock to each event's time.  Nothing in the library sleeps or reads the wall
clock, so a three-minute geo-replication experiment runs in seconds of real
time and is bit-for-bit reproducible.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from math import inf
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim import rng
from repro.sim.events import ARG, CALLBACK, CANCELLED, TIME, Event, EventQueue
from repro.sim.rng import SeededRng


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    Protocol components use timers to watch leaders and remote clusters
    (``timer_j`` in the paper).  A timer can be started, stopped, and reset;
    the callback fires only if the timer is still pending at expiry.
    """

    __slots__ = ("_simulator", "duration", "callback", "name", "rate", "_label", "_event")

    def __init__(
        self,
        simulator: "Simulator",
        duration: float,
        callback: Callable[[], None],
        name: str = "",
    ) -> None:
        self._simulator = simulator
        self.duration = duration
        self.callback = callback
        self.name = name
        #: Local-clock rate of the timer's owner (clock-skew faults): a rate
        #: below 1.0 is a fast clock (the timer fires early), above 1.0 a
        #: slow one.  ``duration * 1.0`` is IEEE-exact, so unskewed runs are
        #: bit-identical to the pre-skew kernel.
        self.rate = 1.0
        self._label = f"timer:{name}"  # built once, not per (re)arm
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """Whether the timer is armed and has not yet fired or been stopped."""
        return self._event is not None and not self._event.cancelled

    def start(self, duration: Optional[float] = None) -> None:
        """Arm the timer.  Restarts it if it is already pending."""
        self.stop()
        if duration is not None:
            self.duration = duration
        self._event = self._simulator.schedule(
            self.duration * self.rate, self._fire, 0, self._label
        )

    def reset(self, duration: Optional[float] = None) -> None:
        """Alias for :meth:`start`; mirrors the paper's ``reset timer``."""
        self.start(duration)

    def stop(self) -> None:
        """Disarm the timer if pending."""
        if self._event is not None and not self._event.cancelled:
            self._event.cancel()
            self._simulator.notify_cancel()
        self._event = None

    def remaining(self) -> float:
        """Virtual time left until the timer fires (0 if not pending)."""
        if not self.pending or self._event is None:
            return 0.0
        return max(0.0, self._event.time - self._simulator.now)

    def elapsed(self) -> float:
        """Virtual time since the timer was last armed (duration if idle)."""
        return self.duration - self.remaining()

    def _fire(self) -> None:
        self._event = None
        self.callback()


class DeadlinePool:
    """Many logical timers sharing one resident kernel event.

    The lazy-deadline pattern the workload clients' retry watchdogs use,
    generalised: arming a timer is a dict write recording its deadline, and
    a single resident event chases the earliest recorded deadline.  When it
    fires, every key whose deadline has passed is popped and reported to
    ``callback(key)``; the event then re-chases the new minimum.  Disarming
    is a dict pop — the resident event discovers the change lazily.

    This replaces the schedule+cancel pair that per-instance protocol timers
    (consensus leader watchdogs, BRD delivery timers) paid every round —
    thousands of heap operations per simulated second for timers that
    almost never fire — with plain dict traffic.  The heap only sees one
    entry per pool plus the rare re-chase.

    Args:
        simulator: The owning simulation kernel.
        callback: ``(key) -> None`` invoked when a key's deadline passes.
            The callback may re-arm the same key or arm others.
        name: Label stem for the resident event.
    """

    __slots__ = ("_simulator", "_callback", "_label", "_deadlines", "_event", "rate")

    def __init__(self, simulator: "Simulator", callback: Callable, name: str = "") -> None:
        self._simulator = simulator
        self._callback = callback
        self._label = f"pool:{name}"
        self._deadlines: dict = {}
        self._event: Optional[Event] = None
        #: Local-clock rate of the pool's owner (clock-skew faults); see
        #: :attr:`Timer.rate`.  ``duration * 1.0`` is IEEE-exact.
        self.rate = 1.0

    def arm(self, key, duration: float) -> None:
        """(Re)arm ``key`` to fire ``duration`` from now (owner-clock units)."""
        duration = duration * self.rate
        deadline = self._simulator.now + duration
        self._deadlines[key] = deadline
        event = self._event
        if event is None or event.cancelled:
            self._event = self._simulator.schedule(duration, self._fire, 0, self._label)
        elif deadline < event.time:
            # Rare: the new deadline undercuts the resident event (a shorter
            # timeout armed mid-flight).  Re-chase eagerly so it fires on time.
            event.cancel()
            self._simulator.notify_cancel()
            self._event = self._simulator.schedule(duration, self._fire, 0, self._label)

    def disarm(self, key) -> None:
        """Disarm ``key`` if armed (the resident event re-chases lazily)."""
        self._deadlines.pop(key, None)

    def pending(self, key) -> bool:
        """Whether ``key`` is armed."""
        return key in self._deadlines

    def remaining(self, key) -> float:
        """Virtual time left until ``key`` fires (0 if not armed)."""
        deadline = self._deadlines.get(key)
        if deadline is None:
            return 0.0
        return max(0.0, deadline - self._simulator.now)

    def timer(self, key, duration: float = 0.0) -> "PooledTimer":
        """A :class:`Timer`-shaped facade bound to one key of this pool."""
        return PooledTimer(self, key, duration)

    def _fire(self) -> None:
        self._event = None
        now = self._simulator.now
        deadlines = self._deadlines
        due = [key for key, deadline in deadlines.items() if deadline <= now]
        for key in due:
            # Re-check: an earlier callback may have re-armed or disarmed it.
            deadline = deadlines.get(key)
            if deadline is not None and deadline <= now:
                del deadlines[key]
                self._callback(key)
        if deadlines:
            head = min(deadlines.values())
            event = self._event
            if event is None or event.cancelled or event.time > head:
                if event is not None and not event.cancelled:
                    event.cancel()
                    self._simulator.notify_cancel()
                self._event = self._simulator.schedule(
                    max(0.0, head - now), self._fire, 0, self._label
                )


class PooledTimer:
    """One :class:`DeadlinePool` key wearing the :class:`Timer` interface.

    Lets components written against ``Timer`` (start/stop/pending) share a
    pool without changing their call sites; the pool owner routes the pool's
    callback back to the component.
    """

    __slots__ = ("_pool", "_key", "duration")

    def __init__(self, pool: DeadlinePool, key, duration: float = 0.0) -> None:
        self._pool = pool
        self._key = key
        self.duration = duration

    @property
    def pending(self) -> bool:
        """Whether the timer is armed."""
        return self._pool.pending(self._key)

    def start(self, duration: Optional[float] = None) -> None:
        """Arm (or re-arm) the timer."""
        if duration is not None:
            self.duration = duration
        self._pool.arm(self._key, self.duration)

    def reset(self, duration: Optional[float] = None) -> None:
        """Alias for :meth:`start`."""
        self.start(duration)

    def stop(self) -> None:
        """Disarm the timer."""
        self._pool.disarm(self._key)

    def remaining(self) -> float:
        """Virtual time left until the timer fires (0 if not armed)."""
        return self._pool.remaining(self._key)


class Simulator:
    """Deterministic discrete-event loop with a virtual clock.

    Args:
        seed: Root seed for all randomness derived from this simulator.
        strict_streams: Debug mode for the RNG-ownership audit.  When true,
            every stream derived from :attr:`rng` is tagged with this kernel
            as its owner, and while the loop is executing any *owned* stream
            belonging to a different kernel raises
            :class:`~repro.sim.rng.StreamOwnershipError` on a draw.  This is
            the guard sharded determinism depends on: a component that
            reaches across shards for entropy diverges silently otherwise.
            Off by default (the guard costs a Python frame per draw).

    Typical usage::

        sim = Simulator(seed=7)
        sim.schedule(1.5, lambda: print(sim.now))
        sim.run(until=10.0)
    """

    def __init__(self, seed: int = 0, strict_streams: bool = False) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.strict_streams = strict_streams
        self.rng = SeededRng(seed, "simulator", owner=self if strict_streams else None)
        self._queue = EventQueue()
        #: Zero-delay callbacks (``(callback, arg)`` pairs) that run at the
        #: *current* virtual time, after the currently executing event and
        #: before the next heap event.  This is what makes a true 0 ms
        #: loop-back possible: a self-addressed message is handed over within
        #: the same virtual instant without consuming a kernel event, yet
        #: without re-entering the sender's call stack mid-send.  Drained
        #: FIFO, so chains of microtasks stay deterministic.
        self._microtasks: deque = deque()
        self._events_processed = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        priority: int = 0,
        label: str = "",
        arg: object = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` after the current time.

        ``arg`` (when not ``None``) is passed as the callback's single
        argument, so hot paths can schedule a bound method plus payload
        without allocating a per-event closure.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        # Inline of EventQueue.push (one call frame per scheduled event).
        queue = self._queue
        sequence = queue._sequence
        queue._sequence = sequence + 1
        event = Event((self.now + delay, priority, sequence, callback, arg, False, label))
        queue._live += 1
        heappush(queue._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        priority: int = 0,
        label: str = "",
        arg: object = None,
    ) -> Event:
        """Schedule ``callback`` to run at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is before the current time {self.now!r}"
            )
        # Inline of EventQueue.push (one call frame per scheduled event).
        queue = self._queue
        sequence = queue._sequence
        queue._sequence = sequence + 1
        event = Event((time, priority, sequence, callback, arg, False, label))
        queue._live += 1
        heappush(queue._heap, event)
        return event

    def schedule_batch(
        self,
        pairs: object,
        callback: Callable[..., None],
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Schedule ``callback`` once per ``(absolute_time, arg)`` pair.

        One bulk insertion instead of one :meth:`schedule_at` call per entry;
        the multicast fan-out path uses this to insert a whole batch of
        near-sorted delivery events at once.  Pop order is identical to
        per-pair ``schedule_at`` calls in the same order.
        """
        self._queue.push_batch(pairs, callback, priority, label, floor=self.now)

    def call_soon(self, callback: Callable[..., None], arg: object = None) -> None:
        """Run ``callback`` at the current virtual time, after the current event.

        Microtasks cost no kernel event and never advance the clock.  They
        run before the next heap event even when that event is scheduled for
        the same instant, and a microtask may enqueue further microtasks
        (drained FIFO).  ``arg`` follows the same convention as
        :meth:`schedule`: ``None`` means the callback takes no argument.
        """
        self._microtasks.append((callback, arg))

    def timer(self, duration: float, callback: Callable[[], None], name: str = "") -> Timer:
        """Create a (not yet started) :class:`Timer`."""
        return Timer(self, duration, callback, name=name)

    def deadline_pool(self, callback: Callable, name: str = "") -> DeadlinePool:
        """Create a :class:`DeadlinePool` bound to this simulator."""
        return DeadlinePool(self, callback, name=name)

    def notify_cancel(self) -> None:
        """Inform the queue that a previously scheduled event was cancelled."""
        self._queue.notify_cancel()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still in the queue."""
        return len(self._queue)

    def stop(self) -> None:
        """Request that the run loop return after the current event."""
        self._stopped = True

    def _drain_microtasks(self) -> None:
        micro = self._microtasks
        while micro:
            callback, arg = micro.popleft()
            if arg is None:
                callback()
            else:
                callback(arg)

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` when the queue is empty.

        Pending microtasks (due *now*) are drained before the next event is
        popped and again after it fires, mirroring the run loop.
        """
        previous_owner = rng.set_active_owner(self) if self.strict_streams else None
        try:
            self._drain_microtasks()
            event = self._queue.pop()
            if event is None:
                return False
            if event.time < self.now:
                raise SimulationError(
                    f"event scheduled at {event.time} popped after clock reached {self.now}"
                )
            self.now = event.time
            self._events_processed += 1
            event.fire()
            self._drain_microtasks()
            return True
        finally:
            if self.strict_streams:
                rng.set_active_owner(previous_owner)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or stopped.

        Args:
            until: Stop once the clock would pass this virtual time.  The
                clock is advanced to ``until`` even if the queue drains early,
                so callers can reason about a fixed experiment duration.
            max_events: Safety valve for tests; trips as soon as an eligible
                event would exceed exactly this many executions, so no extra
                event ever runs past the limit.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        queue = self._queue
        # The heap is walked directly (the body of EventQueue.pop_due,
        # inlined): this loop runs once per simulated event, so both the
        # method call and the Event property accessors are real overhead.
        # Compaction rewrites the heap in place, so the alias stays valid.
        heap = queue._heap
        pop = heappop
        micro = self._microtasks
        # Infinity sentinels keep the per-event loop free of None checks.
        limit = inf if until is None else until
        budget = inf if max_events is None else max_events
        # Strict-streams audit: mark this kernel as the executing stream
        # owner for the duration of the loop (restored on exit, so nested
        # shard windows driven by a coordinator stay correctly attributed).
        previous_owner = rng.set_active_owner(self) if self.strict_streams else None
        try:
            while not self._stopped:
                # Microtasks (0 ms loop-back deliveries) run at the current
                # time, before the next heap event — even one scheduled for
                # the same instant — and before the max_events valve, since
                # they belong to the event that spawned them.
                if micro:
                    while micro:
                        callback, arg = micro.popleft()
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
                    continue  # re-check the stop flag a microtask may have set
                if processed >= budget:
                    next_time = queue.peek_time()
                    if next_time is None or next_time > limit:
                        break
                    raise SimulationError(
                        f"exceeded max_events={max_events}; the scenario may be livelocked"
                    )
                event = None
                while heap:
                    head = heap[0]
                    if head[CANCELLED]:
                        pop(heap)
                        if queue._cancelled:
                            queue._cancelled -= 1
                        continue
                    if head[TIME] > limit:
                        break
                    event = pop(heap)
                    break
                if event is None:
                    break
                queue._live -= 1
                self.now = event[TIME]
                arg = event[ARG]
                if arg is None:
                    event[CALLBACK]()
                else:
                    event[CALLBACK](arg)
                processed += 1
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            # The per-run counter is folded in once instead of per event
            # (nothing reads events_processed from inside a callback).
            self._events_processed += processed
            self._running = False
            if self.strict_streams:
                rng.set_active_owner(previous_owner)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` units of virtual time from the current clock."""
        self.run(until=self.now + duration, max_events=max_events)


__all__ = ["DeadlinePool", "PooledTimer", "Simulator", "Timer"]
