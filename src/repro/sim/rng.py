"""Seeded random-number utilities.

Every stochastic component (latency jitter, Zipfian key choice, client think
times) draws from a :class:`SeededRng` namespace derived from a single
scenario seed.  Namespacing keeps one component's draws from perturbing
another's, so adding a client does not change the latency samples of an
existing link.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, namespace: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a namespace string."""
    digest = hashlib.sha256(f"{root_seed}:{namespace}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRng:
    """A namespaced wrapper around :class:`random.Random`.

    Args:
        seed: Root scenario seed.
        namespace: Label identifying the component that owns this stream.
    """

    def __init__(self, seed: int, namespace: str = "root") -> None:
        self.seed = seed
        self.namespace = namespace
        self._random = random.Random(_derive_seed(seed, namespace))

    def child(self, namespace: str) -> "SeededRng":
        """Return an independent stream for a sub-component."""
        return SeededRng(self.seed, f"{self.namespace}/{namespace}")

    @property
    def raw_random(self) -> "Callable[[], float]":
        """The underlying C-implemented uniform ``[0, 1)`` draw.

        Hot paths bind this once and call it directly, skipping the wrapper
        frame per draw; it consumes the same stream as :meth:`random`.
        """
        return self._random.random

    def uniform(self, low: float, high: float) -> float:
        """Draw a float uniformly from ``[low, high)``."""
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Draw an exponential inter-arrival time with the given rate."""
        return self._random.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Draw a float uniformly from ``[0, 1)``."""
        return self._random.random()

    def gauss(self, mu: float, sigma: float) -> float:
        """Draw from a normal distribution (mean ``mu``, stddev ``sigma``)."""
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Pick ``k`` distinct elements of a sequence."""
        return self._random.sample(items, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def jitter(self, base: float, fraction: float) -> float:
        """Return ``base`` perturbed by up to ``±fraction`` of its value."""
        if base == 0:
            return 0.0
        spread = base * fraction
        return base + self.uniform(-spread, spread)


def stable_hash(items: Iterable[str]) -> int:
    """Hash an iterable of strings to a stable 64-bit integer.

    Used to derive deterministic per-replica seeds from replica identifiers.
    """
    digest = hashlib.sha256("|".join(items).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


__all__ = ["SeededRng", "stable_hash"]
