"""Seeded random-number utilities.

Every stochastic component (latency jitter, Zipfian key choice, client think
times) draws from a :class:`SeededRng` namespace derived from a single
scenario seed.  Namespacing keeps one component's draws from perturbing
another's, so adding a client does not change the latency samples of an
existing link.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, namespace: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a namespace string."""
    digest = hashlib.sha256(f"{root_seed}:{namespace}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


#: The stream owner (a shard's kernel) currently executing, or ``None`` when
#: no strict-mode kernel is running.  Set by :meth:`Simulator.run` when the
#: kernel was built with ``strict_streams=True`` and checked on every draw of
#: an *owned* stream — the RNG-ownership audit sharded determinism rests on.
_ACTIVE_OWNER: object = None


def set_active_owner(owner: object) -> object:
    """Mark ``owner`` as the executing stream owner; returns the previous one.

    Only the strict-streams debug mode calls this (from ``Simulator.run`` /
    ``Simulator.step``), so the default simulation path pays nothing.
    """
    global _ACTIVE_OWNER
    previous = _ACTIVE_OWNER
    _ACTIVE_OWNER = owner
    return previous


class StreamOwnershipError(RuntimeError):
    """A component drew from a stream owned by a different shard/kernel."""


class SeededRng:
    """A namespaced wrapper around :class:`random.Random`.

    Args:
        seed: Root scenario seed.
        namespace: Label identifying the component that owns this stream.
        owner: Optional stream owner (a shard's ``Simulator``).  When set,
            and while *some* strict-mode kernel is executing, every draw
            asserts that the executing kernel is this owner — catching a
            component on shard A consuming entropy from shard B's streams,
            which would silently break serial-vs-sharded parity.  ``None``
            (the default) keeps the stream unguarded and free.
    """

    def __init__(self, seed: int, namespace: str = "root", owner: object = None) -> None:
        self.seed = seed
        self.namespace = namespace
        self.owner = owner
        self._random = random.Random(_derive_seed(seed, namespace))
        if owner is not None:
            # Route every public draw through the ownership guard.  The
            # guarded stream is only built in strict/debug mode, so the
            # per-draw overhead never touches a normal run.
            self._random = _GuardedRandom(self._random, self)

    def child(self, namespace: str) -> "SeededRng":
        """Return an independent stream for a sub-component.

        Children inherit the parent's owner, so a guarded root guards the
        whole derived tree (ports, workloads, populations, ...).
        """
        return SeededRng(self.seed, f"{self.namespace}/{namespace}", owner=self.owner)

    @property
    def raw_random(self) -> "Callable[[], float]":
        """The underlying C-implemented uniform ``[0, 1)`` draw.

        Hot paths bind this once and call it directly, skipping the wrapper
        frame per draw; it consumes the same stream as :meth:`random`.
        Guarded streams return the checking wrapper instead, so binding
        ``raw_random`` cannot be used to escape the strict-mode audit.
        """
        return self._random.random

    def uniform(self, low: float, high: float) -> float:
        """Draw a float uniformly from ``[low, high)``."""
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Draw an exponential inter-arrival time with the given rate."""
        return self._random.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Draw a float uniformly from ``[0, 1)``."""
        return self._random.random()

    def gauss(self, mu: float, sigma: float) -> float:
        """Draw from a normal distribution (mean ``mu``, stddev ``sigma``)."""
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Pick ``k`` distinct elements of a sequence."""
        return self._random.sample(items, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def jitter(self, base: float, fraction: float) -> float:
        """Return ``base`` perturbed by up to ``±fraction`` of its value."""
        if base == 0:
            return 0.0
        spread = base * fraction
        return base + self.uniform(-spread, spread)


class _GuardedRandom:
    """Ownership-checking proxy around a :class:`random.Random` instance.

    Every attribute access returns a wrapper that asserts the executing
    kernel (``_ACTIVE_OWNER``) matches the stream's owner before delegating.
    Draws made while *no* strict kernel is executing (scenario construction,
    post-run analysis) are allowed: ownership is about who draws during the
    simulation, where cross-shard entropy leaks would corrupt parity.
    """

    __slots__ = ("_inner", "_rng")

    def __init__(self, inner: random.Random, rng: "SeededRng") -> None:
        self._inner = inner
        self._rng = rng

    def __getattr__(self, name: str):
        method = getattr(self._inner, name)
        if not callable(method):
            return method
        rng = self._rng

        def guarded(*args, **kwargs):
            active = _ACTIVE_OWNER
            if active is not None and active is not rng.owner:
                raise StreamOwnershipError(
                    f"stream {rng.namespace!r} (owner {rng.owner!r}) was drawn "
                    f"from while kernel {active!r} was executing; in a sharded "
                    "run this draw would consume another shard's entropy and "
                    "break serial-vs-sharded determinism"
                )
            return method(*args, **kwargs)

        return guarded


def config_rng(seed: int) -> random.Random:
    """A plain seeded generator for configuration-time data synthesis.

    Some inputs are *synthesized before the simulation exists* — e.g.
    :meth:`RttTrace.synthetic` builds a latency trace that is then frozen
    into the scenario spec.  Those sites need a reproducible stream but
    have no kernel, no shard, and no ownership to audit, so a namespaced
    :class:`SeededRng` would be ceremony without protection.  They still
    must not scatter ``random.Random(seed)`` constructions around the
    tree: this factory is the single sanctioned way to obtain a raw
    generator outside this module (statically enforced by detlint DET002),
    which keeps every stream-construction site in one reviewed file.

    The returned generator is seeded with ``seed`` directly (no namespace
    derivation), so migrating a call site from ``random.Random(seed)`` to
    ``config_rng(seed)`` is byte-identical.
    """
    return random.Random(seed)


def stable_hash(items: Iterable[str]) -> int:
    """Hash an iterable of strings to a stable 64-bit integer.

    Used to derive deterministic per-replica seeds from replica identifiers.
    """
    digest = hashlib.sha256("|".join(items).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


__all__ = ["SeededRng", "StreamOwnershipError", "config_rng", "set_active_owner", "stable_hash"]
