"""Conservative-parallel coordination of per-cluster simulation shards.

The serial :class:`~repro.sim.simulator.Simulator` is one event loop over
one mutable world.  The sharded kernel splits that world by *owner cluster*:
each shard owns its clusters' replicas, clients, network ports, RNG streams,
and metrics, and runs its own serial kernel.  What couples shards is only
cross-cluster message traffic, and that traffic has a *latency floor*: the
delivery pipeline's minimum one-way latency between processes of different
clusters (``LatencyModel.min_cross_group_floor``).  That floor is the
classic conservative-PDES lookahead ``L``: an event at time ``t`` on one
shard can influence another shard no earlier than ``t + L``.

The coordinator therefore advances all shards window by window over the
barrier grid ``L, 2L, 3L, ...``:

1. run every shard up to (exclusive of) the next barrier ``h``;
2. gather each shard's cross-cluster mailbox, merge-sort the entries by
   ``(arrival, sender, xseq)`` — a total order every shard layout
   reproduces — and inject each envelope into its destination shard;
3. repeat until the horizon, then run the final window inclusively.

Determinism is the design driver, not an afterthought.  Messages between
different owner clusters take the mailbox *even under a single-shard
kernel* (where a priority -1 flush event at each barrier plays the role of
step 2), so the delivery schedule is a function of the cluster topology
only, never of how clusters are packed onto shards.  Fixed-seed runs are
byte-identical serial-vs-sharded — the parity tests in
``tests/test_sharded_parity.py`` pin exactly that.

Windows end *exclusive* of the barrier (``nextafter(h, -inf)``): events at
``h`` itself belong to the next window, after the exchange, matching the
single-shard flush's priority -1 position among same-time events.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


class ShardedSimulator:
    """Drives N per-cluster shards under conservative-lookahead barriers.

    Mirrors the :class:`Simulator` surface the harness drives (``now``,
    ``run_for``, ``stop``, ``events_processed``), so a deployment can treat
    either kernel uniformly.

    Args:
        simulators: One serial kernel per shard, in shard order.
        pipelines: The matching delivery pipelines (``take_outbox`` /
            ``deliver_cross`` ends of the cross-shard mailbox).
        route: Maps a destination process id to its shard index.
        lookahead_provider: Returns the conservative lookahead ``L`` in
            seconds, or ``None`` when no cross-cluster pair exists (then no
            barriers are needed and windows span the whole horizon).
            Resolved lazily at the first ``run_for`` because RTT overrides
            land after deployment construction.
    """

    def __init__(
        self,
        simulators: List[Simulator],
        pipelines: List[object],
        route: Callable[[str], int],
        lookahead_provider: Callable[[], Optional[float]],
        barrier_provider: Optional[Callable[[float], Optional[float]]] = None,
    ) -> None:
        self.now: float = 0.0
        self._simulators = simulators
        self._pipelines = pipelines
        self._route = route
        self._lookahead_provider = lookahead_provider
        #: Optional piecewise barrier schedule (trace-driven RTTs make the
        #: lookahead time-varying).  When set, it overrides the static grid;
        #: the single-shard flush installs the same provider so both kernels
        #: walk the identical barrier sequence.
        self._barrier_provider = barrier_provider
        self._lookahead: Optional[float] = None
        self._lookahead_resolved = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Simulator-shaped surface
    # ------------------------------------------------------------------ #
    @property
    def events_processed(self) -> int:
        """Total events executed across all shards."""
        return sum(sim.events_processed for sim in self._simulators)

    def stop(self) -> None:
        """Request that the window loop return after the current window."""
        self._stopped = True
        for sim in self._simulators:
            sim.stop()

    def run_for(self, duration: float) -> None:
        """Advance all shards ``duration`` units of virtual time."""
        self.run(until=self.now + duration)

    # ------------------------------------------------------------------ #
    # The window loop
    # ------------------------------------------------------------------ #
    def _resolve_lookahead(self) -> Optional[float]:
        if not self._lookahead_resolved:
            self._lookahead = self._lookahead_provider()
            self._lookahead_resolved = True
        return self._lookahead

    def _next_barrier(self, time: float, lookahead: float) -> float:
        """Smallest grid point ``k * L`` strictly after ``time``.

        The same integer-search arithmetic as the single-shard flush
        (``DeliveryPipeline._next_barrier``), so both kernels walk the
        identical float grid.
        """
        k = int(time / lookahead)
        while k * lookahead <= time:
            k += 1
        while k > 1 and (k - 1) * lookahead > time:
            k -= 1
        return k * lookahead

    def run(self, until: float) -> None:
        """Run every shard to ``until``, exchanging mailboxes at barriers."""
        self._stopped = False
        provider = self._barrier_provider
        lookahead = None if provider is not None else self._resolve_lookahead()
        simulators = self._simulators
        window_start = self.now
        while not self._stopped:
            if provider is not None:
                next_barrier = provider(self.now)
                barrier = until if next_barrier is None else min(next_barrier, until)
            elif lookahead is None:
                barrier = until
            else:
                barrier = self._next_barrier(self.now, lookahead)
                if barrier > until:
                    barrier = until
            # Exclusive window: events at the barrier itself run *after*
            # the exchange, in the next window.
            edge = math.nextafter(barrier, -math.inf)
            for sim in simulators:
                sim.run(until=edge)
            if any(sim._stopped for sim in simulators):
                self._stopped = True
                break
            self._exchange(window_start)
            self.now = barrier
            window_start = barrier
            if barrier >= until:
                break
        if self._stopped:
            self.now = max(self.now, max(sim.now for sim in simulators))
            return
        # Final inclusive pass: events at exactly ``until`` (the serial
        # kernel processes them) run now, after the last exchange.
        for sim in simulators:
            sim.run(until=until)
        self.now = until

    def _exchange(self, window_start: float) -> None:
        """Merge all shards' mailboxes and inject at the current barrier."""
        pipelines = self._pipelines
        batches = [pipeline.take_outbox() for pipeline in pipelines]
        total = sum(len(batch) for batch in batches)
        if not total:
            return
        if total == len(batches[0]):
            entries = batches[0]
        else:
            entries = [entry for batch in batches for entry in batch]
        # (arrival, sender, xseq) is a total order — identical to the
        # single-shard flush's sort — so injection order, and with it every
        # receiver CPU slot, is shard-count invariant.
        entries.sort()
        route = self._route
        for entry in entries:
            arrival = entry[0]
            if arrival < window_start:
                raise SimulationError(
                    f"conservative lookahead violated: cross-shard message from "
                    f"{entry[1]!r} arrives at {arrival}, before the window start "
                    f"{window_start} (lookahead too large for the topology)"
                )
            pipelines[route(entry[3])].deliver_cross(arrival, entry[3], entry[4])


__all__ = ["ShardedSimulator"]
