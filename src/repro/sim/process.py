"""Base class for simulated processes (replicas, clients, joiners).

A :class:`Process` owns an identifier, a reference to the simulator, and a
mailbox-style ``receive`` entry point invoked by the network when a message is
delivered.  Subclasses implement ``on_message`` and may override lifecycle
hooks (``on_start``, ``on_crash``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.sim.rng import SeededRng, stable_hash
from repro.sim.simulator import Simulator, Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.network import Network


class Process:
    """A named participant in a simulation.

    Attributes:
        process_id: Globally unique identifier (e.g. ``"c0/r2"``).
        simulator: The simulation kernel this process is attached to.
        network: Set by :meth:`attach` when the process joins a network.
        crashed: Crashed processes silently drop every delivery.
    """

    def __init__(self, process_id: str, simulator: Simulator) -> None:
        self.process_id = process_id
        self.simulator = simulator
        self.network: Optional["Network"] = None
        self.crashed = False
        #: Gray-failure state: CPU multiplier (>1 is a slow replica) and the
        #: local timer-clock rate (<1 fires timers early).  Both default to
        #: 1.0 and multiply exactly, so healthy runs are unchanged.
        self.cpu_factor = 1.0
        self.timer_rate = 1.0
        #: Timers created through :meth:`new_timer`, kept so a later
        #: clock-skew fault reaches timers armed before it fired.
        self._timers: list = []
        # Inherit the kernel RNG's owner so the stream-ownership audit
        # (``strict_streams``) covers per-process streams too.
        self.rng = SeededRng(
            simulator.seed ^ stable_hash([process_id]),
            f"process/{process_id}",
            owner=simulator.rng.owner,
        )
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, network: "Network") -> None:
        """Bind this process to a network (called by ``Network.register``)."""
        self.network = network

    def start(self) -> None:
        """Run ``on_start`` exactly once; called by the deployment builder."""
        if self._started:
            return
        self._started = True
        self.on_start()

    def crash(self) -> None:
        """Crash-stop the process: it no longer receives or sends."""
        if not self.crashed:
            self.crashed = True
            self.on_crash()

    def recover(self) -> None:
        """Undo a crash (used by tests that model transient outages)."""
        self.crashed = False

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        """Hook invoked when the process starts (default: nothing)."""

    def on_crash(self) -> None:
        """Hook invoked when the process crashes (default: nothing)."""

    def on_message(self, sender: str, message: Any) -> None:
        """Handle a delivered message.  Subclasses override this."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Conveniences
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.simulator.now

    def deliver(self, sender: str, message: Any) -> None:
        """Entry point used by the network; filters deliveries while crashed."""
        if self.crashed:
            return
        self.on_message(sender, message)

    def after(self, delay: float, callback, label: str = "") -> None:
        """Schedule a callback guarded against post-crash execution."""

        def _guarded() -> None:
            if not self.crashed:
                callback()

        self.simulator.schedule(delay, _guarded, label=label or f"{self.process_id}:after")

    def new_timer(self, duration: float, callback, name: str = "") -> Timer:
        """Create a timer whose callback is suppressed once crashed."""

        def _guarded() -> None:
            if not self.crashed:
                callback()

        timer = self.simulator.timer(duration, _guarded, name=f"{self.process_id}:{name}")
        timer.rate = self.timer_rate
        self._timers.append(timer)
        return timer

    # ------------------------------------------------------------------ #
    # Gray-failure knobs (fault injectors call these at fire time)
    # ------------------------------------------------------------------ #
    def set_cpu_factor(self, factor: float) -> None:
        """Scale this process's CPU service times (``1.0`` restores health).

        Applies to the network port's processing/receive costs and to any
        subclass-specific CPU work (e.g. replica execution delay) that reads
        ``self.cpu_factor``.
        """
        if factor <= 0.0:
            raise ValueError(f"cpu_factor must be positive, got {factor}")
        self.cpu_factor = factor
        network = self.network
        if network is not None:
            port = network.pipeline.ports.get(self.process_id)
            if port is not None and port.process is self:
                port.cpu_factor = factor

    def set_timer_rate(self, rate: float) -> None:
        """Skew this process's timer clock.

        ``rate < 1`` is a fast local clock (timers fire early); ``rate > 1``
        is a slow clock.  Affects timers armed after the call; already-armed
        deadlines run to their original expiry.
        """
        if rate <= 0.0:
            raise ValueError(f"timer_rate must be positive, got {rate}")
        self.timer_rate = rate
        for timer in self._timers:
            timer.rate = rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.process_id} at t={self.now:.3f}>"


__all__ = ["Process"]
