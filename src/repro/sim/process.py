"""Base class for simulated processes (replicas, clients, joiners).

A :class:`Process` owns an identifier, a reference to the simulator, and a
mailbox-style ``receive`` entry point invoked by the network when a message is
delivered.  Subclasses implement ``on_message`` and may override lifecycle
hooks (``on_start``, ``on_crash``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.sim.rng import SeededRng, stable_hash
from repro.sim.simulator import Simulator, Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.network import Network


class Process:
    """A named participant in a simulation.

    Attributes:
        process_id: Globally unique identifier (e.g. ``"c0/r2"``).
        simulator: The simulation kernel this process is attached to.
        network: Set by :meth:`attach` when the process joins a network.
        crashed: Crashed processes silently drop every delivery.
    """

    def __init__(self, process_id: str, simulator: Simulator) -> None:
        self.process_id = process_id
        self.simulator = simulator
        self.network: Optional["Network"] = None
        self.crashed = False
        # Inherit the kernel RNG's owner so the stream-ownership audit
        # (``strict_streams``) covers per-process streams too.
        self.rng = SeededRng(
            simulator.seed ^ stable_hash([process_id]),
            f"process/{process_id}",
            owner=simulator.rng.owner,
        )
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, network: "Network") -> None:
        """Bind this process to a network (called by ``Network.register``)."""
        self.network = network

    def start(self) -> None:
        """Run ``on_start`` exactly once; called by the deployment builder."""
        if self._started:
            return
        self._started = True
        self.on_start()

    def crash(self) -> None:
        """Crash-stop the process: it no longer receives or sends."""
        if not self.crashed:
            self.crashed = True
            self.on_crash()

    def recover(self) -> None:
        """Undo a crash (used by tests that model transient outages)."""
        self.crashed = False

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        """Hook invoked when the process starts (default: nothing)."""

    def on_crash(self) -> None:
        """Hook invoked when the process crashes (default: nothing)."""

    def on_message(self, sender: str, message: Any) -> None:
        """Handle a delivered message.  Subclasses override this."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Conveniences
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.simulator.now

    def deliver(self, sender: str, message: Any) -> None:
        """Entry point used by the network; filters deliveries while crashed."""
        if self.crashed:
            return
        self.on_message(sender, message)

    def after(self, delay: float, callback, label: str = "") -> None:
        """Schedule a callback guarded against post-crash execution."""

        def _guarded() -> None:
            if not self.crashed:
                callback()

        self.simulator.schedule(delay, _guarded, label=label or f"{self.process_id}:after")

    def new_timer(self, duration: float, callback, name: str = "") -> Timer:
        """Create a timer whose callback is suppressed once crashed."""

        def _guarded() -> None:
            if not self.crashed:
                callback()

        return self.simulator.timer(duration, _guarded, name=f"{self.process_id}:{name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.process_id} at t={self.now:.3f}>"


__all__ = ["Process"]
