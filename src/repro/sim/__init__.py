"""Deterministic discrete-event simulation kernel.

The kernel provides a virtual clock, an event queue with stable ordering,
cancellable timers, and a :class:`~repro.sim.process.Process` base class that
protocol components build on.  Every run with the same seed and the same
scenario produces the same schedule, which is what makes the protocol tests
and benchmarks reproducible.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.process import Process
from repro.sim.rng import SeededRng
from repro.sim.simulator import Simulator, Timer

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "SeededRng",
    "Simulator",
    "Timer",
]
