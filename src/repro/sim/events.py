"""Event objects and the priority queue that orders them.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned at insertion, so two events scheduled for the same instant run in the
order they were scheduled.  This total order is what keeps simulations
deterministic across runs and platforms.

Hot-path layout: an :class:`Event` *is* its own heap entry — a ``list``
subclass laid out as ``[time, priority, sequence, callback, arg, cancelled,
label]`` — so a push is a single allocation and every heap sift comparison is
a native element-wise list compare (it never gets past the unique ``sequence``
key, so callbacks are never compared).  This is the ``sched``-module trick,
with a list instead of a tuple because cancellation mutates the entry in
place.  Timer-heavy workloads cancel far more events than they fire (leader
watchdogs re-arm per message), so the queue counts cancellations reported via
:meth:`EventQueue.notify_cancel` and compacts the heap once dead entries
dominate, instead of letting them linger until their original deadline.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

# Layout indexes of an Event (shared with the Simulator's run loop).
# NOTE: the raw push sequence (allocate Event, bump _sequence/_live,
# heappush) is intentionally inlined at the hottest call sites —
# Simulator.schedule/schedule_at and DeliveryPipeline.send/multicast —
# so any change to this layout or to the live/cancelled accounting must
# be mirrored there.
TIME = 0
PRIORITY = 1
SEQUENCE = 2
CALLBACK = 3
ARG = 4
CANCELLED = 5
LABEL = 6

#: Compaction triggers once at least this many reported cancellations are
#: buried in the heap *and* they make up at least half of it.
_COMPACT_MIN_CANCELLED = 256


class Event(list):
    """A single scheduled callback; also its own heap entry.

    Attributes (all views over the list layout above):
        time: Virtual time at which the callback fires.
        priority: Lower values fire first among events at the same time.
        sequence: Insertion order tie-breaker assigned by the queue.
        callback: Callable invoked when the event fires.
        arg: Optional single argument passed to ``callback`` (``None`` means
            the callback takes none).  Lets hot paths schedule a bound method
            plus payload instead of allocating a fresh closure per event.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
        label: Free-form debugging tag.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        return self[TIME]

    @property
    def priority(self) -> int:
        return self[PRIORITY]

    @property
    def sequence(self) -> int:
        return self[SEQUENCE]

    @property
    def callback(self) -> Callable[..., None]:
        return self[CALLBACK]

    @property
    def arg(self) -> Any:
        return self[ARG]

    @property
    def cancelled(self) -> bool:
        return self[CANCELLED]

    @property
    def label(self) -> str:
        return self[LABEL]

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self[CANCELLED] = True

    def fire(self) -> None:
        """Invoke the callback (with its bound argument, if any)."""
        arg = self[ARG]
        if arg is None:
            self[CALLBACK]()
        else:
            self[CALLBACK](arg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self[CANCELLED] else ""
        label = f" {self[LABEL]!r}" if self[LABEL] else ""
        return f"<Event t={self[TIME]:.6f} p={self[PRIORITY]} #{self[SEQUENCE]}{label}{state}>"


class EventQueue:
    """A stable priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_sequence", "_live", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0
        self._live = 0
        self._cancelled = 0  # cancellations reported via notify_cancel()

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        priority: int = 0,
        label: str = "",
        arg: Any = None,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time!r}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event((time, priority, sequence, callback, arg, False, label))
        self._live += 1
        heappush(self._heap, event)
        return event

    def push_batch(
        self,
        pairs: Any,
        callback: Callable[..., None],
        priority: int = 0,
        label: str = "",
        floor: float = 0.0,
    ) -> None:
        """Bulk-schedule ``callback`` once per ``(time, arg)`` pair.

        This is the multicast fan-out primitive: one call inserts a whole
        batch of delivery events instead of paying one :func:`heappush`
        (plus its Python call frame) per destination.  Sequence numbers are
        assigned in pair order, so the resulting pop order is exactly what
        per-pair :meth:`push` calls would have produced — only the heap's
        internal shape may differ, which is unobservable.

        When the batch is large relative to the live heap, the entries are
        appended and the heap is rebuilt with one O(n + k) :func:`heapify`
        instead of k O(log n) sift-ups (multicast arrivals are near-sorted,
        so either path is cheap; the bulk path bounds the worst case).

        Args:
            pairs: Iterable of ``(time, arg)`` tuples.
            callback: Shared callback, invoked with each pair's ``arg``.
            priority: Shared priority.
            label: Shared debugging label.
            floor: Scheduling any pair before this time raises.
        """
        heap = self._heap
        sequence = self._sequence
        events: List[Event] = []
        append = events.append
        for time, arg in pairs:
            if time < floor:
                raise SimulationError(
                    f"cannot schedule an event at {time!r}, before the floor {floor!r}"
                )
            append(Event((time, priority, sequence, callback, arg, False, label)))
            sequence += 1
        self._sequence = sequence
        self._live += len(events)
        if len(events) * 8 >= len(heap):
            heap.extend(events)
            heapify(heap)
        else:
            for event in events:
                heappush(heap, event)

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)
            if event[CANCELLED]:
                if self._cancelled:
                    self._cancelled -= 1
                continue
            self._live -= 1
            return event
        return None

    def pop_due(self, limit: Optional[float]) -> Optional[Event]:
        """Pop the next live event firing at or before ``limit``.

        Returns ``None`` (leaving the event queued) when the next live event
        fires after ``limit``, or when the queue is empty.  ``limit=None``
        means no bound.  This is the run loop's primitive: one heap traversal
        where separate peek-then-pop calls would skip cancelled entries twice.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event[CANCELLED]:
                heappop(heap)
                if self._cancelled:
                    self._cancelled -= 1
                continue
            if limit is not None and event[TIME] > limit:
                return None
            heappop(heap)
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][CANCELLED]:
            heappop(heap)
            if self._cancelled:
                self._cancelled -= 1
        if not heap:
            return None
        return heap[0][TIME]

    def discard_cancelled(self) -> None:
        """Compact the heap by dropping cancelled entries (housekeeping).

        Compacts *in place* (slice assignment) so aliases to the heap list —
        the simulator's run loop holds one — survive compaction.
        """
        live = [event for event in self._heap if not event[CANCELLED]]
        heapify(live)
        self._heap[:] = live
        self._cancelled = 0

    def notify_cancel(self) -> None:
        """Record that one previously-pushed event was cancelled.

        Once reported cancellations both exceed a floor and make up half the
        heap, the heap is compacted so timer churn cannot grow it without
        bound.
        """
        self._live = max(0, self._live - 1)
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._heap)
        ):
            self.discard_cancelled()


def noop() -> None:
    """A do-nothing callback, useful as a placeholder in tests."""
    return None


__all__ = ["Event", "EventQueue", "noop"]
