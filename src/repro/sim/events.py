"""Event objects and the priority queue that orders them.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned at insertion, so two events scheduled for the same instant run in the
order they were scheduled.  This total order is what keeps simulations
deterministic across runs and platforms.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the callback fires.
        priority: Lower values fire first among events at the same time.
        sequence: Insertion order tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A stable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time!r}")
        event = Event(
            time=time,
            priority=priority,
            sequence=self._sequence,
            callback=callback,
            label=label,
        )
        self._sequence += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def discard_cancelled(self) -> None:
        """Compact the heap by dropping cancelled entries (housekeeping)."""
        live = [event for event in self._heap if not event.cancelled]
        heapq.heapify(live)
        self._heap = live

    def notify_cancel(self) -> None:
        """Record that one previously-pushed event was cancelled."""
        self._live = max(0, self._live - 1)


def noop() -> None:
    """A do-nothing callback, useful as a placeholder in tests."""
    return None


__all__ = ["Event", "EventQueue", "noop"]
