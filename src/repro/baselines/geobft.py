"""GeoBFT-like baseline (ResilientDB's clustered protocol), for experiment E6.

GeoBFT [Gupta et al., VLDB 2020] structures replication the same way Hamava
does — clusters order locally and share certified batches globally — but it:

* uses a PBFT-style protocol inside every cluster,
* keeps ordering of the next batch going while earlier batches are still
  being shared and executed (a deep ordering pipeline), and
* has **no reconfiguration support**: membership is fixed for the lifetime of
  the deployment, which is exactly the gap Hamava fills.

We model those three properties with configuration: the BFT-SMaRt (PBFT-like)
engine, ``pipeline_local_ordering=True``, and the single-workflow reconfig
path with no churn ever scheduled (so no reconfiguration machinery runs).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.config import HamavaConfig
from repro.harness.builder import Scenario
from repro.harness.deployment import Deployment, DeploymentSpec
from repro.harness.scenario import register_preset


def geobft_config(base: Optional[HamavaConfig] = None) -> HamavaConfig:
    """The configuration modelling GeoBFT on top of the shared substrate."""
    base = base or HamavaConfig()
    config = base.with_engine("bftsmart")
    config.parallel_reconfig = False
    config.pipeline_local_ordering = True
    return config


#: Scenario preset: ``Scenario(...).preset("geobft")`` runs this baseline.
register_preset("geobft", geobft_config)


def geobft_scenario(name: str = "geobft") -> Scenario:
    """A fluent builder preconfigured for the GeoBFT baseline (E6)."""
    return Scenario(name).preset("geobft").engine("bftsmart")


def build_geobft_deployment(
    clusters: Sequence[Tuple[int, str]],
    seed: int = 1,
    client_threads: int = 16,
    config: Optional[HamavaConfig] = None,
    **spec_kwargs,
) -> Deployment:
    """Build a GeoBFT deployment over the given clusters."""
    spec = DeploymentSpec(
        clusters=clusters,
        config=geobft_config(config),
        seed=seed,
        client_threads=client_threads,
        **spec_kwargs,
    )
    return Deployment(spec)


__all__ = ["build_geobft_deployment", "geobft_config", "geobft_scenario"]
