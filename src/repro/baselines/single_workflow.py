"""Single-workflow reconfiguration baseline (experiment E5.2).

Hamava's design takes reconfigurations *off* the critical path: they are
collected as a set and disseminated in parallel with transaction ordering.
The ablation orders every reconfiguration request through the same consensus
as transactions, where it occupies batch slots and is processed in sequence —
the behaviour the paper compares against in Fig. 5b.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.config import HamavaConfig
from repro.harness.builder import Scenario
from repro.harness.deployment import Deployment, DeploymentSpec
from repro.harness.scenario import register_preset


def single_workflow_config(base: Optional[HamavaConfig] = None) -> HamavaConfig:
    """Configuration with reconfigurations ordered through the transaction path."""
    config = base or HamavaConfig()
    config.parallel_reconfig = False
    return config


#: Scenario preset: ``Scenario(...).preset("single_workflow")`` runs the ablation.
register_preset("single_workflow", single_workflow_config)


def single_workflow_scenario(name: str = "single_workflow") -> Scenario:
    """A fluent builder preconfigured for the single-workflow ablation (E5.2)."""
    return Scenario(name).preset("single_workflow")


def build_single_workflow_deployment(
    clusters: Sequence[Tuple[int, str]],
    engine: str = "hotstuff",
    seed: int = 1,
    client_threads: int = 16,
    config: Optional[HamavaConfig] = None,
    **spec_kwargs,
) -> Deployment:
    """Build a deployment running the single-workflow reconfiguration variant."""
    spec = DeploymentSpec(
        clusters=clusters,
        config=single_workflow_config(config).with_engine(engine),
        seed=seed,
        client_threads=client_threads,
        **spec_kwargs,
    )
    return Deployment(spec)


__all__ = [
    "build_single_workflow_deployment",
    "single_workflow_config",
    "single_workflow_scenario",
]
