"""Baseline systems the paper compares against.

* :mod:`repro.baselines.geobft` — a GeoBFT-like clustered replication system
  (clustered PBFT with certified global sharing, pipelined local ordering,
  no reconfiguration support), used in experiment E6.
* :mod:`repro.baselines.pbft_global` — non-clustered PBFT over all replicas,
  the classical baseline clustered replication is motivated against (E0/E1).
* :mod:`repro.baselines.single_workflow` — Hamava with reconfigurations
  ordered through the transaction consensus instead of the dedicated
  parallel workflow, the ablation of experiment E5.2.
"""

from repro.baselines.geobft import build_geobft_deployment, geobft_config, geobft_scenario
from repro.baselines.pbft_global import build_global_pbft_deployment, global_pbft_scenario
from repro.baselines.single_workflow import (
    build_single_workflow_deployment,
    single_workflow_config,
    single_workflow_scenario,
)

__all__ = [
    "build_geobft_deployment",
    "build_global_pbft_deployment",
    "build_single_workflow_deployment",
    "geobft_config",
    "geobft_scenario",
    "global_pbft_scenario",
    "single_workflow_config",
    "single_workflow_scenario",
]
