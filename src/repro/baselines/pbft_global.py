"""Non-clustered PBFT baseline: one consensus group spanning all replicas.

Classical Byzantine replication (PBFT and descendants) runs a single group
over every replica, so each decision needs global all-to-all communication —
the ``O(2(zn)^2)`` row of the paper's Table I.  Clustered replication's whole
motivation (E0/E1) is that this scales poorly with node count and distance.

The baseline reuses the Hamava replica with a single "cluster" that contains
every node; individual replicas can be placed in different regions through
``region_overrides`` so the group genuinely spans the WAN.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.config import HamavaConfig
from repro.harness.builder import Scenario
from repro.harness.deployment import Deployment, DeploymentSpec


def global_pbft_scenario(
    total_nodes: int,
    regions: Optional[Sequence[str]] = None,
    name: str = "pbft_global",
    engine: str = "bftsmart",
) -> Scenario:
    """A fluent builder for the single-group baseline spanning ``regions``.

    The one "cluster" contains every replica; replicas are spread
    round-robin across the regions through per-replica placement, so the
    group genuinely spans the WAN.
    """
    regions = list(regions or ["us-west1"])
    scenario = Scenario(name).clusters((total_nodes, regions[0])).engine(engine)
    for index in range(total_nodes):
        scenario.place(f"c0/r{index}", regions[index % len(regions)])
    return scenario


def build_global_pbft_deployment(
    total_nodes: int,
    regions: Optional[Sequence[str]] = None,
    seed: int = 1,
    client_threads: int = 16,
    engine: str = "bftsmart",
    config: Optional[HamavaConfig] = None,
    **spec_kwargs,
) -> Deployment:
    """Build a single-group deployment of ``total_nodes`` replicas.

    Args:
        total_nodes: Number of replicas in the single global group.
        regions: Optional list of regions; replicas are spread round-robin
            across them (defaults to a single region).
        seed: Scenario seed.
        client_threads: Closed-loop threads for the single client.
        engine: Ordering engine; PBFT-like by default.
        config: Optional protocol configuration to start from.
    """
    regions = list(regions or ["us-west1"])
    base_region = regions[0]
    overrides: Dict[str, str] = {}
    for index in range(total_nodes):
        overrides[f"c0/r{index}"] = regions[index % len(regions)]
    deployment_config = (config or HamavaConfig()).with_engine(engine)
    spec = DeploymentSpec(
        clusters=[(total_nodes, base_region)],
        config=deployment_config,
        seed=seed,
        client_threads=client_threads,
        region_overrides=overrides,
        **spec_kwargs,
    )
    return Deployment(spec)


__all__ = ["build_global_pbft_deployment", "global_pbft_scenario"]
