"""The total-order-broadcast interface that Hamava's stage 1 builds on.

Alg. 7 of the paper treats the local ordering protocol as a black box ``tob``
with ``broadcast`` / ``deliver`` plus ``new-leader`` / ``complain`` hooks.
Hamava batches transactions, so the engines here order *batches*: one
consensus decision per Hamava round per cluster (this matches the paper's
evaluation setup of batches of 100 transactions per round).

Engines deliver a :class:`Decision` carrying the batch and a commit
certificate with at least ``2f+1`` signatures from the cluster, which stage 2
ships to remote clusters as the proof that the batch was really ordered.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.net.crypto import Certificate, KeyRegistry
from repro.net.links import AuthenticatedBestEffortBroadcast, AuthenticatedPerfectLink
from repro.net.message import Envelope, payload_digest
from repro.net.network import Network
from repro.sim.simulator import Simulator


def commit_digest(cluster_id: int, sequence: int, value: Any) -> str:
    """Digest that commit certificates sign: binds cluster, round, and batch."""
    return f"commit|c{cluster_id}|s{sequence}|{payload_digest(value)}"


@dataclass
class ConsensusConfig:
    """Tunable constants shared by the consensus engines.

    Attributes:
        instance_timeout: Seconds a replica waits for a decision before
            complaining about the local leader (the paper's experiments use
            large timeouts, e.g. 20 s, to avoid spurious view changes).
        payload_byte_size: Estimated serialized size of one transaction,
            used by the bandwidth model (the paper uses 1 KB operations).
        chained_decide_grace: How long the chained engine's leader waits for
            a successor proposal to piggyback a decision before falling back
            to an explicit decide broadcast (``hotstuff_chained`` only).
            Must be well below ``instance_timeout`` so followers never
            complain about a decide that is merely riding the chain.
    """

    instance_timeout: float = 20.0
    payload_byte_size: int = 1024
    chained_decide_grace: float = 0.05


@dataclass
class Decision:
    """A delivered consensus decision for one sequence number."""

    sequence: int
    value: Any
    certificate: Certificate
    decided_at: float = 0.0

    def digest(self) -> str:
        """The digest the certificate covers."""
        return self.certificate.digest


@dataclass
class _Instance:
    """Book-keeping for one in-flight consensus instance."""

    sequence: int
    value: Any = None
    value_digest: Optional[str] = None
    prepared_value: Any = None
    prepared_certificate: Optional[Certificate] = None
    decided: bool = False
    votes: dict = field(default_factory=dict)
    #: Cache of ``commit_digest(cluster, sequence, value)`` together with the
    #: value identity it was computed for (the digest walks the whole batch,
    #: and the engines recompute it once per vote/phase otherwise).
    commit_digest_value: Any = None
    commit_digest_cache: Optional[str] = None


@dataclass
class ReadLease:
    """Leader-granted read-lease state held by one replica.

    The lease lets a replica answer reads from its local store without
    consulting the ordering protocol.  Safety rests on three rules the
    grantor and holders enforce together:

    1. A grant is only honoured while unexpired **and** issued by the
       leader of the *current* view (``view_ts`` must match) — a holder
       that installs a new leader drops old-view leases immediately.
    2. The leader refreshes grants at half the lease duration, so a
       correct leader's followers stay covered continuously; a leader that
       stops refreshing silently revokes every lease within one duration.
    3. A *new* leader withholds its first grant for one full lease
       duration after taking office.  Writes only execute at the round
       grain after consensus at the (new) leader, so by the time any
       lease-covered read could race a new-leader write, every old-leader
       lease has lapsed.

    In the simulation all replicas share one exact virtual clock, so lease
    expiry needs no clock-drift margin; a real deployment would subtract a
    maximum drift bound from ``duration`` when checking validity.
    """

    duration: float = 2.0
    expires_at: float = 0.0
    view_ts: int = -1

    def install(self, view_ts: int, granted_at: float, duration: float) -> None:
        """Adopt a grant (keeps the latest expiry for the granting view)."""
        if view_ts < self.view_ts:
            return  # stale grant from a deposed leader
        if view_ts > self.view_ts:
            self.view_ts = view_ts
            self.expires_at = 0.0
        self.expires_at = max(self.expires_at, granted_at + duration)

    def valid(self, now: float, current_view_ts: int) -> bool:
        """Whether a read may be served locally right now."""
        return self.view_ts == current_view_ts and now < self.expires_at

    def revoke(self) -> None:
        """Drop the lease (on leader change or suspicion)."""
        self.expires_at = 0.0


class TotalOrderBroadcast(ABC):
    """Common machinery for the HotStuff-like and PBFT-like engines.

    Args:
        owner: Replica id this engine instance runs at.
        cluster_id: Numeric id of the local cluster.
        members_fn: Callable returning the *current* cluster membership as a
            **sorted tuple** (the ``members_fn`` contract, shared by the
            engines, BRD, and leader election).  A callable (not a list) so
            reconfiguration is picked up each use; sortedness is the
            supplier's responsibility — consumers never re-sort, because
            membership order decides leader rotation and re-sorting per
            message is measurable (~9k defensive sorts per macro run before
            the contract was tightened).  Replicas supply their per-view
            cached sorted views; test stubs must use sorted tuples too (see
            ``tests/helpers.py``).
        faults_fn: Callable returning the current failure threshold ``f``.
        network: Simulated network.
        simulator: Simulation kernel.
        config: Engine constants.
        on_deliver: Callback ``(Decision) -> None``.
        on_complain: Callback ``(leader_id) -> None`` used to feed Alg. 8.
        round_marker_fn: Optional ``(sequence) -> marker | None``.  Called
            when this replica sends its commit-phase vote; a non-``None``
            marker rides the vote to its receivers.  Hamava piggybacks the
            round's BRD submission (usually the empty set) here, eliding the
            separate ``BrdSubmit`` message on the steady-state path.
        on_round_marker: Optional ``(sequence, sender, marker) -> None``.
            Invoked at a receiver for every commit-phase vote carrying a
            marker (the leader for leader-collected engines; everyone for
            all-to-all engines).  Markers are opaque to the engine.
        decide_extra_fn: Optional ``(sequence) -> extra | None``.  Asked by
            engines that broadcast an explicit decide message, just before
            that broadcast; a non-``None`` value rides the decide.  Hamava
            attaches the quiet-round empty-unanimity proof (``core/brd.py``).
        on_decide_extra: Optional ``(sequence, sender, extra) -> None``.
            Invoked at a receiver after a decide carrying an extra delivers.
    """

    #: Message payload classes this engine consumes (set by subclasses).
    MESSAGE_TYPES: tuple = ()

    def __init__(
        self,
        owner: str,
        cluster_id: int,
        members_fn: Callable[[], List[str]],
        faults_fn: Callable[[], int],
        network: Network,
        simulator: Simulator,
        config: Optional[ConsensusConfig] = None,
        on_deliver: Optional[Callable[[Decision], None]] = None,
        on_complain: Optional[Callable[[str], None]] = None,
        round_marker_fn: Optional[Callable[[int], Any]] = None,
        on_round_marker: Optional[Callable[[int, str, Any], None]] = None,
        decide_extra_fn: Optional[Callable[[int], Any]] = None,
        on_decide_extra: Optional[Callable[[int, str, Any], None]] = None,
    ) -> None:
        self.owner = owner
        self.cluster_id = cluster_id
        self.members_fn = members_fn
        self.faults_fn = faults_fn
        self.network = network
        self.simulator = simulator
        self.config = config or ConsensusConfig()
        self.on_deliver = on_deliver or (lambda decision: None)
        self.on_complain = on_complain or (lambda leader: None)
        self.round_marker_fn = round_marker_fn
        self.on_round_marker = on_round_marker
        self.decide_extra_fn = decide_extra_fn
        self.on_decide_extra = on_decide_extra
        self.apl = AuthenticatedPerfectLink(owner, network)
        self.abeb = AuthenticatedBestEffortBroadcast(owner, network, members_fn)
        self.leader: str = self.members()[0] if self.members() else owner
        self.view_ts: int = 0
        self.decisions: dict[int, Decision] = {}
        self._instances: dict[int, _Instance] = {}
        #: One lazy-deadline pool watches every in-flight instance: arming a
        #: leader watchdog is a dict write, disarming on decide a dict pop
        #: (see :class:`~repro.sim.simulator.DeadlinePool`) — replacing the
        #: per-instance Timer object and its schedule+cancel pair per round.
        self._watchdogs = simulator.deadline_pool(self._on_timeout, name=f"{owner}:tob")

    # ------------------------------------------------------------------ #
    # Membership helpers
    # ------------------------------------------------------------------ #
    @property
    def registry(self) -> KeyRegistry:
        """The key registry shared by the network."""
        return self.network.registry

    def members(self) -> Sequence[str]:
        """Current cluster membership (a sorted tuple, per the contract).

        No defensive re-sort: the replica supplies a cached sorted view, the
        engines only use this for quorum checks (order-insensitive) and the
        initial leader pick, and re-sorting per message is measurable.
        """
        return self.members_fn()

    def faults(self) -> int:
        """Current failure threshold ``f`` of the local cluster."""
        return self.faults_fn()

    def quorum(self) -> int:
        """Quorum size ``2f + 1``."""
        return 2 * self.faults() + 1

    def is_leader(self) -> bool:
        """Whether this replica currently leads the cluster."""
        return self.owner == self.leader

    # ------------------------------------------------------------------ #
    # Instances
    # ------------------------------------------------------------------ #
    def instance(self, sequence: int) -> _Instance:
        """Get or create the book-keeping record for a sequence number."""
        instance = self._instances.get(sequence)
        if instance is None:
            instance = self._instances[sequence] = _Instance(sequence=sequence)
        return instance

    def start_instance(self, sequence: int) -> None:
        """Arm the leader watchdog for this instance."""
        instance = self.instance(sequence)
        if instance.decided:
            return
        self._watchdogs.arm(sequence, self.config.instance_timeout)

    def _on_timeout(self, sequence: int) -> None:
        instance = self._instances.get(sequence)
        if instance is None or instance.decided:
            return
        self.on_complain(self.leader)
        # A timed-out instance may be one the rest of the cluster already
        # decided (a partial decide across a view change): re-report it to
        # the cluster — any decided peer answers with a value-carrying,
        # self-certifying decision — and keep watching until it resolves.
        self._request_catchup(sequence)
        self._watchdogs.arm(sequence, self.config.instance_timeout)

    def _request_catchup(self, sequence: int) -> None:
        """Subclass hook: ask the current leader to repair a stuck instance."""

    def set_timer_rate(self, rate: float) -> None:
        """Skew every engine timer pool (gray-failure clock-skew faults).

        Subclasses owning additional deadline pools (e.g. the chained
        engine's decide-grace pool) extend this so a clock-skew event
        reaches all of them.
        """
        self._watchdogs.rate = rate

    def stop_instance_timer(self, sequence: int) -> None:
        """Disarm the leader watchdog for a decided instance."""
        self._watchdogs.disarm(sequence)

    def _decide(self, sequence: int, value: Any, certificate: Certificate) -> None:
        instance = self.instance(sequence)
        if instance.decided:
            return
        instance.decided = True
        self.stop_instance_timer(sequence)
        decision = Decision(
            sequence=sequence,
            value=value,
            certificate=certificate,
            decided_at=self.simulator.now,
        )
        self.decisions[sequence] = decision
        self.on_deliver(decision)

    def has_decided(self, sequence: int) -> bool:
        """Whether this replica already delivered the given sequence."""
        return sequence in self.decisions

    def _adopt_certified_decision(self, sequence: int, value: Any, certificate) -> bool:
        """Adopt a peer's decided value after verifying its commit certificate.

        The catch-up path for both engines: the replica may never have seen
        the winning proposal (it voted for a different one, or none, across
        a view change), so the value arrives alongside the certificate and
        the certificate is checked against *that* value — ``2f+1`` member
        signatures over the commit digest prove the cluster decided it,
        regardless of which view or sender the reply came from.
        """
        instance = self.instance(sequence)
        if instance.decided or value is None:
            return False
        digest = commit_digest(self.cluster_id, sequence, value)
        if not self.registry.certificate_valid(
            certificate, self.members(), self.quorum(), digest=digest
        ):
            return False
        instance.value = value
        instance.value_digest = payload_digest(value)
        instance.commit_digest_value = value
        instance.commit_digest_cache = digest
        self._decide(sequence, value, certificate)
        return True

    def instance_commit_digest(self, instance: _Instance) -> str:
        """``commit_digest`` over an instance's value, cached per value.

        The digest walks the whole batch; engines need it once per commit
        vote, decide broadcast, and certificate check, so it is computed once
        per (instance, value identity) instead.
        """
        value = instance.value
        digest = instance.commit_digest_cache
        if digest is None or instance.commit_digest_value is not value:
            digest = commit_digest(self.cluster_id, instance.sequence, value)
            instance.commit_digest_value = value
            instance.commit_digest_cache = digest
        return digest

    # ------------------------------------------------------------------ #
    # Leader handling
    # ------------------------------------------------------------------ #
    def new_leader(self, leader: str, view_ts: int) -> None:
        """Install a new leader (invoked by Alg. 8 after leader election)."""
        if view_ts <= self.view_ts and leader == self.leader:
            return
        self.leader = leader
        self.view_ts = view_ts
        self.on_view_change()

    def on_view_change(self) -> None:
        """Subclass hook: recover in-flight instances under the new leader."""

    # ------------------------------------------------------------------ #
    # Abstract protocol surface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def propose(self, sequence: int, value: Any) -> None:
        """Leader entry point: start ordering ``value`` at ``sequence``."""

    @abstractmethod
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        """Consume an engine message.  Returns ``True`` if it was handled."""

    # ------------------------------------------------------------------ #
    # Introspection for tests and metrics
    # ------------------------------------------------------------------ #
    def pending_sequences(self) -> Iterable[int]:
        """Sequences started but not yet decided at this replica."""
        return [seq for seq, inst in self._instances.items() if not inst.decided]


__all__ = [
    "ConsensusConfig",
    "Decision",
    "ReadLease",
    "TotalOrderBroadcast",
    "commit_digest",
]
