"""A HotStuff-like local ordering engine (AVA-HOTSTUFF's substrate).

This is a faithful-in-structure, simplified-in-detail model of basic
(non-pipelined) HotStuff: the leader drives three linear voting phases
(prepare, pre-commit, commit) followed by a decide broadcast.  All
communication is leader-to-all and all-to-leader, so the per-decision message
complexity is linear in the cluster size — the ``O(8zn)`` row of the paper's
Table I.

The commit-phase votes sign the cluster/round/batch commit digest, so the
resulting certificate is exactly what Hamava's stage 2 forwards to remote
clusters and what remote replicas verify against their view of ``C_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.consensus.interface import TotalOrderBroadcast
from repro.net.crypto import Certificate, Signature
from repro.net.message import Envelope, Message, payload_digest

#: Ordered phases of one HotStuff instance.
PHASES = ("prepare", "precommit", "commit")

#: Phase preceding each quorum-carrying phase (avoids a list search per message).
_PREVIOUS_PHASE = {"precommit": "prepare", "commit": "precommit"}


@dataclass
class HsProposal(Message):
    """Leader's prepare-phase proposal carrying the batch."""

    cluster_id: int
    sequence: int
    view: int
    value: Any

    def estimated_size(self) -> int:
        return 256 + _value_size(self.value)

    def verification_cost(self) -> int:
        return 1


@dataclass
class HsVote(Message):
    """A replica's vote for one phase, sent to the leader.

    Commit-phase votes may carry an opaque ``round_marker`` (the replica's
    piggybacked BRD submission for the round — see ``round_marker_fn`` in
    ``consensus/interface.py``); the marker's signature is verified by the
    receiver, so it adds one verification to the message cost.
    """

    cluster_id: int
    sequence: int
    view: int
    phase: str
    value_digest: str
    commit_signature: Optional[Signature] = None
    round_marker: Any = None

    def verification_cost(self) -> int:
        return 1 if self.round_marker is None else 2


@dataclass
class HsPhase(Message):
    """Leader's pre-commit / commit / decide broadcast carrying a QC."""

    cluster_id: int
    sequence: int
    view: int
    phase: str
    value_digest: str
    certificate: Certificate = field(default_factory=lambda: Certificate(""))
    #: Opaque piggyback slot on the decide broadcast (``decide_extra_fn``);
    #: Hamava ships the quiet-round empty-unanimity proof here.
    extra: Any = None
    #: Catch-up decides (leader → laggard replies) carry the decided value
    #: so a replica that never saw the winning proposal can verify the
    #: commit certificate against it and adopt the decision.  Broadcast
    #: decides leave it ``None`` — receivers hold the value already.
    value: Any = None

    def estimated_size(self) -> int:
        size = 256 + 96 * len(self.certificate)
        extra = self.extra
        if extra is not None:
            size += 128 + 96 * len(extra) if hasattr(extra, "__len__") else 128
        if self.value is not None:
            size += _value_size(self.value)
        return size

    def verification_cost(self) -> int:
        # HotStuff aggregates votes into a quorum certificate that verifies in
        # (near) constant time (threshold signatures); receivers do not pay a
        # per-signature cost, which is the core of its linearity claim.
        return 2


@dataclass
class HsNewView(Message):
    """View-change report sent to the new leader."""

    cluster_id: int
    sequence: int
    view: int
    prepared_value: Any = None
    prepared_certificate: Optional[Certificate] = None

    def estimated_size(self) -> int:
        size = 256 + _value_size(self.prepared_value)
        if self.prepared_certificate is not None:
            size += 96 * len(self.prepared_certificate)
        return size

    def verification_cost(self) -> int:
        if self.prepared_certificate is None:
            return 1
        return max(1, len(self.prepared_certificate))


def _value_size(value: Any) -> int:
    """Rough serialized size of a proposal value (batch of transactions)."""
    if value is None:
        return 0
    if isinstance(value, (list, tuple)):
        return 1024 * len(value)
    return 1024


def _phase_digest(cluster_id: int, sequence: int, view: int, phase: str, value_digest: str) -> str:
    """Digest replicas vote over for the non-commit phases."""
    return f"hs|{phase}|c{cluster_id}|s{sequence}|v{view}|{value_digest}"


class HotStuffEngine(TotalOrderBroadcast):
    """Leader-driven, linear-communication total-order broadcast."""

    MESSAGE_TYPES = (HsProposal, HsVote, HsPhase, HsNewView)

    def __init__(self, *args, fetch_value: Optional[Callable[[int], Any]] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fetch_value = fetch_value
        #: Per (sequence, view, phase) vote certificates collected by the leader.
        self._vote_certs: Dict[tuple, Certificate] = {}
        #: Per (sequence, view, phase) commit-digest certificates (commit phase).
        self._commit_certs: Dict[tuple, Certificate] = {}
        self._voted: Dict[tuple, bool] = {}
        #: Per (sequence, view, completed phase) guard so each quorum fires
        #: its follow-up broadcast exactly once.  Without it every vote past
        #: the quorum re-broadcast the next phase (and receivers dropped the
        #: duplicate via ``_voted``) — two redundant broadcasts per decision.
        self._advanced: Dict[tuple, bool] = {}
        #: (sequence, view) pairs this leader already proposed for (see
        #: :meth:`propose` — one proposal per view, no self-equivocation).
        self._proposed_views: Dict[tuple, bool] = {}
        #: View-change reports per (sequence, view), keyed by sender so a
        #: laggard re-sending its report cannot double-count toward quorum.
        self._new_views: Dict[tuple, Dict[str, HsNewView]] = {}

    # ------------------------------------------------------------------ #
    # Proposing
    # ------------------------------------------------------------------ #
    def propose(self, sequence: int, value: Any) -> None:
        """Leader entry point: broadcast the prepare-phase proposal.

        At most one proposal per (sequence, view): a second ``propose`` in
        the same view (e.g. the new leader's batch timer racing its own
        view-change re-proposal) must not overwrite the in-flight value —
        replicas vote once per phase per view, so a self-equivocating
        leader would strand the instance with votes split across digests.
        """
        instance = self.instance(sequence)
        if instance.decided:
            return
        if not self.is_leader():
            instance.value = value
            instance.value_digest = payload_digest(value)
            return
        key = (sequence, self.view_ts)
        if self._proposed_views.get(key):
            return
        self._proposed_views[key] = True
        instance.value = value
        instance.value_digest = payload_digest(value)
        self.start_instance(sequence)
        proposal = HsProposal(
            cluster_id=self.cluster_id,
            sequence=sequence,
            view=self.view_ts,
            value=value,
        )
        self.abeb.broadcast(proposal)

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        payload = envelope.payload
        if not isinstance(payload, self.MESSAGE_TYPES):
            return False
        if payload.cluster_id != self.cluster_id:
            return False
        if isinstance(payload, HsProposal):
            self._on_proposal(sender, payload)
        elif isinstance(payload, HsVote):
            self._on_vote(sender, payload)
        elif isinstance(payload, HsPhase):
            self._on_phase(sender, payload)
        elif isinstance(payload, HsNewView):
            self._on_new_view(sender, payload)
        return True

    # -- replica side --------------------------------------------------- #
    def _on_proposal(self, sender: str, proposal: HsProposal) -> None:
        if sender != self.leader or proposal.view != self.view_ts:
            return
        instance = self.instance(proposal.sequence)
        if instance.decided:
            return
        instance.value = proposal.value
        instance.value_digest = payload_digest(proposal.value)
        self.start_instance(proposal.sequence)
        self._send_vote(proposal.sequence, "prepare", instance.value_digest)

    def _send_vote(self, sequence: int, phase: str, value_digest: str) -> None:
        key = (sequence, self.view_ts, phase)
        if self._voted.get(key):
            return
        self._voted[key] = True
        commit_signature = None
        round_marker = None
        if phase == "commit":
            instance = self.instance(sequence)
            digest = self.instance_commit_digest(instance)
            commit_signature = self.registry.sign(self.owner, digest)
            if self.round_marker_fn is not None:
                round_marker = self.round_marker_fn(sequence)
        vote = HsVote(
            cluster_id=self.cluster_id,
            sequence=sequence,
            view=self.view_ts,
            phase=phase,
            value_digest=value_digest,
            commit_signature=commit_signature,
            round_marker=round_marker,
        )
        self.apl.send(self.leader, vote)

    def _on_phase(self, sender: str, message: HsPhase) -> None:
        if message.phase == "decide" and message.value is not None:
            # Catch-up replies are self-certifying (the certificate is
            # checked against the carried value), so they are accepted
            # regardless of the local view — the laggard's whole problem is
            # that its view of the leader is behind.
            self._on_catchup_decide(sender, message)
            return
        if sender != self.leader or message.view != self.view_ts:
            return
        instance = self.instance(message.sequence)
        if instance.value_digest is None or instance.value_digest != message.value_digest:
            # The replica never saw the proposal (or saw a conflicting one);
            # it cannot vouch for the value, so it abstains.
            return
        if message.phase in ("precommit", "commit"):
            expected = _phase_digest(
                self.cluster_id,
                message.sequence,
                message.view,
                _PREVIOUS_PHASE[message.phase],
                message.value_digest,
            )
            if not self.registry.certificate_valid(
                message.certificate, self.members(), self.quorum(), digest=expected
            ):
                return
            if message.phase == "commit":
                instance.prepared_value = instance.value
                instance.prepared_certificate = message.certificate
            self._send_vote(message.sequence, message.phase, message.value_digest)
        elif message.phase == "decide":
            digest = self.instance_commit_digest(instance)
            if not self.registry.certificate_valid(
                message.certificate, self.members(), self.quorum(), digest=digest
            ):
                return
            self._decide(message.sequence, instance.value, message.certificate)
            if message.extra is not None and self.on_decide_extra is not None:
                self.on_decide_extra(message.sequence, sender, message.extra)

    def _on_catchup_decide(self, sender: str, message: HsPhase) -> None:
        """Adopt a value-carrying decide (a decided peer's reply to a laggard)."""
        self._adopt_certified_decision(message.sequence, message.value, message.certificate)

    # -- leader side ----------------------------------------------------- #
    def _on_vote(self, sender: str, vote: HsVote) -> None:
        if not self.is_leader() or vote.view != self.view_ts:
            return
        if vote.round_marker is not None and self.on_round_marker is not None:
            self.on_round_marker(vote.sequence, sender, vote.round_marker)
        instance = self.instance(vote.sequence)
        if instance.decided or instance.value is None:
            return
        if vote.value_digest != instance.value_digest:
            return
        key = (vote.sequence, vote.view, vote.phase)
        phase_digest = _phase_digest(
            self.cluster_id, vote.sequence, vote.view, vote.phase, vote.value_digest
        )
        cert = self._vote_certs.setdefault(key, Certificate(phase_digest, kind=vote.phase))
        cert.add(self.registry.sign(sender, phase_digest))
        if vote.phase == "commit" and vote.commit_signature is not None:
            cdigest = self.instance_commit_digest(instance)
            commit_cert = self._commit_certs.setdefault(key, Certificate(cdigest, kind="commit"))
            if self.registry.verify(vote.commit_signature) and vote.commit_signature.digest == cdigest:
                commit_cert.add(vote.commit_signature)
        if len(cert) < self.quorum():
            return
        self._advance_phase(vote.sequence, vote.phase, cert)

    def _advance_phase(self, sequence: int, completed_phase: str, cert: Certificate) -> None:
        instance = self.instance(sequence)
        key = (sequence, self.view_ts, completed_phase)
        if completed_phase == "prepare":
            next_phase = "precommit"
        elif completed_phase == "precommit":
            next_phase = "commit"
        elif completed_phase == "commit":
            commit_cert = self._commit_certs.get((sequence, self.view_ts, "commit"))
            if commit_cert is None or len(commit_cert) < self.quorum():
                return
            if self._advanced.get(key):
                return
            self._advanced[key] = True
            extra = None
            if self.decide_extra_fn is not None:
                extra = self.decide_extra_fn(sequence)
            decide = HsPhase(
                cluster_id=self.cluster_id,
                sequence=sequence,
                view=self.view_ts,
                phase="decide",
                value_digest=instance.value_digest or "",
                certificate=commit_cert,
                extra=extra,
            )
            self.abeb.broadcast(decide)
            return
        else:
            return
        if self._advanced.get(key):
            return
        self._advanced[key] = True
        message = HsPhase(
            cluster_id=self.cluster_id,
            sequence=sequence,
            view=self.view_ts,
            phase=next_phase,
            value_digest=instance.value_digest or "",
            certificate=cert,
        )
        self.abeb.broadcast(message)

    # ------------------------------------------------------------------ #
    # View change
    # ------------------------------------------------------------------ #
    def on_view_change(self) -> None:
        """Report pending instances to the new leader and re-arm timers."""
        for sequence in list(self.pending_sequences()):
            instance = self.instance(sequence)
            self.start_instance(sequence)
            report = HsNewView(
                cluster_id=self.cluster_id,
                sequence=sequence,
                view=self.view_ts,
                prepared_value=instance.prepared_value,
                prepared_certificate=instance.prepared_certificate,
            )
            self.apl.send(self.leader, report)

    def _on_new_view(self, sender: str, report: HsNewView) -> None:
        decision = self.decisions.get(report.sequence)
        if decision is not None:
            # The reporter is behind a decision this replica already holds
            # (it missed a partial decide across a view change); answer with
            # a value-carrying decide it can verify and adopt.  Any decided
            # replica answers — the stuck one may *be* the leader, in which
            # case only its peers can repair it.
            if sender != self.owner:
                self.apl.send(
                    sender,
                    HsPhase(
                        cluster_id=self.cluster_id,
                        sequence=report.sequence,
                        view=self.view_ts,
                        phase="decide",
                        value_digest=payload_digest(decision.value),
                        certificate=decision.certificate,
                        value=decision.value,
                    ),
                )
            return
        if not self.is_leader() or report.view != self.view_ts:
            return
        instance = self.instance(report.sequence)
        key = (report.sequence, report.view)
        reports = self._new_views.setdefault(key, {})
        reports[sender] = report  # dedup: re-sent reports must not double-count
        if len(reports) < self.quorum():
            return
        value = None
        for item in reports.values():
            if item.prepared_value is not None and item.prepared_certificate is not None:
                value = item.prepared_value
                break
        if value is None:
            value = instance.value
        if value is None and self.fetch_value is not None:
            value = self.fetch_value(report.sequence)
        if value is None:
            return
        del self._new_views[key]
        self.propose(report.sequence, value)

    def _request_catchup(self, sequence: int) -> None:
        """Re-report a stuck instance to the whole cluster (see base class).

        Broadcast, not leader-only: when a quorum already decided the
        sequence, the decided replicas no longer consider it pending and
        will never re-report it — they (not the possibly equally-stuck
        leader) hold the decision this replica is missing.
        """
        instance = self.instance(sequence)
        self.abeb.broadcast(
            HsNewView(
                cluster_id=self.cluster_id,
                sequence=sequence,
                view=self.view_ts,
                prepared_value=instance.prepared_value,
                prepared_certificate=instance.prepared_certificate,
            ),
        )


__all__ = ["HotStuffEngine", "HsNewView", "HsPhase", "HsProposal", "HsVote", "PHASES"]
