"""Local consensus substrates ("local ordering" in the paper).

Hamava is agnostic to the local replication protocol; the paper instantiates
it with HotStuff (AVA-HOTSTUFF) and BFT-SMaRt (AVA-BFTSMART).  This package
provides both engines behind a common :class:`TotalOrderBroadcast` interface
plus the round-robin leader-election module of Alg. 9.
"""

from repro.consensus.bftsmart import BftSmartEngine
from repro.consensus.hotstuff import HotStuffEngine
from repro.consensus.interface import (
    ConsensusConfig,
    Decision,
    TotalOrderBroadcast,
    commit_digest,
)
from repro.consensus.leader_election import LeaderElection
from repro.consensus.registry import ENGINES, make_engine

__all__ = [
    "BftSmartEngine",
    "ConsensusConfig",
    "Decision",
    "ENGINES",
    "HotStuffEngine",
    "LeaderElection",
    "TotalOrderBroadcast",
    "commit_digest",
    "make_engine",
]
