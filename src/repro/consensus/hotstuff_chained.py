"""Chained (pipelined) HotStuff: two phases per decision, decide rides the chain.

The basic engine (``consensus/hotstuff.py``) drives three linear vote rounds
(prepare / pre-commit / commit) plus a decide broadcast per decision — the
paper's Table-I ``O(8zn)`` row, kept untouched for fidelity.  This engine
collapses the pipeline the way chained HotStuff variants (and two-phase
descendants like Jolteon) do:

* **Two vote rounds instead of three.**  The leader's proposal starts a
  *prepare* round; the prepare quorum certificate comes back in a single
  *lock* broadcast; replicas lock on it and answer with their *commit* vote
  (which signs the Hamava commit digest and carries the piggybacked BRD
  round marker, exactly like the basic engine's commit vote).  The generic
  pre-commit round disappears.
* **The decide broadcast rides the next proposal.**  Once the leader holds
  the ``2f+1`` commit signatures it decides locally and, instead of
  broadcasting an explicit decide, attaches the commit certificate (and the
  ``decide_extra_fn`` payload — Hamava's quiet-round proof) to its *next*
  proposal in the chain.  A short grace timer
  (``ConsensusConfig.chained_decide_grace``) falls back to an explicit
  decide broadcast when no successor proposal shows up in time (end of a
  run, a stalled round), so followers are never left behind by more than
  the grace period.

Per steady-state decision this is one proposal + ``n-1`` prepare votes +
one lock broadcast + ``n-1`` commit votes — 4 broadcasts' worth of traffic
down from basic HotStuff's 7 (proposal, 3 vote rounds, pre-commit, commit
and decide broadcasts).

Safety argument (the two-phase commit rule):

* *One QC per view.*  Replicas vote at most once per (sequence, view,
  phase) and a certificate needs ``2f+1`` of ``3f+1`` members, so two
  conflicting prepare QCs for the same (sequence, view) would need
  ``2(2f+1) - (3f+1) = f+1`` correct replicas to vote twice — impossible.
* *Commit implies a locked quorum.*  A decision requires ``2f+1`` commit
  votes, and a correct replica only sends its commit vote after installing
  the prepare QC as its **lock** (value, view).  Hence at decision time at
  least ``f+1`` correct replicas are locked on the decided value at that
  view or higher.
* *View change re-anchors on the highest lock.*  A new leader collects
  ``2f+1`` ``ChNewView`` reports, each carrying the reporter's prepared
  certificate and its view, verifies and re-proposes the value of the
  **highest-view** valid certificate (attached to the re-proposal as its
  ``justify``).  Any report quorum intersects the decision's locked quorum
  in a correct replica, so a decided value is always among the reports,
  and no *conflicting* prepare QC can exist at its view or above (one QC
  per view + the voting rule below), so the highest-view certificate is
  the decided value.
* *The lock voting rule.*  A locked replica refuses prepare votes for a
  conflicting value unless the proposal's ``justify`` QC is valid at a view
  ``>=`` its lock's view.  A Byzantine leader therefore cannot assemble a
  conflicting QC after a decision: the ``2f+1`` votes it needs would have
  to include a locked correct replica, which demands a justify at or above
  the decided view — and no such conflicting justify exists.

The commit certificate still signs ``commit_digest(cluster, seq, batch)``,
so stage 2 ships it to remote clusters unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.consensus.hotstuff import _value_size
from repro.consensus.interface import TotalOrderBroadcast
from repro.net.crypto import Certificate, Signature
from repro.net.message import Envelope, Message, payload_digest

#: Vote rounds of one chained instance (the basic engine's "precommit" is gone).
CHAINED_PHASES = ("prepare", "commit")


@dataclass
class ChProposal(Message):
    """Leader's proposal: batch + optional justify QC + piggybacked decide.

    ``justify_*`` re-anchor a re-proposal after a view change on the highest
    prepared certificate (see the module docstring); steady-state proposals
    leave them empty.  ``decide_*`` carry the predecessor's decision down
    the chain — the commit certificate, and the ``decide_extra_fn`` payload
    (Hamava's quiet-round proof) — replacing the explicit decide broadcast.
    """

    cluster_id: int
    sequence: int
    view: int
    value: Any
    justify_view: int = -1
    justify_certificate: Optional[Certificate] = None
    decide_sequence: int = -1
    decide_certificate: Optional[Certificate] = None
    decide_extra: Any = None

    def estimated_size(self) -> int:
        size = 256 + _value_size(self.value)
        if self.justify_certificate is not None:
            size += 96 * len(self.justify_certificate)
        if self.decide_certificate is not None:
            size += 96 * len(self.decide_certificate)
        extra = self.decide_extra
        if extra is not None:
            size += 128 + 96 * len(extra) if hasattr(extra, "__len__") else 128
        return size

    def verification_cost(self) -> int:
        # Each attached QC verifies in (near) constant time — threshold
        # signatures, the same linearity claim as the basic engine's phases.
        cost = 1
        if self.justify_certificate is not None:
            cost += 1
        if self.decide_certificate is not None:
            cost += 1
        return cost


@dataclass
class ChVote(Message):
    """A replica's prepare or commit vote, sent to the leader.

    Commit votes sign the Hamava commit digest and may carry the replica's
    piggybacked BRD submission, exactly like the basic engine's commit vote.
    """

    cluster_id: int
    sequence: int
    view: int
    phase: str
    value_digest: str
    commit_signature: Optional[Signature] = None
    round_marker: Any = None

    def verification_cost(self) -> int:
        return 1 if self.round_marker is None else 2


@dataclass
class ChLock(Message):
    """Leader's single intermediate broadcast carrying the prepare QC."""

    cluster_id: int
    sequence: int
    view: int
    value_digest: str
    certificate: Certificate = field(default_factory=lambda: Certificate(""))

    def estimated_size(self) -> int:
        return 256 + 96 * len(self.certificate)

    def verification_cost(self) -> int:
        return 2


@dataclass
class ChDecide(Message):
    """Explicit decide: the grace-timer fallback and catch-up replies.

    Steady state never sends this — the decision rides the next proposal.
    Catch-up replies to laggards carry the decided ``value`` so the receiver
    can verify the commit certificate against it and adopt the decision.
    """

    cluster_id: int
    sequence: int
    view: int
    value_digest: str
    certificate: Certificate = field(default_factory=lambda: Certificate(""))
    extra: Any = None
    value: Any = None

    def estimated_size(self) -> int:
        size = 256 + 96 * len(self.certificate)
        extra = self.extra
        if extra is not None:
            size += 128 + 96 * len(extra) if hasattr(extra, "__len__") else 128
        if self.value is not None:
            size += _value_size(self.value)
        return size

    def verification_cost(self) -> int:
        return 2


@dataclass
class ChNewView(Message):
    """View-change report: the reporter's lock (prepared QC + its view)."""

    cluster_id: int
    sequence: int
    view: int
    prepared_value: Any = None
    prepared_certificate: Optional[Certificate] = None
    prepared_view: int = -1

    def estimated_size(self) -> int:
        size = 256 + _value_size(self.prepared_value)
        if self.prepared_certificate is not None:
            size += 96 * len(self.prepared_certificate)
        return size

    def verification_cost(self) -> int:
        if self.prepared_certificate is None:
            return 1
        return max(1, len(self.prepared_certificate))


def _chain_digest(cluster_id: int, sequence: int, view: int, phase: str, value_digest: str) -> str:
    """Digest replicas vote over (distinct prefix from the basic engine)."""
    return f"chs|{phase}|c{cluster_id}|s{sequence}|v{view}|{value_digest}"


class ChainedHotStuffEngine(TotalOrderBroadcast):
    """Two-phase pipelined HotStuff with the decide amortised over the chain."""

    MESSAGE_TYPES = (ChProposal, ChVote, ChLock, ChDecide, ChNewView)

    def __init__(self, *args, fetch_value: Optional[Callable[[int], Any]] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fetch_value = fetch_value
        #: Per (sequence, view, phase) vote certificates collected by the leader.
        self._vote_certs: Dict[tuple, Certificate] = {}
        #: Per (sequence, view) commit-digest certificates (commit phase).
        self._commit_certs: Dict[tuple, Certificate] = {}
        self._voted: Dict[tuple, bool] = {}
        #: Single-fire guards per (sequence, view, phase) quorum.
        self._advanced: Dict[tuple, bool] = {}
        #: (sequence, view) pairs this leader already proposed for.
        self._proposed_views: Dict[tuple, bool] = {}
        #: View-change reports per (sequence, view), keyed by sender.
        self._new_views: Dict[tuple, Dict[str, ChNewView]] = {}
        #: This replica's lock per sequence: (view, value_digest).
        self._locked: Dict[int, Tuple[int, str]] = {}
        #: View of the prepared certificate held per sequence (for reports).
        self._prepared_view: Dict[int, int] = {}
        #: Justify QC staged for the next re-proposal: seq -> (view, cert).
        self._justify: Dict[int, Tuple[int, Certificate]] = {}
        #: Sequences whose decision this leader already announced (either a
        #: piggyback on a successor proposal or an explicit ChDecide).
        self._announced: Set[int] = set()
        #: Decide-extra payloads snapshotted at local-decide time, awaiting
        #: their chained (or grace-fallback) announcement.
        self._pending_extras: Dict[int, Any] = {}
        #: Grace timers between a local decide and its chained announcement.
        self._decide_pool = self.simulator.deadline_pool(
            self._on_decide_grace, name=f"{self.owner}:tob-chain"
        )

    def set_timer_rate(self, rate: float) -> None:
        super().set_timer_rate(rate)
        self._decide_pool.rate = rate

    # ------------------------------------------------------------------ #
    # Proposing
    # ------------------------------------------------------------------ #
    def propose(self, sequence: int, value: Any) -> None:
        """Leader entry point: broadcast a chained proposal.

        At most one proposal per (sequence, view), like the basic engine.
        The non-leader branch records the local batch only if no proposal
        arrived yet: chained followers learn their predecessor's decision
        *from* the successor proposal, so the replica round loop can lag the
        engine by a whole instance — its late ``propose`` must not clobber
        the in-flight proposed value it already prepare-voted for.
        """
        instance = self.instance(sequence)
        if instance.decided:
            return
        if not self.is_leader():
            if instance.value_digest is None:
                instance.value = value
                instance.value_digest = payload_digest(value)
            return
        key = (sequence, self.view_ts)
        if self._proposed_views.get(key):
            return
        self._proposed_views[key] = True
        instance.value = value
        instance.value_digest = payload_digest(value)
        self.start_instance(sequence)
        justify = self._justify.pop(sequence, None)
        proposal = ChProposal(
            cluster_id=self.cluster_id,
            sequence=sequence,
            view=self.view_ts,
            value=value,
        )
        if justify is not None:
            proposal.justify_view, proposal.justify_certificate = justify
        prev = sequence - 1
        if prev >= 0 and prev not in self._announced:
            decision = self.decisions.get(prev)
            if decision is not None:
                # Fold the predecessor's decide into this proposal and
                # disarm its grace fallback — the chain carries it now.
                self._announced.add(prev)
                self._decide_pool.disarm(prev)
                proposal.decide_sequence = prev
                proposal.decide_certificate = decision.certificate
                proposal.decide_extra = self._pending_extras.pop(prev, None)
        self.abeb.broadcast(proposal)

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        payload = envelope.payload
        if not isinstance(payload, self.MESSAGE_TYPES):
            return False
        if payload.cluster_id != self.cluster_id:
            return False
        if isinstance(payload, ChProposal):
            self._on_proposal(sender, payload)
        elif isinstance(payload, ChVote):
            self._on_vote(sender, payload)
        elif isinstance(payload, ChLock):
            self._on_lock(sender, payload)
        elif isinstance(payload, ChDecide):
            self._on_decide(sender, payload)
        elif isinstance(payload, ChNewView):
            self._on_new_view(sender, payload)
        return True

    # -- replica side --------------------------------------------------- #
    def _on_proposal(self, sender: str, proposal: ChProposal) -> None:
        if proposal.decide_sequence >= 0 and proposal.decide_certificate is not None:
            # The predecessor's decide travels with the proposal; process it
            # first so Hamava's round state advances before the new vote.
            self._process_decide(
                sender, proposal.decide_sequence, proposal.decide_certificate, proposal.decide_extra
            )
        if sender != self.leader or proposal.view != self.view_ts:
            return
        instance = self.instance(proposal.sequence)
        if instance.decided:
            return
        digest = payload_digest(proposal.value)
        locked = self._locked.get(proposal.sequence)
        if locked is not None and locked[1] != digest:
            # Locked on a conflicting value: only a justify QC at or above
            # the lock's view may unlock this replica (module docstring).
            if not self._justify_unlocks(proposal, digest, locked[0]):
                return
        instance.value = proposal.value
        instance.value_digest = digest
        self.start_instance(proposal.sequence)
        self._send_vote(proposal.sequence, "prepare", digest)

    def _justify_unlocks(self, proposal: ChProposal, digest: str, locked_view: int) -> bool:
        certificate = proposal.justify_certificate
        if certificate is None or proposal.justify_view < locked_view:
            return False
        expected = _chain_digest(
            self.cluster_id, proposal.sequence, proposal.justify_view, "prepare", digest
        )
        return self.registry.certificate_valid(
            certificate, self.members(), self.quorum(), digest=expected
        )

    def _send_vote(self, sequence: int, phase: str, value_digest: str) -> None:
        key = (sequence, self.view_ts, phase)
        if self._voted.get(key):
            return
        self._voted[key] = True
        commit_signature = None
        round_marker = None
        if phase == "commit":
            instance = self.instance(sequence)
            digest = self.instance_commit_digest(instance)
            commit_signature = self.registry.sign(self.owner, digest)
            if self.round_marker_fn is not None:
                round_marker = self.round_marker_fn(sequence)
        vote = ChVote(
            cluster_id=self.cluster_id,
            sequence=sequence,
            view=self.view_ts,
            phase=phase,
            value_digest=value_digest,
            commit_signature=commit_signature,
            round_marker=round_marker,
        )
        self.apl.send(self.leader, vote)

    def _on_lock(self, sender: str, message: ChLock) -> None:
        if sender != self.leader or message.view != self.view_ts:
            return
        instance = self.instance(message.sequence)
        if instance.value_digest is None or instance.value_digest != message.value_digest:
            # Never saw the proposal (or saw a conflicting one): abstain.
            return
        expected = _chain_digest(
            self.cluster_id, message.sequence, message.view, "prepare", message.value_digest
        )
        if not self.registry.certificate_valid(
            message.certificate, self.members(), self.quorum(), digest=expected
        ):
            return
        # Install the prepare QC as this replica's lock, then commit-vote.
        instance.prepared_value = instance.value
        instance.prepared_certificate = message.certificate
        self._locked[message.sequence] = (message.view, message.value_digest)
        self._prepared_view[message.sequence] = message.view
        self._send_vote(message.sequence, "commit", message.value_digest)

    def _process_decide(self, sender: str, sequence: int, certificate, extra: Any) -> None:
        """Adopt a chained or explicit decide against the locally held value."""
        instance = self._instances.get(sequence)
        if instance is None or instance.value is None:
            # A laggard that never saw the proposal cannot verify the bare
            # certificate; its watchdog's catch-up report draws a
            # value-carrying reply instead.
            return
        digest = self.instance_commit_digest(instance)
        if not self.registry.certificate_valid(
            certificate, self.members(), self.quorum(), digest=digest
        ):
            return
        self._decide(sequence, instance.value, certificate)
        if extra is not None and self.on_decide_extra is not None:
            self.on_decide_extra(sequence, sender, extra)

    def _on_decide(self, sender: str, message: ChDecide) -> None:
        if message.value is not None:
            # Value-carrying catch-up replies are self-certifying; accepted
            # regardless of the local view, like the basic engine.
            self._adopt_certified_decision(message.sequence, message.value, message.certificate)
            return
        # Explicit decides are equally self-certifying against the locally
        # held value (the certificate binds cluster, sequence, and batch),
        # so no sender/view gate: a deposed leader flushing its last grace
        # timer is still announcing a real decision.
        self._process_decide(sender, message.sequence, message.certificate, message.extra)

    # -- leader side ----------------------------------------------------- #
    def _on_vote(self, sender: str, vote: ChVote) -> None:
        if not self.is_leader() or vote.view != self.view_ts:
            return
        if vote.round_marker is not None and self.on_round_marker is not None:
            self.on_round_marker(vote.sequence, sender, vote.round_marker)
        instance = self.instance(vote.sequence)
        if instance.decided or instance.value is None:
            return
        if vote.value_digest != instance.value_digest:
            return
        key = (vote.sequence, vote.view, vote.phase)
        phase_digest = _chain_digest(
            self.cluster_id, vote.sequence, vote.view, vote.phase, vote.value_digest
        )
        cert = self._vote_certs.setdefault(key, Certificate(phase_digest, kind=vote.phase))
        cert.add(self.registry.sign(sender, phase_digest))
        if vote.phase == "commit" and vote.commit_signature is not None:
            cdigest = self.instance_commit_digest(instance)
            commit_cert = self._commit_certs.setdefault(
                (vote.sequence, vote.view), Certificate(cdigest, kind="commit")
            )
            if self.registry.verify(vote.commit_signature) and vote.commit_signature.digest == cdigest:
                commit_cert.add(vote.commit_signature)
        if len(cert) < self.quorum():
            return
        self._advance_phase(vote.sequence, vote.phase, cert)

    def _advance_phase(self, sequence: int, completed_phase: str, cert: Certificate) -> None:
        instance = self.instance(sequence)
        key = (sequence, self.view_ts, completed_phase)
        if completed_phase == "prepare":
            if self._advanced.get(key):
                return
            self._advanced[key] = True
            # The leader locks on its own QC too (it is one of the 2f+1).
            instance.prepared_value = instance.value
            instance.prepared_certificate = cert
            self._locked[sequence] = (self.view_ts, instance.value_digest or "")
            self._prepared_view[sequence] = self.view_ts
            self.abeb.broadcast(
                ChLock(
                    cluster_id=self.cluster_id,
                    sequence=sequence,
                    view=self.view_ts,
                    value_digest=instance.value_digest or "",
                    certificate=cert,
                )
            )
        elif completed_phase == "commit":
            commit_cert = self._commit_certs.get((sequence, self.view_ts))
            if commit_cert is None or len(commit_cert) < self.quorum():
                return
            if self._advanced.get(key):
                return
            self._advanced[key] = True
            # The decide extra is snapshotted *before* ``_decide`` runs the
            # delivery callback — Hamava's quiet-round proof must be taken
            # ahead of the replica's own decision handling, which otherwise
            # aggregates the round through the full (non-quiet) path.
            extra = None
            if self.decide_extra_fn is not None:
                extra = self.decide_extra_fn(sequence)
                self._pending_extras[sequence] = extra
            self._decide(sequence, instance.value, commit_cert)
            if sequence in self._announced:
                return
            if extra is not None:
                # A quiet-round proof is riding this decide, and Hamava's
                # round loop cannot finish stage 1 (and thus reach the next
                # proposal) until followers answer it — waiting for the
                # chain here would gate the round on its own grace timer.
                # Announce immediately; the piggyback is reserved for
                # decides nothing time-critical rides on.
                self._announce_decide(sequence)
            else:
                self._decide_pool.arm(sequence, self.config.chained_decide_grace)

    def _on_decide_grace(self, sequence: int) -> None:
        if sequence not in self._announced:
            self._announce_decide(sequence)

    def _announce_decide(self, sequence: int) -> None:
        decision = self.decisions.get(sequence)
        if decision is None:
            return
        self._announced.add(sequence)
        extra = self._pending_extras.pop(sequence, None)
        self.abeb.broadcast(
            ChDecide(
                cluster_id=self.cluster_id,
                sequence=sequence,
                view=self.view_ts,
                value_digest=payload_digest(decision.value),
                certificate=decision.certificate,
                extra=extra,
            )
        )

    # ------------------------------------------------------------------ #
    # View change
    # ------------------------------------------------------------------ #
    def on_view_change(self) -> None:
        """Report each pending instance's lock to the new leader."""
        for sequence in list(self.pending_sequences()):
            instance = self.instance(sequence)
            self.start_instance(sequence)
            report = ChNewView(
                cluster_id=self.cluster_id,
                sequence=sequence,
                view=self.view_ts,
                prepared_value=instance.prepared_value,
                prepared_certificate=instance.prepared_certificate,
                prepared_view=self._prepared_view.get(sequence, -1),
            )
            self.apl.send(self.leader, report)

    def _on_new_view(self, sender: str, report: ChNewView) -> None:
        decision = self.decisions.get(report.sequence)
        if decision is not None:
            # The reporter is behind a decision this replica already holds;
            # answer with a value-carrying decide it can verify and adopt.
            if sender != self.owner:
                self.apl.send(
                    sender,
                    ChDecide(
                        cluster_id=self.cluster_id,
                        sequence=report.sequence,
                        view=self.view_ts,
                        value_digest=payload_digest(decision.value),
                        certificate=decision.certificate,
                        value=decision.value,
                    ),
                )
            return
        if not self.is_leader() or report.view != self.view_ts:
            return
        instance = self.instance(report.sequence)
        key = (report.sequence, report.view)
        reports = self._new_views.setdefault(key, {})
        reports[sender] = report  # dedup: re-sent reports must not double-count
        if len(reports) < self.quorum():
            return
        value = self._adopt_highest_lock(report.sequence, reports)
        if value is None:
            value = instance.value
        if value is None and self.fetch_value is not None:
            value = self.fetch_value(report.sequence)
        if value is None:
            return
        del self._new_views[key]
        self.propose(report.sequence, value)

    def _adopt_highest_lock(self, sequence: int, reports: Dict[str, ChNewView]) -> Any:
        """The value of the highest-view *valid* prepared certificate, if any.

        Unlike the basic engine's three-phase recovery (where adopting *any*
        prepared value is safe), two-phase safety hinges on re-anchoring on
        the **highest** lock: a decided value is locked at the decision's
        view by a quorum, and no conflicting QC exists at that view or above.
        Certificates are verified before adoption so a Byzantine reporter
        cannot steer recovery with a forged lock.
        """
        candidates = [
            item
            for item in reports.values()
            if item.prepared_value is not None and item.prepared_certificate is not None
        ]
        candidates.sort(key=lambda item: item.prepared_view, reverse=True)
        for item in candidates:
            digest = payload_digest(item.prepared_value)
            expected = _chain_digest(
                self.cluster_id, sequence, item.prepared_view, "prepare", digest
            )
            if self.registry.certificate_valid(
                item.prepared_certificate, self.members(), self.quorum(), digest=expected
            ):
                self._justify[sequence] = (item.prepared_view, item.prepared_certificate)
                return item.prepared_value
        return None

    def _request_catchup(self, sequence: int) -> None:
        """Re-report a stuck instance to the whole cluster (see base class)."""
        instance = self.instance(sequence)
        self.abeb.broadcast(
            ChNewView(
                cluster_id=self.cluster_id,
                sequence=sequence,
                view=self.view_ts,
                prepared_value=instance.prepared_value,
                prepared_certificate=instance.prepared_certificate,
                prepared_view=self._prepared_view.get(sequence, -1),
            ),
        )


__all__ = [
    "CHAINED_PHASES",
    "ChDecide",
    "ChLock",
    "ChNewView",
    "ChProposal",
    "ChVote",
    "ChainedHotStuffEngine",
]
