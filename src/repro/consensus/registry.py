"""Registry of available local-ordering engines.

Hamava is consensus-agnostic; deployments select the engine by name
("hotstuff" for AVA-HOTSTUFF, "bftsmart" for AVA-BFTSMART).  Additional
engines can be registered by downstream users.
"""

from __future__ import annotations

from typing import Callable, Dict, Type

from repro.consensus.bftsmart import BftSmartEngine
from repro.consensus.hotstuff import HotStuffEngine
from repro.consensus.hotstuff_chained import ChainedHotStuffEngine
from repro.consensus.interface import TotalOrderBroadcast
from repro.errors import ConfigurationError

#: Mapping from engine name to engine class.
ENGINES: Dict[str, Type[TotalOrderBroadcast]] = {
    "hotstuff": HotStuffEngine,
    "hotstuff_chained": ChainedHotStuffEngine,
    "bftsmart": BftSmartEngine,
}


def register_engine(name: str, engine_cls: Type[TotalOrderBroadcast]) -> None:
    """Register a custom local-ordering engine under ``name``."""
    ENGINES[name.lower()] = engine_cls


def make_engine(name: str, *args, **kwargs) -> TotalOrderBroadcast:
    """Instantiate the engine registered under ``name``.

    Raises:
        ConfigurationError: If no engine is registered under that name.
    """
    key = name.lower()
    if key not in ENGINES:
        raise ConfigurationError(
            f"unknown consensus engine {name!r}; available: {sorted(ENGINES)}"
        )
    return ENGINES[key](*args, **kwargs)


__all__ = ["ENGINES", "make_engine", "register_engine"]
