"""A BFT-SMaRt-like local ordering engine (AVA-BFTSMART's substrate).

BFT-SMaRt's ordering core (MOD-SMaRt/VP-Consensus) is PBFT-shaped: the leader
broadcasts a proposal, then replicas run two all-to-all voting phases (WRITE
and ACCEPT).  Per decision the message complexity is quadratic in the cluster
size — the ``O(2zn²)`` row of the paper's Table I — which is why the paper
observes lower throughput for AVA-BFTSMART than AVA-HOTSTUFF at equal sizes.

ACCEPT votes sign the cluster/round/batch commit digest, so every replica can
assemble the commit certificate locally and stage 2 can forward it to remote
clusters for verification against ``C_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.consensus.interface import TotalOrderBroadcast
from repro.net.crypto import Certificate, Signature
from repro.net.message import Envelope, Message, payload_digest


@dataclass
class BsPropose(Message):
    """Leader's proposal (PBFT pre-prepare) carrying the batch."""

    cluster_id: int
    sequence: int
    view: int
    value: Any

    def estimated_size(self) -> int:
        if isinstance(self.value, (list, tuple)):
            return 256 + 1024 * len(self.value)
        return 1280

    def verification_cost(self) -> int:
        return 1


@dataclass
class BsWrite(Message):
    """First all-to-all phase vote (PBFT prepare / BFT-SMaRt WRITE)."""

    cluster_id: int
    sequence: int
    view: int
    value_digest: str

    def verification_cost(self) -> int:
        return 2


@dataclass
class BsAccept(Message):
    """Second all-to-all phase vote (PBFT commit / BFT-SMaRt ACCEPT).

    Carries the sender's signature over the commit digest so receivers can
    assemble the remotely-verifiable commit certificate.  In the clustered
    setting every replica must verify these individual signatures (the
    certificate is later shipped to remote clusters), so the receiver-side
    cost is higher than HotStuff's, where votes flow only to the leader and
    replicas check a single aggregated quorum certificate.  This asymmetry is
    what makes the all-to-all phases expensive at larger cluster sizes.
    """

    cluster_id: int
    sequence: int
    view: int
    value_digest: str
    commit_signature: Optional[Signature] = None
    #: Opaque piggybacked BRD submission (``round_marker_fn``); all-to-all,
    #: so every replica sees every marker, but only the leader ingests them.
    round_marker: Any = None

    def verification_cost(self) -> int:
        return 4 if self.round_marker is None else 5


@dataclass
class BsViewState(Message):
    """View-change report: the value (if any) a replica saw proposed."""

    cluster_id: int
    sequence: int
    view: int
    value: Any = None

    def estimated_size(self) -> int:
        if isinstance(self.value, (list, tuple)):
            return 256 + 1024 * len(self.value)
        return 512


@dataclass
class BsDecide(Message):
    """Catch-up reply: a decided value plus its commit certificate.

    Sent point-to-point by a leader whose view-state inbox reports a
    sequence it already decided — the reporter missed the accept quorum
    across a view change.  Self-certifying: the receiver checks the
    certificate against the carried value's commit digest.
    """

    cluster_id: int
    sequence: int
    view: int
    value: Any = None
    certificate: Optional[Certificate] = None

    def estimated_size(self) -> int:
        size = 256 + (96 * len(self.certificate) if self.certificate else 0)
        if isinstance(self.value, (list, tuple)):
            size += 1024 * len(self.value)
        return size

    def verification_cost(self) -> int:
        return max(1, len(self.certificate) if self.certificate else 0)


class BftSmartEngine(TotalOrderBroadcast):
    """PBFT-style total-order broadcast with all-to-all voting phases."""

    MESSAGE_TYPES = (BsPropose, BsWrite, BsAccept, BsViewState, BsDecide)

    def __init__(self, *args, fetch_value: Optional[Callable[[int], Any]] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fetch_value = fetch_value
        self._writes: Dict[tuple, set] = {}
        self._accepts: Dict[tuple, Certificate] = {}
        self._accept_senders: Dict[tuple, set] = {}
        self._wrote: Dict[tuple, bool] = {}
        self._accepted: Dict[tuple, bool] = {}
        #: (sequence, view) pairs this leader already proposed for (one
        #: proposal per view, no self-equivocation — see HotStuff's twin).
        self._proposed_views: Dict[tuple, bool] = {}
        #: View-change reports per (sequence, view), keyed by sender so
        #: re-sent reports cannot double-count toward quorum.
        self._view_states: Dict[tuple, Dict[str, BsViewState]] = {}
        #: WRITE/ACCEPT votes that arrived before the proposal (network
        #: jitter can reorder a peer's write ahead of the leader's propose),
        #: keyed by (sequence, view) and replayed once the value is known —
        #: dropping them can cost the quorum in small clusters.
        self._early_votes: Dict[tuple, List[tuple]] = {}

    # ------------------------------------------------------------------ #
    # Proposing
    # ------------------------------------------------------------------ #
    def propose(self, sequence: int, value: Any) -> None:
        """Leader entry point: broadcast the proposal to the cluster.

        At most one proposal per (sequence, view) — replicas WRITE once per
        view, so overwriting an in-flight proposal (the batch timer racing
        the view-change re-proposal) would strand the instance with votes
        split across digests.
        """
        instance = self.instance(sequence)
        if instance.decided:
            return
        if not self.is_leader():
            instance.value = value
            instance.value_digest = payload_digest(value)
            return
        key = (sequence, self.view_ts)
        if self._proposed_views.get(key):
            return
        self._proposed_views[key] = True
        instance.value = value
        instance.value_digest = payload_digest(value)
        self.start_instance(sequence)
        self.abeb.broadcast(
            BsPropose(
                cluster_id=self.cluster_id,
                sequence=sequence,
                view=self.view_ts,
                value=value,
            )
        )

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        payload = envelope.payload
        if not isinstance(payload, self.MESSAGE_TYPES):
            return False
        if payload.cluster_id != self.cluster_id:
            return False
        if isinstance(payload, BsPropose):
            self._on_propose(sender, payload)
        elif isinstance(payload, BsWrite):
            self._on_write(sender, payload)
        elif isinstance(payload, BsAccept):
            self._on_accept(sender, payload)
        elif isinstance(payload, BsViewState):
            self._on_view_state(sender, payload)
        elif isinstance(payload, BsDecide):
            self._on_decide_catchup(sender, payload)
        return True

    def _on_propose(self, sender: str, proposal: BsPropose) -> None:
        if sender != self.leader or proposal.view != self.view_ts:
            return
        instance = self.instance(proposal.sequence)
        if instance.decided:
            return
        instance.value = proposal.value
        instance.value_digest = payload_digest(proposal.value)
        self.start_instance(proposal.sequence)
        key = (proposal.sequence, proposal.view)
        if not self._wrote.get(key):
            self._wrote[key] = True
            self.abeb.broadcast(
                BsWrite(
                    cluster_id=self.cluster_id,
                    sequence=proposal.sequence,
                    view=proposal.view,
                    value_digest=instance.value_digest,
                )
            )
        for voter, vote in self._early_votes.pop(key, []):
            if isinstance(vote, BsWrite):
                self._on_write(voter, vote)
            else:
                self._on_accept(voter, vote)

    def _on_write(self, sender: str, write: BsWrite) -> None:
        if write.view != self.view_ts:
            return
        instance = self.instance(write.sequence)
        if instance.decided:
            return
        if instance.value_digest is None:
            # Jitter reordered this write ahead of the proposal; buffer it.
            self._early_votes.setdefault((write.sequence, write.view), []).append((sender, write))
            return
        if write.value_digest != instance.value_digest:
            return
        key = (write.sequence, write.view)
        senders = self._writes.setdefault(key, set())
        senders.add(sender)
        if len(senders) < self.quorum():
            return
        if self._accepted.get(key):
            return
        self._accepted[key] = True
        digest = self.instance_commit_digest(instance)
        instance.prepared_value = instance.value
        round_marker = None
        if self.round_marker_fn is not None:
            round_marker = self.round_marker_fn(write.sequence)
        self.abeb.broadcast(
            BsAccept(
                cluster_id=self.cluster_id,
                sequence=write.sequence,
                view=write.view,
                value_digest=instance.value_digest,
                commit_signature=self.registry.sign(self.owner, digest),
                round_marker=round_marker,
            )
        )

    def _on_accept(self, sender: str, accept: BsAccept) -> None:
        if accept.view != self.view_ts:
            return
        if accept.round_marker is not None and self.on_round_marker is not None:
            self.on_round_marker(accept.sequence, sender, accept.round_marker)
        instance = self.instance(accept.sequence)
        if instance.decided:
            return
        if instance.value is None:
            self._early_votes.setdefault((accept.sequence, accept.view), []).append((sender, accept))
            return
        if accept.value_digest != instance.value_digest:
            return
        digest = self.instance_commit_digest(instance)
        key = (accept.sequence, accept.view)
        cert = self._accepts.setdefault(key, Certificate(digest, kind="commit"))
        senders = self._accept_senders.setdefault(key, set())
        if accept.commit_signature is None:
            return
        if accept.commit_signature.digest != digest:
            return
        if not self.registry.verify(accept.commit_signature):
            return
        cert.add(accept.commit_signature)
        senders.add(sender)
        if len(cert) >= self.quorum():
            self._decide(accept.sequence, instance.value, cert)

    # ------------------------------------------------------------------ #
    # View change
    # ------------------------------------------------------------------ #
    def on_view_change(self) -> None:
        """Report the values seen for pending instances to the new leader."""
        for sequence in list(self.pending_sequences()):
            instance = self.instance(sequence)
            self.start_instance(sequence)
            self.apl.send(
                self.leader,
                BsViewState(
                    cluster_id=self.cluster_id,
                    sequence=sequence,
                    view=self.view_ts,
                    value=instance.value,
                ),
            )

    def _on_view_state(self, sender: str, report: BsViewState) -> None:
        decision = self.decisions.get(report.sequence)
        if decision is not None:
            # The reporter missed the accept quorum across a view change;
            # any decided replica answers with the self-certifying decision
            # (the stuck replica may be the leader itself — see BsDecide).
            if sender != self.owner:
                self.apl.send(
                    sender,
                    BsDecide(
                        cluster_id=self.cluster_id,
                        sequence=report.sequence,
                        view=self.view_ts,
                        value=decision.value,
                        certificate=decision.certificate,
                    ),
                )
            return
        if not self.is_leader() or report.view != self.view_ts:
            return
        instance = self.instance(report.sequence)
        key = (report.sequence, report.view)
        reports = self._view_states.setdefault(key, {})
        reports[sender] = report  # dedup: re-sent reports must not double-count
        if len(reports) < self.quorum():
            return
        value = next((r.value for r in reports.values() if r.value is not None), None)
        if value is None:
            value = instance.value
        if value is None and self.fetch_value is not None:
            value = self.fetch_value(report.sequence)
        if value is None:
            return
        del self._view_states[key]
        self.propose(report.sequence, value)

    def _on_decide_catchup(self, sender: str, message: BsDecide) -> None:
        """Adopt a value-carrying decision (a decided peer's catch-up reply)."""
        self._adopt_certified_decision(message.sequence, message.value, message.certificate)

    def _request_catchup(self, sequence: int) -> None:
        """Re-report a stuck instance to the whole cluster (see base class).

        Broadcast: when a quorum already decided the sequence, only the
        decided peers — possibly not the leader — hold the decision.
        """
        instance = self.instance(sequence)
        self.abeb.broadcast(
            BsViewState(
                cluster_id=self.cluster_id,
                sequence=sequence,
                view=self.view_ts,
                value=instance.value,
            ),
        )


__all__ = ["BftSmartEngine", "BsAccept", "BsDecide", "BsPropose", "BsViewState", "BsWrite"]
