"""Leader election module (paper Alg. 9).

Replicas complain about the current leader; once a replica sees ``f+1``
complaints for the current timestamp it amplifies (complains too), and once
it sees ``2f+1`` complaints it advances the timestamp and installs the next
leader in round-robin order over the sorted cluster membership.  The module
also accepts a direct ``next_leader`` request, which the remote-leader-change
protocol (Alg. 2) uses after validating a remote complaint that already
carries a remote quorum of signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Set

from repro.net.links import AuthenticatedBestEffortBroadcast
from repro.net.message import Envelope, Message
from repro.net.network import Network


@dataclass
class ElectionComplaint(Message):
    """Local complaint about the current leader at timestamp ``ts``."""

    cluster_id: int
    ts: int


class LeaderElection:
    """Round-robin Byzantine leader election for one cluster at one replica.

    Args:
        owner: Replica id this module runs at.
        cluster_id: Numeric id of the local cluster.
        members_fn: Callable returning the current cluster membership as a
            sorted tuple (the contract documented in
            :class:`repro.consensus.interface.TotalOrderBroadcast`).
        faults_fn: Callable returning the current failure threshold ``f``.
        network: The simulated network (used for the complaint broadcast).
        on_new_leader: Callback ``(leader_id, ts) -> None`` invoked whenever a
            new leader is installed locally.
    """

    MESSAGE_TYPES = (ElectionComplaint,)

    def __init__(
        self,
        owner: str,
        cluster_id: int,
        members_fn: Callable[[], Sequence[str]],
        faults_fn: Callable[[], int],
        network: Network,
        on_new_leader: Callable[[str, int], None],
    ) -> None:
        self.owner = owner
        self.cluster_id = cluster_id
        self.members_fn = members_fn
        self.faults_fn = faults_fn
        self.network = network
        self.on_new_leader = on_new_leader
        self.abeb = AuthenticatedBestEffortBroadcast(owner, network, members_fn)
        self.ts = 0
        self._complainers: Set[str] = set()
        self._complained = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def members(self) -> Sequence[str]:
        """Sorted current membership, the round-robin order for leaders.

        No defensive re-sort: the ``members_fn`` contract (see
        :class:`repro.consensus.interface.TotalOrderBroadcast`) guarantees a
        sorted tuple, precisely so that this order — which decides leader
        rotation — is stable without paying a per-complaint sort.
        """
        return self.members_fn()

    def current_leader(self) -> str:
        """The leader implied by the current timestamp."""
        members = self.members()
        return members[self.ts % len(members)]

    # ------------------------------------------------------------------ #
    # Requests (paper Alg. 9, lines 11-29)
    # ------------------------------------------------------------------ #
    def complain(self, leader: Optional[str] = None) -> None:
        """Request a complaint about the current leader (idempotent per ts)."""
        if not self._complained:
            self._send_complain()

    def next_leader(self) -> None:
        """Advance to the next leader directly (used by remote complaints)."""
        self._change()

    def _send_complain(self) -> None:
        self._complained = True
        self._complainers.add(self.owner)
        self.abeb.broadcast(ElectionComplaint(cluster_id=self.cluster_id, ts=self.ts))
        self._maybe_change()

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        """Consume an :class:`ElectionComplaint`; returns True if handled."""
        payload = envelope.payload
        if not isinstance(payload, ElectionComplaint):
            return False
        if payload.cluster_id != self.cluster_id:
            return False
        if payload.ts != self.ts:
            return True
        self._complainers.add(sender)
        faults = self.faults_fn()
        if len(self._complainers) >= faults + 1 and not self._complained:
            self._send_complain()
        self._maybe_change()
        return True

    def _maybe_change(self) -> None:
        if len(self._complainers) >= 2 * self.faults_fn() + 1:
            self._change()

    def _change(self) -> None:
        self.ts += 1
        self._complainers = set()
        self._complained = False
        members = self.members()
        leader = members[self.ts % len(members)]
        self.on_new_leader(leader, self.ts)


__all__ = ["ElectionComplaint", "LeaderElection"]
