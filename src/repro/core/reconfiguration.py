"""Reconfiguration collection (paper Alg. 3).

Collection is the replica-side half of reconfiguration: when a process wants
to join (or a member wants to leave) it broadcasts ``RequestJoin`` /
``RequestLeave`` in the target cluster; every correct replica stores the
request in its ``recs`` set and acknowledges.  The requester keeps
re-broadcasting until a quorum acknowledges, at which point the request can
no longer be censored: any quorum the BRD leader later aggregates from
intersects the storing quorum in a correct replica.

The dissemination half (Alg. 4) is a thin wrapper around BRD and lives in
the replica: each round, the replica submits its collected set to a
per-round :class:`~repro.core.brd.ByzantineReliableDissemination` instance.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.messages import ReconfigAck, RequestJoin, RequestLeave
from repro.core.types import ReconfigRequest, join_request, leave_request
from repro.net.links import AuthenticatedPerfectLink
from repro.net.message import Envelope
from repro.net.network import Network


class ReconfigurationCollector:
    """Stores pending reconfiguration requests at one replica.

    Args:
        owner: Replica id.
        cluster_id: The local cluster.
        network: Simulated network (used to send acknowledgements).
        members_fn: Callable returning current local membership as a sorted
            tuple (included in the acknowledgement so requesters can detect
            configuration skew).
        round_fn: Callable returning the current round.
    """

    MESSAGE_TYPES = (RequestJoin, RequestLeave)

    def __init__(
        self,
        owner: str,
        cluster_id: int,
        network: Network,
        members_fn: Callable[[], List[str]],
        round_fn: Callable[[], int],
    ) -> None:
        self.owner = owner
        self.cluster_id = cluster_id
        self.network = network
        self.members_fn = members_fn
        self.round_fn = round_fn
        self.apl = AuthenticatedPerfectLink(owner, network)
        self._recs: Set[ReconfigRequest] = set()
        #: Requests already applied by execution; never re-collected.
        self._applied: Set[ReconfigRequest] = set()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def current_recs(self) -> Tuple[ReconfigRequest, ...]:
        """The set of pending (not yet applied) reconfiguration requests."""
        return tuple(sorted(self._recs))

    def pending_count(self) -> int:
        """Number of pending requests."""
        return len(self._recs)

    # ------------------------------------------------------------------ #
    # Local additions
    # ------------------------------------------------------------------ #
    def add(self, request: ReconfigRequest) -> None:
        """Store a request locally (used for the replica's own leave request)."""
        if request not in self._applied:
            self._recs.add(request)

    def mark_applied(self, requests: Iterable[ReconfigRequest]) -> None:
        """Drop executed requests from the pending set (Alg. 10, line 36)."""
        for request in requests:
            self._applied.add(request)
            self._recs.discard(request)

    # ------------------------------------------------------------------ #
    # Message handling (Alg. 3, lines 16-21)
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        """Consume a join/leave request addressed to this cluster."""
        payload = envelope.payload
        if isinstance(payload, RequestJoin):
            if payload.cluster_id != self.cluster_id:
                return True
            self.add(join_request(sender, self.cluster_id, payload.region))
            self._ack(sender)
            return True
        if isinstance(payload, RequestLeave):
            if payload.cluster_id != self.cluster_id:
                return True
            self.add(leave_request(sender, self.cluster_id))
            self._ack(sender)
            return True
        return False

    def _ack(self, requester: str) -> None:
        self.apl.send(
            requester,
            ReconfigAck(
                cluster_id=self.cluster_id,
                round_number=self.round_fn(),
                members=tuple(self.members_fn()),
            ),
        )


class RequestTracker:
    """Requester-side state of Alg. 3: retry until a quorum acknowledges.

    Used by joining processes and by leaving replicas.  The owner process
    drives it: it calls :meth:`record_ack` on every acknowledgement and
    :meth:`should_retry` from its retry timer.
    """

    def __init__(self, quorum_fn: Callable[[], int]) -> None:
        self.quorum_fn = quorum_fn
        self._ackers: Set[str] = set()
        self.satisfied = False

    def record_ack(self, sender: str) -> bool:
        """Record an acknowledgement; returns True once a quorum acked."""
        self._ackers.add(sender)
        if len(self._ackers) >= self.quorum_fn():
            self.satisfied = True
        return self.satisfied

    def ack_count(self) -> int:
        """Number of distinct acknowledgers so far."""
        return len(self._ackers)

    def should_retry(self) -> bool:
        """Whether the requester should re-broadcast its request."""
        return not self.satisfied


__all__ = ["ReconfigurationCollector", "RequestTracker"]
