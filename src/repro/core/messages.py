"""Hamava protocol messages (inter-cluster, leader change, reconfiguration).

Message names follow the paper: ``Inter`` / ``Local`` for stage 2,
``LComplaint`` / ``RComplaint`` / ``Complaint`` for the heterogeneous remote
leader change, ``RequestJoin`` / ``RequestLeave`` / ``Ack`` / ``CurrState``
for reconfiguration, and the BRD messages ``Recs`` (submit), ``Agg``,
``Echo``, ``Ready``, ``Valid``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.types import OperationsBundle, ReconfigRequest, Transaction
from repro.net.crypto import Certificate, Signature
from repro.net.message import Message


# ---------------------------------------------------------------------- #
# Client <-> replica
# ---------------------------------------------------------------------- #
@dataclass
class ClientRequest(Message):
    """A client submits one transaction to a replica."""

    transaction: Transaction

    def estimated_size(self) -> int:
        return 128 + self.transaction.size_bytes


@dataclass
class ClientResponse(Message):
    """A replica's response for one executed (or locally served) transaction.

    ``leader_hint`` names the responder's current cluster leader so clients
    can route subsequent writes straight to it (standard BFT client
    behaviour — PBFT/BFT-SMaRt clients track the primary), skipping the
    per-write forward hop from a contacted non-leader.
    """

    txn_id: str
    value: Optional[str] = None
    committed_round: int = 0
    leader_hint: str = ""

    def estimated_size(self) -> int:
        return 192


@dataclass
class ClientBatchRequest(Message):
    """An open-loop population submits one window's operations in one envelope.

    Client-side batching: all operations that arrived within one batching
    window and share a target replica travel as a single wire message, so
    the client boundary costs O(windows) messages instead of O(operations).
    """

    transactions: Tuple[Transaction, ...] = ()

    def estimated_size(self) -> int:
        return 128 + sum(t.size_bytes for t in self.transactions)


@dataclass
class ClientBatchResponse(Message):
    """A replica's batched responses to one population.

    ``entries`` holds ``(txn_id, value)`` pairs — reads served immediately
    (lease-covered or leader-local) and writes acknowledged when their
    round executes, flushed once per execution instead of one envelope per
    transaction.
    """

    entries: Tuple[Tuple[str, Optional[str]], ...] = ()
    committed_round: int = 0
    leader_hint: str = ""

    def estimated_size(self) -> int:
        return 128 + 64 * len(self.entries)


@dataclass
class ReadLeaseGrant(Message):
    """The cluster leader's periodic read-lease grant to its replicas.

    While a grant is live (``granted_at + duration`` in the future, same
    ``view_ts`` as the current leader), a follower may answer batched reads
    from its local store without consulting consensus: the leader promises
    not to execute writes that contradict the lease-covered state until the
    lease expires, and a new leader withholds its first grant for one full
    lease duration so every old-leader lease lapses first.
    """

    cluster_id: int
    view_ts: int
    granted_at: float
    duration: float

    def estimated_size(self) -> int:
        return 160


# ---------------------------------------------------------------------- #
# Stage 2: inter-cluster communication (Alg. 1)
# ---------------------------------------------------------------------- #
@dataclass
class Inter(Message):
    """Leader-to-remote-replicas shipment of a cluster's round operations."""

    round_number: int
    cluster_id: int
    bundle: OperationsBundle

    def estimated_size(self) -> int:
        return self.bundle.size_bytes()

    def verification_cost(self) -> int:
        cost = 1
        for cert in (self.bundle.txn_certificate, self.bundle.recs_ready_certificate):
            if cert is not None:
                cost += len(cert)
        return cost


@dataclass
class LocalShare(Message):
    """Local re-broadcast of a remote cluster's operations ("Local" in Alg. 1).

    Send-time cost covers the envelope signature only: a receiver validates
    the bundle's certificates at most once per (cluster, round) — duplicate
    shares (one arrives per Inter target) and stale-round shares are
    dropped before any certificate is touched — so the certificate work is
    charged in-handler via ``Network.charge_verification`` by the receiver
    that really performs it, not priced up front for every copy.
    """

    round_number: int
    cluster_id: int
    bundle: OperationsBundle

    def estimated_size(self) -> int:
        return self.bundle.size_bytes()

    def verification_cost(self) -> int:
        return 1


# ---------------------------------------------------------------------- #
# Heterogeneous remote leader change (Alg. 2)
# ---------------------------------------------------------------------- #
@dataclass
class LComplaint(Message):
    """Local complaint about a remote cluster's leader."""

    target_cluster: int
    complaint_number: int
    round_number: int
    origin_cluster: int


@dataclass
class RComplaint(Message):
    """Remote complaint carrying a local quorum of LComplaint signatures."""

    complaint_number: int
    complaining_cluster: int
    signatures: Tuple[Signature, ...]
    round_number: int

    def estimated_size(self) -> int:
        return 192 + 96 * len(self.signatures)

    def verification_cost(self) -> int:
        return max(1, len(self.signatures))


@dataclass
class ClusterComplaint(Message):
    """Local broadcast of an accepted remote complaint ("Complaint" in Alg. 2)."""

    complaint_number: int
    complaining_cluster: int
    signatures: Tuple[Signature, ...]
    round_number: int

    def estimated_size(self) -> int:
        return 192 + 96 * len(self.signatures)

    def verification_cost(self) -> int:
        return max(1, len(self.signatures))


# ---------------------------------------------------------------------- #
# Reconfiguration collection (Alg. 3) and kick-start (Alg. 10)
# ---------------------------------------------------------------------- #
@dataclass
class RequestJoin(Message):
    """A process asks to join a cluster."""

    cluster_id: int
    round_number: int
    region: str = ""


@dataclass
class RequestLeave(Message):
    """A replica asks to leave its cluster."""

    cluster_id: int
    round_number: int


@dataclass
class ReconfigAck(Message):
    """Acknowledgement that a replica stored a join/leave request."""

    cluster_id: int
    round_number: int
    members: Tuple[str, ...] = ()


@dataclass
class CurrState(Message):
    """State transfer sent to a joining replica during kick-start."""

    cluster_id: int
    round_number: int
    members: Tuple[str, ...]
    state_snapshot: Dict[str, str] = field(default_factory=dict)
    system_view: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    leader: str = ""
    leader_ts: int = 0

    def estimated_size(self) -> int:
        return 512 + 64 * len(self.state_snapshot) + 48 * sum(
            len(members) for members in self.system_view.values()
        )


# ---------------------------------------------------------------------- #
# Byzantine Reliable Dissemination (Alg. 5/6)
# ---------------------------------------------------------------------- #
@dataclass
class BrdSubmit(Message):
    """A replica's collected reconfiguration set, sent to the BRD leader."""

    cluster_id: int
    round_number: int
    view_ts: int
    recs: Tuple[ReconfigRequest, ...]
    signature: Optional[Signature] = None

    def estimated_size(self) -> int:
        return 192 + 128 * len(self.recs)


@dataclass
class BrdAgg(Message):
    """The BRD leader's aggregation of a quorum of submitted sets."""

    cluster_id: int
    round_number: int
    view_ts: int
    recs: Tuple[ReconfigRequest, ...]
    collection_certificate: Certificate = field(default_factory=lambda: Certificate(""))
    attestation_kind: str = "collection"  # "collection", "echo", or "ready"

    def estimated_size(self) -> int:
        return 256 + 128 * len(self.recs) + 96 * len(self.collection_certificate)

    def verification_cost(self) -> int:
        return max(1, len(self.collection_certificate))


@dataclass
class BrdEcho(Message):
    """Echo of an accepted aggregation."""

    cluster_id: int
    round_number: int
    view_ts: int
    recs: Tuple[ReconfigRequest, ...]
    echo_signature: Optional[Signature] = None

    def estimated_size(self) -> int:
        return 224 + 128 * len(self.recs)


@dataclass
class BrdReady(Message):
    """Ready vote: the sender saw a quorum of echoes (or f+1 readies)."""

    cluster_id: int
    round_number: int
    view_ts: int
    recs: Tuple[ReconfigRequest, ...]
    ready_signature: Optional[Signature] = None

    def estimated_size(self) -> int:
        return 224 + 128 * len(self.recs)


@dataclass
class BrdQuietDeliver(Message):
    """Quiet-round delivery marker (see ``core/brd.py``).

    When a round's aggregate is provably empty-and-unanimous, replicas send
    their Ready signatures point-to-point to the leader instead of
    broadcasting, and the leader answers with this single marker carrying
    the assembled ``2f+1`` Ready certificate over the empty set — the same
    Σ' remote clusters verify on the full path.
    """

    cluster_id: int
    round_number: int
    view_ts: int
    certificate: Certificate = field(default_factory=lambda: Certificate(""))

    def estimated_size(self) -> int:
        return 224 + 96 * len(self.certificate)

    def verification_cost(self) -> int:
        return max(1, len(self.certificate))


@dataclass
class BrdValid(Message):
    """A replica's stored valid set, forwarded to a new BRD leader."""

    cluster_id: int
    round_number: int
    view_ts: int
    recs: Tuple[ReconfigRequest, ...]
    certificate: Certificate = field(default_factory=lambda: Certificate(""))
    certificate_kind: str = "echo"  # "echo" or "ready"
    valid_ts: int = 0

    def estimated_size(self) -> int:
        return 256 + 128 * len(self.recs) + 96 * len(self.certificate)

    def verification_cost(self) -> int:
        return max(1, len(self.certificate))


#: All payload types handled by the Hamava replica itself (not the engines).
CORE_MESSAGE_TYPES = (
    ClientRequest,
    ClientResponse,
    ClientBatchRequest,
    ClientBatchResponse,
    ReadLeaseGrant,
    Inter,
    LocalShare,
    LComplaint,
    RComplaint,
    ClusterComplaint,
    RequestJoin,
    RequestLeave,
    ReconfigAck,
    CurrState,
    BrdSubmit,
    BrdAgg,
    BrdEcho,
    BrdReady,
    BrdQuietDeliver,
    BrdValid,
)

__all__ = [
    "BrdAgg",
    "BrdEcho",
    "BrdQuietDeliver",
    "BrdReady",
    "BrdSubmit",
    "BrdValid",
    "ClientBatchRequest",
    "ClientBatchResponse",
    "ClientRequest",
    "ClientResponse",
    "ReadLeaseGrant",
    "ClusterComplaint",
    "CORE_MESSAGE_TYPES",
    "CurrState",
    "Inter",
    "LComplaint",
    "LocalShare",
    "RComplaint",
    "ReconfigAck",
    "RequestJoin",
    "RequestLeave",
]
