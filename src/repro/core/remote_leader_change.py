"""Heterogeneous remote leader change (paper Alg. 2).

Replicas watch a timer per *remote* cluster.  If a cluster's operations do
not arrive before the timer expires, the replica complains locally
(``LComplaint``); complaints are amplified at ``f_i + 1`` and accepted at
``2 f_i + 1`` signatures, at which point the first ``f_i + 1`` replicas of
the local cluster (the *sender set*) send a remote complaint (``RComplaint``)
carrying the local quorum of signatures to ``f_j + 1`` replicas of the remote
cluster.  The remote cluster validates the quorum against *its own view* of
the complaining cluster's membership and failure threshold — this is where
heterogeneity matters — broadcasts the complaint locally, and rotates its
leader.  Complaint numbers (``cn``/``rcn``) make each remote complaint
usable exactly once, defeating replay attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.messages import ClusterComplaint, LComplaint, RComplaint
from repro.net.crypto import Signature
from repro.net.links import AuthenticatedBestEffortBroadcast, AuthenticatedPerfectLink
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.simulator import Simulator


@dataclass
class _ClusterWatch:
    """Per-remote-cluster complaint state."""

    complaint_number: int = 0
    received_complaint_number: int = 0
    complaint_signatures: Dict[str, Signature] = field(default_factory=dict)
    complained: bool = False


class RemoteLeaderChange:
    """Alg. 2 at one replica.

    Args:
        owner: Replica id.
        cluster_id: The local cluster (``i`` in the paper).
        view_fn: Callable returning the replica's membership view
            ``{cluster_id: set(members)}`` (used for cluster-existence
            checks only).
        members_of_fn: Callable ``(cluster_id) -> sorted tuple of members``
            under the current view — the per-cluster form of the
            ``members_fn`` contract.  The replica supplies its per-view
            cached sorted views, so this module never re-sorts raw view
            sets (it used to, ~3 sorts per complaint message).
        faults_fn: Callable ``(cluster_id) -> f_j`` under the current view.
        round_fn: Callable returning the replica's current round.
        has_operations_fn: Callable ``(cluster_id) -> bool`` — whether the
            operations of that cluster have been received this round.
        network: Simulated network.
        simulator: Simulation kernel.
        timeout: ``Δ`` — the remote-cluster watch timeout.
        epsilon: ``ε`` — grace period after a local leader change.
        on_next_leader: Callback that advances the local leader election
            (``le request next-leader``).
        last_leader_change_fn: Callable returning the virtual time of the
            most recent local leader change (used for the ``ε`` guard).
    """

    MESSAGE_TYPES = (LComplaint, RComplaint, ClusterComplaint)

    def __init__(
        self,
        owner: str,
        cluster_id: int,
        view_fn: Callable[[], Dict[int, set]],
        members_of_fn: Callable[[int], Tuple[str, ...]],
        faults_fn: Callable[[int], int],
        round_fn: Callable[[], int],
        has_operations_fn: Callable[[int], bool],
        network: Network,
        simulator: Simulator,
        timeout: float,
        epsilon: float,
        on_next_leader: Callable[[], None],
        last_leader_change_fn: Callable[[], float],
    ) -> None:
        self.owner = owner
        self.cluster_id = cluster_id
        self.view_fn = view_fn
        self.members_of_fn = members_of_fn
        self.faults_fn = faults_fn
        self.round_fn = round_fn
        self.has_operations_fn = has_operations_fn
        self.network = network
        self.simulator = simulator
        self.timeout = timeout
        self.epsilon = epsilon
        self.on_next_leader = on_next_leader
        self.last_leader_change_fn = last_leader_change_fn
        self.apl = AuthenticatedPerfectLink(owner, network)
        self.abeb = AuthenticatedBestEffortBroadcast(
            owner, network, lambda: members_of_fn(cluster_id)
        )
        self._watches: Dict[int, _ClusterWatch] = {}
        #: One lazy-deadline pool (keyed by remote cluster id) replaces the
        #: per-cluster Timer objects re-armed every round — arming is a dict
        #: write instead of a schedule+cancel pair.
        self._watch_pool = simulator.deadline_pool(self._on_timeout, name=f"{owner}:remote")
        #: Count of leader changes this replica triggered via remote complaints
        #: (exposed for tests and metrics).
        self.remote_changes_applied = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _watch(self, cluster_id: int) -> _ClusterWatch:
        if cluster_id not in self._watches:
            self._watches[cluster_id] = _ClusterWatch()
        return self._watches[cluster_id]

    def local_members(self) -> Tuple[str, ...]:
        """Sorted members of the local cluster under the current view."""
        return self.members_of_fn(self.cluster_id)

    def remote_members(self, cluster_id: int) -> Tuple[str, ...]:
        """Sorted members of a remote cluster under the current view."""
        return self.members_of_fn(cluster_id)

    def complaint_number(self, cluster_id: int) -> int:
        """Current outgoing complaint number for a remote cluster."""
        return self._watch(cluster_id).complaint_number

    def received_complaint_number(self, cluster_id: int) -> int:
        """Next expected incoming complaint number from a cluster."""
        return self._watch(cluster_id).received_complaint_number

    # ------------------------------------------------------------------ #
    # Round lifecycle
    # ------------------------------------------------------------------ #
    def start_round(self) -> None:
        """Reset timers and complaint counters at the beginning of a round."""
        remote_clusters = [cid for cid in self.view_fn() if cid != self.cluster_id]
        for cluster_id in remote_clusters:
            watch = self._watch(cluster_id)
            watch.complaint_number = 0
            watch.received_complaint_number = 0
            watch.complaint_signatures = {}
            watch.complained = False
            self._watch_pool.arm(cluster_id, self.timeout)

    def stop_timer(self, cluster_id: int) -> None:
        """Stop the watch timer for a cluster whose operations arrived."""
        self._watch_pool.disarm(cluster_id)

    def stop_all(self) -> None:
        """Stop every watch timer (round teardown)."""
        for cluster_id in self._watches:
            self._watch_pool.disarm(cluster_id)

    # ------------------------------------------------------------------ #
    # Complaint generation (Alg. 2, lines 7-20)
    # ------------------------------------------------------------------ #
    def _on_timeout(self, cluster_id: int) -> None:
        if self.has_operations_fn(cluster_id):
            return
        watch = self._watch(cluster_id)
        watch.complained = True
        self.abeb.broadcast(
            LComplaint(
                target_cluster=cluster_id,
                complaint_number=watch.complaint_number,
                round_number=self.round_fn(),
                origin_cluster=self.cluster_id,
            )
        )

    def _on_lcomplaint(self, sender: str, message: LComplaint, signature: Optional[Signature]) -> None:
        if message.origin_cluster != self.cluster_id:
            return
        if message.round_number != self.round_fn():
            return
        watch = self._watch(message.target_cluster)
        if message.complaint_number != watch.complaint_number:
            return
        if self.has_operations_fn(message.target_cluster):
            return
        if sender not in self.local_members():
            return
        if signature is not None:
            watch.complaint_signatures[sender] = signature
        local_faults = self.faults_fn(self.cluster_id)
        if len(watch.complaint_signatures) >= local_faults + 1 and not watch.complained:
            watch.complained = True
            self.abeb.broadcast(
                LComplaint(
                    target_cluster=message.target_cluster,
                    complaint_number=watch.complaint_number,
                    round_number=self.round_fn(),
                    origin_cluster=self.cluster_id,
                )
            )
        if len(watch.complaint_signatures) >= 2 * local_faults + 1:
            self._accept_local_complaint(message.target_cluster, watch)

    def _accept_local_complaint(self, target_cluster: int, watch: _ClusterWatch) -> None:
        local_members = self.local_members()
        local_faults = self.faults_fn(self.cluster_id)
        sender_set = local_members[: local_faults + 1]
        if self.owner in sender_set:
            remote_members = self.remote_members(target_cluster)
            remote_faults = self.faults_fn(target_cluster)
            targets = remote_members[: remote_faults + 1]
            complaint = RComplaint(
                complaint_number=watch.complaint_number,
                complaining_cluster=self.cluster_id,
                signatures=tuple(watch.complaint_signatures.values()),
                round_number=self.round_fn(),
            )
            for target in targets:
                self.apl.send(target, complaint)
        watch.complaint_number += 1
        watch.complaint_signatures = {}
        watch.complained = False
        self._watch_pool.arm(target_cluster, self.timeout)

    # ------------------------------------------------------------------ #
    # Complaint acceptance (Alg. 2, lines 21-26)
    # ------------------------------------------------------------------ #
    def _signatures_valid(self, message, expected_round: int) -> bool:
        """Check a (remote or local) complaint's quorum of LComplaint signatures."""
        complaining = message.complaining_cluster
        view = self.view_fn()
        if complaining not in view:
            return False
        members = set(view[complaining])
        threshold = 2 * self.faults_fn(complaining) + 1
        expected_digest = LComplaint(
            target_cluster=self.cluster_id,
            complaint_number=message.complaint_number,
            round_number=expected_round,
            origin_cluster=complaining,
        ).digest()
        valid_signers = set()
        for signature in message.signatures:
            if signature.signer not in members:
                continue
            if signature.digest != expected_digest:
                continue
            if not self.network.registry.verify(signature):
                continue
            valid_signers.add(signature.signer)
        return len(valid_signers) >= threshold

    def _round_acceptable(self, complained_round: int) -> bool:
        """Accept complaints for the current round or the immediately previous one.

        Clusters can be at most one round apart (each waits for all others
        before executing), so a complaint raised while the complaining
        cluster is still in round ``r`` may reach this cluster after it moved
        to ``r + 1``; such complaints are still actionable.
        """
        current = self.round_fn()
        return complained_round in (current, current - 1)

    def _on_rcomplaint(self, sender: str, message: RComplaint) -> None:
        if not self._round_acceptable(message.round_number):
            return
        watch = self._watch(message.complaining_cluster)
        if message.complaint_number != watch.received_complaint_number:
            return
        if not self._signatures_valid(message, message.round_number):
            return
        self.abeb.broadcast(
            ClusterComplaint(
                complaint_number=message.complaint_number,
                complaining_cluster=message.complaining_cluster,
                signatures=message.signatures,
                round_number=message.round_number,
            )
        )

    def _on_cluster_complaint(self, sender: str, message: ClusterComplaint) -> None:
        if not self._round_acceptable(message.round_number):
            return
        watch = self._watch(message.complaining_cluster)
        if message.complaint_number != watch.received_complaint_number:
            return
        if not self._signatures_valid(message, message.round_number):
            return
        watch.received_complaint_number += 1
        since_change = self.simulator.now - self.last_leader_change_fn()
        if since_change > self.epsilon:
            self.remote_changes_applied += 1
            self.on_next_leader()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        """Consume a remote-leader-change message; True if handled."""
        payload = envelope.payload
        if isinstance(payload, LComplaint):
            self._on_lcomplaint(sender, payload, envelope.signature)
            return True
        if isinstance(payload, RComplaint):
            self._on_rcomplaint(sender, payload)
            return True
        if isinstance(payload, ClusterComplaint):
            self._on_cluster_complaint(sender, payload)
            return True
        return False


__all__ = ["RemoteLeaderChange"]
