"""Hamava core: the reconfigurable clustered replication meta-protocol.

The public surface of this package is:

* :class:`~repro.core.replica.HamavaReplica` — one replica of the replicated
  system, orchestrating the three stages of each round (intra-cluster
  replication, inter-cluster communication, execution).
* :class:`~repro.core.config.HamavaConfig` and
  :class:`~repro.core.config.SystemConfig` — protocol and deployment
  configuration.
* The protocol sub-components, usable on their own:
  :class:`~repro.core.brd.ByzantineReliableDissemination` (Alg. 5/6),
  :class:`~repro.core.remote_leader_change.RemoteLeaderChange` (Alg. 2),
  :class:`~repro.core.reconfiguration.ReconfigurationCollector` (Alg. 3).
"""

from repro.core.config import ClusterSpec, HamavaConfig, SystemConfig
from repro.core.replica import ByzantineBehavior, HamavaReplica
from repro.core.statemachine import KeyValueStore
from repro.core.types import (
    OperationsBundle,
    ReconfigRequest,
    Transaction,
    join_request,
    leave_request,
)

__all__ = [
    "ByzantineBehavior",
    "ClusterSpec",
    "HamavaConfig",
    "HamavaReplica",
    "KeyValueStore",
    "OperationsBundle",
    "ReconfigRequest",
    "SystemConfig",
    "Transaction",
    "join_request",
    "leave_request",
]
