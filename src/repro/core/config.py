"""Deployment and protocol configuration.

Two layers of configuration exist:

* :class:`SystemConfig` — *who* is in the system: the clusters, their
  members, and the regions they live in.  This is only the *initial*
  configuration; each replica maintains its own evolving view as
  reconfigurations execute.
* :class:`HamavaConfig` — *how* the protocol behaves: batch sizes, timers,
  which local ordering engine to use, and whether reconfigurations run in
  the parallel workflow (Hamava) or inside the transaction ordering (the
  single-workflow baseline of experiment E5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from repro.consensus.interface import ConsensusConfig
from repro.errors import ConfigurationError


def failure_threshold(cluster_size: int) -> int:
    """The paper's failure threshold: ``f_j = ⌊(|C_j| - 1) / 3⌋``."""
    if cluster_size <= 0:
        return 0
    return (cluster_size - 1) // 3


@dataclass
class ClusterSpec:
    """Static description of one cluster in the initial configuration.

    Attributes:
        cluster_id: Numeric id; also the predefined execution order (stage 3).
        region: Region every member is placed in (clusters are intra-region
            in the paper's deployments).
        replicas: Replica identifiers, e.g. ``["c0/r0", "c0/r1", ...]``.
    """

    cluster_id: int
    region: str
    replicas: List[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of replicas in the cluster."""
        return len(self.replicas)

    @property
    def faults(self) -> int:
        """Failure threshold ``f`` for this cluster."""
        return failure_threshold(self.size)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the spec is unusable."""
        if self.size < 1:
            raise ConfigurationError(f"cluster {self.cluster_id} has no replicas")
        if len(set(self.replicas)) != self.size:
            raise ConfigurationError(f"cluster {self.cluster_id} has duplicate replica ids")


@dataclass
class SystemConfig:
    """The initial system configuration: all clusters and their members."""

    clusters: Dict[int, ClusterSpec] = field(default_factory=dict)

    @classmethod
    def build(cls, sizes_and_regions: Iterable[tuple], prefix: str = "c") -> "SystemConfig":
        """Construct a configuration from ``[(size, region), ...]`` tuples.

        Replica ids are generated as ``"{prefix}{cluster}/r{index}"``.
        """
        clusters: Dict[int, ClusterSpec] = {}
        for cluster_id, (size, region) in enumerate(sizes_and_regions):
            replicas = [f"{prefix}{cluster_id}/r{i}" for i in range(size)]
            clusters[cluster_id] = ClusterSpec(cluster_id=cluster_id, region=region, replicas=replicas)
        config = cls(clusters=clusters)
        config.validate()
        return config

    def validate(self) -> None:
        """Validate every cluster spec and cross-cluster uniqueness."""
        if not self.clusters:
            raise ConfigurationError("a system needs at least one cluster")
        seen: set = set()
        for spec in self.clusters.values():
            spec.validate()
            overlap = seen.intersection(spec.replicas)
            if overlap:
                raise ConfigurationError(f"replicas {sorted(overlap)} appear in multiple clusters")
            seen.update(spec.replicas)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def cluster_ids(self) -> List[int]:
        """Sorted cluster identifiers."""
        return sorted(self.clusters)

    def members(self, cluster_id: int) -> List[str]:
        """Sorted members of one cluster."""
        return sorted(self.clusters[cluster_id].replicas)

    def all_replicas(self) -> List[str]:
        """All replica ids across all clusters."""
        replicas: List[str] = []
        for cluster_id in self.cluster_ids():
            replicas.extend(self.members(cluster_id))
        return replicas

    def cluster_of(self, replica_id: str) -> int:
        """The cluster a replica belongs to."""
        for cluster_id, spec in self.clusters.items():
            if replica_id in spec.replicas:
                return cluster_id
        raise ConfigurationError(f"replica {replica_id!r} is not in any cluster")

    def region_of_cluster(self, cluster_id: int) -> str:
        """Region of a cluster."""
        return self.clusters[cluster_id].region

    def faults(self, cluster_id: int) -> int:
        """Failure threshold of a cluster in the initial configuration."""
        return self.clusters[cluster_id].faults

    def initial_view(self) -> Dict[int, set]:
        """The membership view replicas start from: ``{cluster: {members}}``."""
        return {cid: set(spec.replicas) for cid, spec in self.clusters.items()}

    def total_replicas(self) -> int:
        """Total number of replicas in the system."""
        return sum(spec.size for spec in self.clusters.values())


@dataclass
class HamavaConfig:
    """Protocol parameters for a Hamava deployment.

    Attributes:
        engine: Local ordering engine name (``"hotstuff"`` or ``"bftsmart"``).
        batch_size: Transactions per round per cluster (paper: 100).
        batch_timeout: Leader proposes a partial (possibly empty) batch after
            this many seconds so rounds progress under light load.
        remote_timeout: ``Δ`` — how long replicas wait for a remote cluster's
            operations before starting the remote leader change (paper: 20 s).
        leader_change_epsilon: ``ε`` — grace period after a local leader
            change during which further remote complaints are ignored.
        brd_timeout: How long BRD waits for delivery before complaining.
        consensus: Parameters for the local ordering engine.
        parallel_reconfig: ``True`` runs reconfigurations in the dedicated
            workflow (Hamava); ``False`` orders them through the transaction
            consensus (the single-workflow baseline of E5.2).
        local_reads: Serve read transactions immediately at the contacted
            replica (the behaviour the paper describes in E2).
        inter_share_grace: Seconds a later-indexed Inter receiver waits for
            the first-indexed receiver's ``LocalShare`` before re-broadcasting
            the bundle itself.  The ``f+1`` Inter targets all re-broadcast in
            Alg. 1 so one Byzantine receiver cannot suppress dissemination;
            staggering keeps that guarantee (a silent first receiver costs
            only this grace period) while eliding the duplicate broadcast —
            one of ``f+1`` identical cluster-wide multicasts per remote
            bundle — on the fault-free path.
        retry_timeout: Client-side retransmission timeout for lost writes.
        pipeline_local_ordering: When ``True`` the leader starts ordering the
            next round's batch as soon as the current round's local ordering
            finishes, overlapping it with inter-cluster communication and
            execution.  Hamava keeps this off (its reconfiguration round
            barrier requires aligned rounds); the GeoBFT baseline turns it on.
        read_leases: When ``True`` the cluster leader periodically grants
            read leases (see :class:`~repro.core.messages.ReadLeaseGrant`);
            lease-holding replicas answer batched reads locally without any
            consensus involvement, and lease misses forward to the leader.
            Off by default — the closed-loop paper-fidelity path is
            unaffected unless a scenario opts in.
        lease_duration: Lifetime of one read-lease grant in seconds.  Grants
            refresh at half this period; a new leader stays silent for one
            full duration so old-leader leases lapse before it writes.
    """

    engine: str = "hotstuff"
    batch_size: int = 100
    batch_timeout: float = 0.01
    remote_timeout: float = 20.0
    leader_change_epsilon: float = 1.0
    brd_timeout: float = 20.0
    consensus: ConsensusConfig = field(default_factory=ConsensusConfig)
    parallel_reconfig: bool = True
    local_reads: bool = True
    inter_share_grace: float = 0.002
    retry_timeout: float = 60.0
    pipeline_local_ordering: bool = False
    read_leases: bool = False
    lease_duration: float = 2.0

    def with_engine(self, engine: str) -> "HamavaConfig":
        """A copy of this configuration using a different ordering engine."""
        return replace(self, engine=engine)

    def with_timeouts(
        self,
        remote_timeout: Optional[float] = None,
        instance_timeout: Optional[float] = None,
        brd_timeout: Optional[float] = None,
    ) -> "HamavaConfig":
        """A copy with adjusted fault-detection timeouts (used by benches)."""
        consensus = self.consensus
        if instance_timeout is not None:
            # ``replace`` (not a fresh ConsensusConfig) so engine-specific
            # fields like ``chained_decide_grace`` survive a timeout tweak.
            consensus = replace(consensus, instance_timeout=instance_timeout)
        return replace(
            self,
            remote_timeout=remote_timeout if remote_timeout is not None else self.remote_timeout,
            brd_timeout=brd_timeout if brd_timeout is not None else self.brd_timeout,
            consensus=consensus,
        )


__all__ = ["ClusterSpec", "HamavaConfig", "SystemConfig", "failure_threshold"]
