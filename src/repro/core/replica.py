"""The Hamava replica: stages, rounds, reconfiguration, and execution.

One :class:`HamavaReplica` is a member of one cluster.  Each round it runs
the paper's three stages:

1. **Intra-cluster replication** — the cluster's local ordering engine
   (HotStuff- or BFT-SMaRt-like) orders a batch of transactions, while the
   reconfiguration workflow collects join/leave requests and uniformly
   disseminates them with BRD (Alg. 3/4/5/6), in parallel with ordering.
2. **Inter-cluster communication** — the leader ships the cluster's
   operations plus certificates to ``f_j + 1`` replicas of every remote
   cluster (Alg. 1); missing remote operations trigger the heterogeneous
   remote leader change (Alg. 2).
3. **Execution** — operations from all clusters are executed in the
   predefined cluster order, reconfigurations update the membership view and
   failure thresholds for the next round, and joining replicas are
   kick-started with a state transfer (Alg. 10).

The replica is consensus-agnostic: the ordering engine is chosen by name in
:class:`~repro.core.config.HamavaConfig` (``"hotstuff"`` or ``"bftsmart"``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.consensus.interface import Decision, ReadLease, commit_digest
from repro.consensus.leader_election import ElectionComplaint, LeaderElection
from repro.consensus.registry import make_engine
from repro.core.brd import ByzantineReliableDissemination, canonical_recs, ready_digest
from repro.core.config import HamavaConfig, SystemConfig, failure_threshold
from repro.core.messages import (
    ClientBatchRequest,
    ClientBatchResponse,
    ClientRequest,
    ClientResponse,
    ClusterComplaint,
    CurrState,
    Inter,
    LComplaint,
    LocalShare,
    RComplaint,
    ReadLeaseGrant,
    ReconfigAck,
    RequestJoin,
    RequestLeave,
)
from repro.core.reconfiguration import ReconfigurationCollector, RequestTracker
from repro.core.remote_leader_change import RemoteLeaderChange
from repro.core.statemachine import KeyValueStore
from repro.core.types import (
    OperationsBundle,
    ReconfigRequest,
    Transaction,
    join_request,
    leave_request,
)
from repro.net.message import Envelope
from repro.net.links import AuthenticatedBestEffortBroadcast, AuthenticatedPerfectLink
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator

#: Replica lifecycle modes.
MODE_ACTIVE = "active"
MODE_JOINING = "joining"
MODE_IDLE = "idle"
MODE_LEFT = "left"

#: Virtual CPU cost of executing one operation in stage 3 (seconds).
EXECUTION_COST_PER_OP = 0.00001


@dataclass
class ByzantineBehavior:
    """Byzantine behaviour switches for fault-injection experiments.

    Attributes:
        silent_inter_after: From this virtual time on, the replica — when it
            is the leader — completes stage 1 correctly but never sends the
            inter-cluster broadcast (the E4.3 attack that the remote leader
            change protocol detects).
    """

    silent_inter_after: Optional[float] = None

    def suppress_inter(self, now: float) -> bool:
        """Whether the inter-cluster broadcast should be suppressed now."""
        return self.silent_inter_after is not None and now >= self.silent_inter_after


@dataclass
class _RoundState:
    """Book-keeping for the round currently in progress."""

    round_number: int
    started_at: float
    local_transactions: Optional[List[Transaction]] = None
    local_txn_certificate: Optional[Any] = None
    local_reconfigs: Optional[Tuple[ReconfigRequest, ...]] = None
    recs_collection_certificate: Optional[Any] = None
    recs_ready_certificate: Optional[Any] = None
    stage1_done_at: Optional[float] = None
    stage2_done_at: Optional[float] = None
    bundle: Optional[OperationsBundle] = None
    inter_sent: bool = False


class HamavaReplica(Process):
    """One replica of the Hamava replicated system.

    Args:
        replica_id: Globally unique process id.
        cluster_id: The cluster this replica belongs to.
        system_config: Initial configuration of all clusters.
        network: The simulated network.
        simulator: The simulation kernel.
        config: Protocol parameters.
        metrics: Optional metrics sink (duck-typed; see
            :class:`repro.harness.metrics.MetricsCollector`).
        byzantine: Optional Byzantine behaviour switches.
        mode: ``"active"`` for initial members, ``"idle"`` for processes
            created ahead of a later join.
    """

    def __init__(
        self,
        replica_id: str,
        cluster_id: int,
        system_config: SystemConfig,
        network: Network,
        simulator: Simulator,
        config: Optional[HamavaConfig] = None,
        metrics: Optional[Any] = None,
        byzantine: Optional[ByzantineBehavior] = None,
        mode: str = MODE_ACTIVE,
    ) -> None:
        super().__init__(replica_id, simulator)
        self.cluster_id = cluster_id
        self.config = config or HamavaConfig()
        self.metrics = metrics
        self.byzantine = byzantine or ByzantineBehavior()
        self.mode = mode
        self.is_reporter = False

        # Membership view: cluster id -> set of member ids.
        self.view: Dict[int, Set[str]] = system_config.initial_view()
        self.round_number = 1
        self.kv = KeyValueStore()

        # Per-view-epoch caches of the sorted membership tuples and the
        # sorted cluster order.  ``members()``/``local_members()`` are called
        # for every message sent or validated, so re-sorting the view per
        # call is pure overhead; the caches are invalidated whenever the view
        # changes (reconfiguration execution, state-transfer adoption).  The
        # cached values are *tuples* — the ``members_fn`` contract (see
        # ``consensus/interface.py``) promises the engines, BRD, leader
        # election, and RLC an immutable sorted sequence they never re-sort.
        self._members_cache: Dict[int, Tuple[str, ...]] = {}
        self._faults_cache: Dict[int, int] = {}
        self._view_order_cache: Optional[List[int]] = None

        network.register(self, system_config.region_of_cluster(cluster_id))

        self.apl = AuthenticatedPerfectLink(replica_id, network)
        self.abeb = AuthenticatedBestEffortBroadcast(replica_id, network, self.local_members)

        # Leader state (Alg. 7/8).
        self.leader: str = self.local_members()[0]
        self.leader_ts: int = 0
        self.last_leader_change: float = 0.0

        # Sub-protocol modules.
        self.le = LeaderElection(
            owner=replica_id,
            cluster_id=cluster_id,
            members_fn=self.local_members,
            faults_fn=self.local_faults,
            network=network,
            on_new_leader=self._on_new_leader,
        )
        self.tob = make_engine(
            self.config.engine,
            replica_id,
            cluster_id,
            self.local_members,
            self.local_faults,
            network,
            simulator,
            self.config.consensus,
            on_deliver=self._on_tob_deliver,
            on_complain=self._complain,
            fetch_value=self._fetch_batch,
            round_marker_fn=self._brd_round_marker,
            on_round_marker=self._on_brd_round_marker,
            decide_extra_fn=self._brd_decide_extra,
            on_decide_extra=self._on_brd_decide_extra,
        )
        self.collector = ReconfigurationCollector(
            owner=replica_id,
            cluster_id=cluster_id,
            network=network,
            members_fn=self.local_members,
            round_fn=lambda: self.round_number,
        )
        self.rlc = RemoteLeaderChange(
            owner=replica_id,
            cluster_id=cluster_id,
            view_fn=lambda: self.view,
            members_of_fn=self.members,
            faults_fn=self.faults,
            round_fn=lambda: self.round_number,
            has_operations_fn=lambda cid: cid in self.operations,
            network=network,
            simulator=simulator,
            timeout=self.config.remote_timeout,
            epsilon=self.config.leader_change_epsilon,
            on_next_leader=self.le.next_leader,
            last_leader_change_fn=lambda: self.last_leader_change,
        )
        self._brd_instances: Dict[int, ByzantineReliableDissemination] = {}
        #: Shared lazy-deadline pool for the per-round BRD delivery timers
        #: (keyed by round number); expirations route back to the instance.
        self._brd_timer_pool = simulator.deadline_pool(
            self._on_brd_timer, name=f"{replica_id}:brd"
        )

        # Round state.
        self.operations: Dict[int, OperationsBundle] = {}
        self._round_state = _RoundState(round_number=self.round_number, started_at=0.0)
        #: ``(cluster_id, round)`` keys of LocalShares accepted from peers —
        #: a later-indexed Inter receiver skips its own re-broadcast when the
        #: first-indexed receiver's share already arrived (see
        #: ``HamavaConfig.inter_share_grace``).
        self._peer_shared: Set[Tuple[int, int]] = set()
        self._previous_bundle: Optional[OperationsBundle] = None
        self._tob_decisions: Dict[int, Decision] = {}
        self._buffered_shares: Dict[int, List[Tuple[str, Envelope]]] = {}
        self._buffered_brd: Dict[int, List[Tuple[str, Envelope]]] = {}

        # Client transaction plumbing.
        self._leader_queue: Deque[Transaction] = deque()
        self._queued_ids: Set[str] = set()
        self._forwarded: Dict[str, Transaction] = {}
        self._executed_ids: Set[str] = set()
        self._proposed_rounds: Set[int] = set()
        self._current_batch: Dict[int, List[Transaction]] = {}
        self._batch_timer = self.new_timer(self.config.batch_timeout, self._on_batch_timeout, "batch")

        # Open-loop client boundary (strictly opt-in; see workload/population.py).
        # Clients that speak the batch protocol get their write responses
        # accumulated and flushed once per execution instead of one envelope
        # per transaction; the closed-loop per-transaction path is untouched.
        self._batch_clients: Set[str] = set()
        self._pending_batch: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        # Read-lease state (active only when ``config.read_leases``).
        self._read_lease = ReadLease(duration=self.config.lease_duration)
        self._lease_hold_until = 0.0
        self._lease_tick_armed = False
        self.lease_hits = 0
        self.lease_misses = 0

        # Join/leave requester state.
        self._join_tracker: Optional[RequestTracker] = None
        self._leave_tracker: Optional[RequestTracker] = None
        self._join_retry_timer = self.new_timer(1.0, self._retry_join, "join-retry")
        self._currstate_votes: Dict[Tuple[int, Tuple[str, ...]], Set[str]] = {}
        self._currstate_snapshots: Dict[Tuple[int, Tuple[str, ...]], CurrState] = {}
        self.joined_at: Optional[float] = None
        self.left_at: Optional[float] = None

        # Statistics exposed for tests and metrics.
        self.executed_operations = 0
        self.executed_rounds = 0
        self.reconfigs_applied: List[Tuple[int, ReconfigRequest]] = []
        self.execution_log: List[str] = []

        # Message dispatch table: exact payload type -> (active_only,
        # wants_envelope, bound handler).  One dict probe replaces the
        # isinstance ladder on the per-delivery hot path; subclassed payload
        # types fall back to the ladder.
        self._handler_table: Dict[type, Tuple[bool, bool, Any]] = {
            ClientRequest: (False, False, self._on_client_request),
            ClientBatchRequest: (False, False, self._on_client_batch),
            ReadLeaseGrant: (True, False, self._on_lease_grant),
            ReconfigAck: (False, False, self._on_ack),
            CurrState: (False, False, self._on_curr_state),
            Inter: (True, False, self._on_inter),
            LocalShare: (True, False, self._on_local_share),
            ElectionComplaint: (True, True, self.le.on_message),
        }
        for message_type in (LComplaint, RComplaint, ClusterComplaint):
            self._handler_table[message_type] = (True, True, self.rlc.on_message)
        for message_type in self.tob.MESSAGE_TYPES:
            self._handler_table[message_type] = (True, True, self.tob.on_message)
        for message_type in ByzantineReliableDissemination.MESSAGE_TYPES:
            self._handler_table[message_type] = (True, True, self._dispatch_brd)

    # ------------------------------------------------------------------ #
    # Membership helpers
    # ------------------------------------------------------------------ #
    def local_members(self) -> Tuple[str, ...]:
        """Sorted member tuple of the local cluster under the current view."""
        cache = self._members_cache
        members = cache.get(self.cluster_id)
        if members is None:
            members = cache[self.cluster_id] = tuple(sorted(self.view[self.cluster_id]))
        return members

    def members(self, cluster_id: int) -> Tuple[str, ...]:
        """Sorted member tuple of any cluster under the current view."""
        cache = self._members_cache
        members = cache.get(cluster_id)
        if members is None:
            members = cache[cluster_id] = tuple(sorted(self.view[cluster_id]))
        return members

    def _sorted_view_ids(self) -> List[int]:
        """Sorted cluster ids of the current view (cached per view epoch)."""
        order = self._view_order_cache
        if order is None:
            order = self._view_order_cache = sorted(self.view)
        return order

    def _invalidate_view_caches(self) -> None:
        self._members_cache.clear()
        self._faults_cache.clear()
        self._view_order_cache = None

    def faults(self, cluster_id: int) -> int:
        """Failure threshold ``f_j`` of a cluster under the current view.

        Cached per view epoch alongside the member tuples: quorum checks ask
        for ``f`` on every vote and share, and the threshold only changes
        when the view does.
        """
        cache = self._faults_cache
        faults = cache.get(cluster_id)
        if faults is None:
            faults = cache[cluster_id] = failure_threshold(len(self.view[cluster_id]))
        return faults

    def local_faults(self) -> int:
        """Failure threshold of the local cluster."""
        return self.faults(self.cluster_id)

    def is_leader(self) -> bool:
        """Whether this replica currently leads its cluster."""
        return self.leader == self.process_id

    def cluster_count(self) -> int:
        """Number of clusters in the current view."""
        return len(self.view)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        """Begin round 1 (active members) or stay idle until a join begins."""
        if self.mode == MODE_ACTIVE:
            self._arm_lease_tick()
            self._start_round()

    def set_timer_rate(self, rate: float) -> None:
        """Skew every protocol clock, including the shared deadline pools.

        The base class only reaches timers created via ``new_timer``; the
        replica also owns lazy deadline pools (BRD delivery, TOB watchdogs,
        remote-leader-change watches) that must tick at the skewed rate.
        """
        super().set_timer_rate(rate)
        self._brd_timer_pool.rate = rate
        # Engines own their pools (the chained engine has a decide-grace
        # pool besides the watchdogs); let them skew everything they hold.
        self.tob.set_timer_rate(rate)
        watch_pool = getattr(self.rlc, "_watch_pool", None)
        if watch_pool is not None:
            watch_pool.rate = rate

    # ------------------------------------------------------------------ #
    # Round lifecycle
    # ------------------------------------------------------------------ #
    def _start_round(self) -> None:
        self._round_state = _RoundState(round_number=self.round_number, started_at=self.now)
        self.operations = {}
        if self._peer_shared:
            horizon = self.round_number - 1
            self._peer_shared = {key for key in self._peer_shared if key[1] >= horizon}
        self.rlc.start_round()
        self._create_brd()
        self.tob.start_instance(self.round_number)
        if self.is_leader() and self.round_number not in self._proposed_rounds:
            if len(self._leader_queue) >= self.config.batch_size:
                self._propose_batch()
            else:
                self._batch_timer.start(self.config.batch_timeout)
        # Re-apply any decision or shares that arrived ahead of this round.
        if self.round_number in self._tob_decisions:
            self._handle_local_decision(self._tob_decisions[self.round_number])
        for sender, envelope in self._buffered_shares.pop(self.round_number, []):
            self._on_local_share(sender, envelope.payload)
        for sender, envelope in self._buffered_brd.pop(self.round_number, []):
            self._brd_instances[self.round_number].on_message(sender, envelope)

    def _create_brd(self) -> None:
        round_number = self.round_number
        brd = ByzantineReliableDissemination(
            owner=self.process_id,
            cluster_id=self.cluster_id,
            round_number=round_number,
            members_fn=self.local_members,
            faults_fn=self.local_faults,
            network=self.network,
            simulator=self.simulator,
            leader=self.leader,
            view_ts=self.leader_ts,
            timeout=self.config.brd_timeout,
            on_deliver=lambda recs, proof, cert, rn=round_number: self._on_brd_deliver(
                rn, recs, proof, cert
            ),
            on_complain=self._complain,
            timer_pool=self._brd_timer_pool,
        )
        self._brd_instances[round_number] = brd
        # Garbage-collect instances older than the previous round.
        for old_round in [r for r in self._brd_instances if r < round_number - 1]:
            self._brd_instances[old_round].stop()
            del self._brd_instances[old_round]

    # ------------------------------------------------------------------ #
    # Stage 1a: local ordering
    # ------------------------------------------------------------------ #
    def _on_batch_timeout(self) -> None:
        if self.mode == MODE_ACTIVE and self.is_leader():
            self._propose_batch()

    def _take_batch(self) -> List[Transaction]:
        batch: List[Transaction] = []
        while self._leader_queue and len(batch) < self.config.batch_size:
            transaction = self._leader_queue.popleft()
            self._queued_ids.discard(transaction.txn_id)
            if transaction.txn_id in self._executed_ids:
                continue
            batch.append(transaction)
        return batch

    def _propose_batch(self) -> None:
        if self.round_number in self._proposed_rounds:
            return
        if not self.is_leader():
            return
        self._proposed_rounds.add(self.round_number)
        batch = self._take_batch()
        self._current_batch[self.round_number] = batch
        self.tob.propose(self.round_number, batch)

    def _fetch_batch(self, sequence: int) -> List[Transaction]:
        if sequence in self._current_batch:
            return self._current_batch[sequence]
        batch = self._take_batch()
        self._current_batch[sequence] = batch
        return batch

    def _on_tob_deliver(self, decision: Decision) -> None:
        self._tob_decisions[decision.sequence] = decision
        if decision.sequence == self.round_number:
            self._handle_local_decision(decision)

    def _handle_local_decision(self, decision: Decision) -> None:
        state = self._round_state
        if state.local_transactions is not None:
            return
        state.local_transactions = list(decision.value)
        state.local_txn_certificate = decision.certificate
        # Stage 1b (dissemination): submit our collected reconfiguration set
        # (a no-op beyond arming the timer when it already rode this view's
        # commit vote as a round marker), and — as the leader — aggregate
        # whatever quorum the markers collected (quiet proofs were already
        # taken at the decide broadcast; this covers mixed rounds and
        # engines without a decide message).
        if self.config.parallel_reconfig:
            brd = self._brd_instances[self.round_number]
            brd.broadcast(self.collector.current_recs())
            if self.is_leader():
                brd.flush_aggregate()
        else:
            self._on_brd_deliver(self.round_number, (), None, None)
        self._maybe_finish_stage1()

    # -- BRD <-> consensus piggyback (quiet rounds; see core/brd.py) ------ #
    def _brd_round_marker(self, sequence: int):
        if not self.config.parallel_reconfig:
            return None
        brd = self._brd_instances.get(sequence)
        if brd is None:
            return None
        return brd.make_marker(self.collector.current_recs())

    def _on_brd_round_marker(self, sequence: int, sender: str, marker) -> None:
        brd = self._brd_instances.get(sequence)
        if brd is not None:
            brd.on_marker(sender, marker)

    def _brd_decide_extra(self, sequence: int):
        if not self.config.parallel_reconfig:
            return None
        brd = self._brd_instances.get(sequence)
        return None if brd is None else brd.take_quiet_proof()

    def _on_brd_decide_extra(self, sequence: int, sender: str, extra) -> None:
        brd = self._brd_instances.get(sequence)
        if brd is not None:
            brd.on_quiet_aggregate(sender, extra)

    # ------------------------------------------------------------------ #
    # Stage 1b: reconfiguration dissemination
    # ------------------------------------------------------------------ #
    def _on_brd_deliver(self, round_number: int, recs, proof, ready_certificate) -> None:
        if round_number != self.round_number:
            return
        state = self._round_state
        if state.local_reconfigs is not None:
            return
        state.local_reconfigs = canonical_recs(recs)
        state.recs_collection_certificate = proof
        state.recs_ready_certificate = ready_certificate
        self._maybe_finish_stage1()

    def _maybe_finish_stage1(self) -> None:
        state = self._round_state
        if state.bundle is not None:
            return
        if state.local_transactions is None or state.local_reconfigs is None:
            return
        state.stage1_done_at = self.now
        bundle = OperationsBundle(
            cluster_id=self.cluster_id,
            round_number=self.round_number,
            transactions=state.local_transactions,
            reconfigs=state.local_reconfigs,
            txn_certificate=state.local_txn_certificate,
            recs_collection_certificate=state.recs_collection_certificate,
            recs_ready_certificate=state.recs_ready_certificate,
        )
        state.bundle = bundle
        self.operations[self.cluster_id] = bundle
        self.rlc.stop_timer(self.cluster_id)
        if self.is_leader():
            self._inter_broadcast(bundle)
            if self.config.pipeline_local_ordering:
                self._pre_propose(self.round_number + 1)
        self._maybe_execute()

    def _pre_propose(self, sequence: int) -> None:
        """Start ordering the next round's batch early (GeoBFT-style pipelining)."""
        if sequence in self._proposed_rounds:
            return
        self._proposed_rounds.add(sequence)
        batch = self._take_batch()
        self._current_batch[sequence] = batch
        self.tob.propose(sequence, batch)

    # ------------------------------------------------------------------ #
    # Stage 2: inter-cluster communication (Alg. 1)
    # ------------------------------------------------------------------ #
    def _inter_broadcast(self, bundle: OperationsBundle) -> None:
        if self.byzantine.suppress_inter(self.now):
            return
        state = self._round_state
        if bundle.round_number == state.round_number:
            state.inter_sent = True
        message = Inter(round_number=bundle.round_number, cluster_id=self.cluster_id, bundle=bundle)
        for cluster_id in self._sorted_view_ids():
            if cluster_id == self.cluster_id:
                continue
            members = self.members(cluster_id)
            targets = members[: self.faults(cluster_id) + 1]
            for target in targets:
                self.apl.send(target, message)

    def _bundle_valid(self, cluster_id: int, round_number: int, bundle: OperationsBundle) -> bool:
        if cluster_id not in self.view:
            return False
        members = self.members(cluster_id)
        threshold = 2 * self.faults(cluster_id) + 1
        # The expected digests are cached on the bundle itself: the same
        # bundle object is validated once per Inter target and once per
        # LocalShare receiver, and each computation re-walks the batch.  The
        # cache only applies when the claimed coordinates match the bundle's
        # own (a Byzantine sender may relabel a bundle; that path recomputes).
        own_coordinates = (
            cluster_id == bundle.cluster_id and round_number == bundle.round_number
        )
        bundle_cache = bundle.__dict__
        if own_coordinates:
            expected = bundle_cache.get("_commit_digest")
            if expected is None:
                expected = commit_digest(cluster_id, round_number, bundle.transactions)
                bundle_cache["_commit_digest"] = expected
        else:
            expected = commit_digest(cluster_id, round_number, bundle.transactions)
        if not self.network.registry.certificate_valid(
            bundle.txn_certificate, members, threshold, digest=expected
        ):
            return False
        if self.config.parallel_reconfig:
            if own_coordinates:
                expected_recs = bundle_cache.get("_ready_digest")
                if expected_recs is None:
                    expected_recs = ready_digest(cluster_id, round_number, bundle.reconfigs)
                    bundle_cache["_ready_digest"] = expected_recs
            else:
                expected_recs = ready_digest(cluster_id, round_number, bundle.reconfigs)
            if not self.network.registry.certificate_valid(
                bundle.recs_ready_certificate, members, threshold, digest=expected_recs
            ):
                return False
        elif bundle.reconfigs:
            return False
        return True

    def _on_inter(self, sender: str, message: Inter) -> None:
        if message.round_number < self.round_number:
            return
        if not self._bundle_valid(message.cluster_id, message.round_number, message.bundle):
            return
        share = LocalShare(
            round_number=message.round_number,
            cluster_id=message.cluster_id,
            bundle=message.bundle,
        )
        targets = self.local_members()[: self.local_faults() + 1]
        if self.process_id in targets and targets.index(self.process_id) > 0:
            # Staggered redundancy: adopt the bundle at once (a share to
            # self, 0 ms loop-back), but give the first-indexed receiver a
            # grace period to disseminate before re-broadcasting ourselves.
            key = (message.cluster_id, message.round_number)
            if key in self._peer_shared:
                return
            self.apl.send(self.process_id, share)
            self.simulator.schedule(
                self.config.inter_share_grace,
                self._share_grace_expired,
                arg=share,
                label=f"{self.process_id}:share-grace",
            )
            return
        self.abeb.broadcast(share)

    def _share_grace_expired(self, share: LocalShare) -> None:
        if self.mode != MODE_ACTIVE or self.crashed:
            return
        if (share.cluster_id, share.round_number) in self._peer_shared:
            return  # the first-indexed receiver's broadcast made it; stay quiet
        self.abeb.broadcast(share)

    def _on_local_share(self, sender: str, message: LocalShare) -> None:
        if sender != self.process_id:
            self._peer_shared.add((message.cluster_id, message.round_number))
        if message.round_number < self.round_number:
            return
        if message.round_number > self.round_number:
            self._buffered_shares.setdefault(message.round_number, []).append(
                (sender, Envelope(sender, message))
            )
            return
        if message.cluster_id in self.operations:
            return
        # Shares are shipped at envelope-only cost (see LocalShare): only
        # the one copy that survives the dedup above pays the certificate
        # verifications, charged here against this replica's receive CPU.
        # Self-shares are exempt — an Inter receiver validated (and was
        # charged for) the bundle in ``_on_inter`` before sharing it.
        if sender != self.process_id:
            self.network.charge_verification(
                self.process_id, self._bundle_verification_signatures(message.bundle)
            )
        if not self._bundle_valid(message.cluster_id, message.round_number, message.bundle):
            return
        self.operations[message.cluster_id] = message.bundle
        self.rlc.stop_timer(message.cluster_id)
        self._maybe_execute()

    def _bundle_verification_signatures(self, bundle: OperationsBundle) -> int:
        """Signatures ``_bundle_valid`` checks: both certificates' worth."""
        signatures = len(bundle.txn_certificate) if bundle.txn_certificate is not None else 0
        if self.config.parallel_reconfig and bundle.recs_ready_certificate is not None:
            signatures += len(bundle.recs_ready_certificate)
        return signatures

    # ------------------------------------------------------------------ #
    # Stage 3: execution (Alg. 10)
    # ------------------------------------------------------------------ #
    def _maybe_execute(self) -> None:
        if len(self.operations) < self.cluster_count():
            return
        state = self._round_state
        if state.stage2_done_at is not None:
            return
        state.stage2_done_at = self.now
        self._execute()

    def _execute(self) -> None:
        state = self._round_state
        operations = dict(self.operations)
        local_reconfigs: Tuple[ReconfigRequest, ...] = ()
        operation_count = 0
        # The predefined cluster order is the sorted view order; snapshot it
        # before the loop because applying reconfigs below churns the view.
        execution_order = [cid for cid in self._sorted_view_ids() if cid in operations]
        for cluster_id in execution_order:
            bundle = operations[cluster_id]
            for transaction in bundle.transactions:
                self._apply_transaction(transaction)
                operation_count += 1
            reconfigs = self._extract_reconfigs(bundle)
            for request in reconfigs:
                self._apply_reconfig(cluster_id, request)
                operation_count += 1
            if cluster_id == self.cluster_id:
                local_reconfigs = reconfigs
        if self._pending_batch:
            self._flush_batch_responses()
        self._kickstart(local_reconfigs)
        self.collector.mark_applied(local_reconfigs)

        self.executed_rounds += 1
        self.executed_operations += operation_count
        self._previous_bundle = operations.get(self.cluster_id)

        execution_delay = max(operation_count, 1) * EXECUTION_COST_PER_OP * self.cpu_factor
        round_end = self.now + execution_delay
        if self.metrics is not None and self.is_reporter:
            self.metrics.record_round(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                started_at=state.started_at,
                stage1_done_at=state.stage1_done_at or self.now,
                stage2_done_at=state.stage2_done_at or self.now,
                ended_at=round_end,
                transactions=sum(len(b.transactions) for b in operations.values()),
                reconfigs=sum(len(b.reconfigs) for b in operations.values()),
            )

        if self.mode == MODE_LEFT:
            return
        self.round_number += 1
        self.after(execution_delay, self._start_round, label=f"{self.process_id}:next-round")

    def _apply_transaction(self, transaction: Transaction) -> None:
        value = self.kv.apply(transaction)
        self._executed_ids.add(transaction.txn_id)
        was_ours = self._forwarded.pop(transaction.txn_id, None) is not None
        self.execution_log.append(transaction.txn_id)
        # Respond if the client originally contacted us, or if the client
        # retried the request through us after its original replica failed
        # (clients de-duplicate responses by transaction id).
        if was_ours or transaction.origin_replica == self.process_id:
            if transaction.client_id in self._batch_clients:
                # Open-loop clients get their acks batched per execution.
                self._pending_batch.setdefault(transaction.client_id, []).append(
                    (transaction.txn_id, value)
                )
                return
            self.apl.send(
                transaction.client_id,
                ClientResponse(
                    txn_id=transaction.txn_id,
                    value=value,
                    committed_round=self.round_number,
                    leader_hint=self.leader,
                ),
            )

    def _extract_reconfigs(self, bundle: OperationsBundle) -> Tuple[ReconfigRequest, ...]:
        if self.config.parallel_reconfig:
            return bundle.reconfigs
        # Single-workflow baseline: reconfigurations travel inside the batch
        # encoded as transactions with op "join"/"leave".
        extracted = [
            join_request(t.key, bundle.cluster_id, t.value or "")
            if t.op == "join"
            else leave_request(t.key, bundle.cluster_id)
            for t in bundle.transactions
            if t.op in ("join", "leave")
        ]
        if not extracted:
            return ()
        return tuple(sorted(set(extracted)))

    def _apply_reconfig(self, cluster_id: int, request: ReconfigRequest) -> None:
        members = self.view.setdefault(cluster_id, set())
        if request.is_join:
            members.add(request.process_id)
        elif request.is_leave:
            members.discard(request.process_id)
        self._invalidate_view_caches()
        self.reconfigs_applied.append((self.round_number, request))
        if self.metrics is not None and self.is_reporter:
            self.metrics.record_reconfig(
                kind=request.kind,
                process_id=request.process_id,
                cluster_id=cluster_id,
                round_number=self.round_number,
                applied_at=self.now,
            )

    def _kickstart(self, local_reconfigs: Tuple[ReconfigRequest, ...]) -> None:
        joins = [r for r in local_reconfigs if r.is_join]
        leaves = [r for r in local_reconfigs if r.is_leave]
        next_round = self.round_number + 1
        for request in joins:
            if request.process_id == self.process_id:
                continue
            self.apl.send(
                request.process_id,
                CurrState(
                    cluster_id=self.cluster_id,
                    round_number=next_round,
                    members=self.local_members(),
                    state_snapshot=self.kv.snapshot(),
                    system_view={cid: tuple(sorted(m)) for cid, m in self.view.items()},
                    leader=self.leader,
                    leader_ts=self.leader_ts,
                ),
            )
        for request in leaves:
            if request.process_id == self.process_id:
                self._retire()

    def _retire(self) -> None:
        self.mode = MODE_LEFT
        self.left_at = self.now
        self.rlc.stop_all()
        self._batch_timer.stop()
        self.crash()  # A cleanly departed replica stops sending and receiving.

    # ------------------------------------------------------------------ #
    # Leader changes (Alg. 8)
    # ------------------------------------------------------------------ #
    def _complain(self, leader: str) -> None:
        self.le.complain(leader)

    def _on_new_leader(self, leader: str, view_ts: int) -> None:
        self.leader = leader
        self.leader_ts = view_ts
        self.last_leader_change = self.now
        if self.config.read_leases:
            # Old-view leases die with the view; a freshly elected leader
            # additionally withholds its first grant for one full lease
            # duration so every lease the old leader issued lapses before
            # this leader can execute a conflicting write (see ReadLease).
            self._read_lease.revoke()
            if leader == self.process_id:
                self._lease_hold_until = self.now + self.config.lease_duration
        self.tob.new_leader(leader, view_ts)
        brd = self._brd_instances.get(self.round_number)
        if brd is not None:
            brd.new_leader(leader, view_ts)
        # Re-forward outstanding client transactions to the new leader.
        for transaction in self._forwarded.values():
            self._route_to_leader(transaction)
        if not self.is_leader():
            return
        # Alg. 8: the new leader re-broadcasts what the old leader may have
        # withheld — the current round's bundle if stage 1 already finished,
        # and the previous round's bundle (remote clusters may be one behind).
        state = self._round_state
        if state.bundle is not None:
            self._inter_broadcast(state.bundle)
        if self._previous_bundle is not None:
            self._inter_broadcast(self._previous_bundle)
        # When the old leader never completed local ordering, the engine's
        # own view-change recovery re-proposes: every replica reports its
        # pending instances to us, and a quorum of reports yields either a
        # prepared value or a fresh batch via ``fetch_value``.  (A separate
        # batch-timer re-propose here used to race that recovery and
        # self-equivocate — see the one-proposal-per-view note in the
        # engines' ``propose``.)

    # ------------------------------------------------------------------ #
    # Client transactions
    # ------------------------------------------------------------------ #
    def submit_transaction(self, transaction: Transaction) -> None:
        """Programmatic submission path used by examples and tests."""
        self._on_client_request(transaction.client_id, ClientRequest(transaction=transaction))

    def _route_to_leader(self, transaction: Transaction) -> None:
        if self.is_leader():
            self._enqueue(transaction)
        else:
            self.apl.send(self.leader, ClientRequest(transaction=transaction))

    def _enqueue(self, transaction: Transaction) -> None:
        if transaction.txn_id in self._queued_ids or transaction.txn_id in self._executed_ids:
            return
        self._queued_ids.add(transaction.txn_id)
        self._leader_queue.append(transaction)
        if (
            self.mode == MODE_ACTIVE
            and self.is_leader()
            and self.round_number not in self._proposed_rounds
            and len(self._leader_queue) >= self.config.batch_size
        ):
            self._propose_batch()

    def _on_client_request(self, sender: str, message: ClientRequest) -> None:
        transaction = message.transaction
        local_view = self.view.get(self.cluster_id)
        from_member = local_view is not None and sender in local_view
        if from_member:
            # A peer forwarded a transaction to us because we are (were) the leader.
            self._enqueue(transaction)
            return
        if transaction.is_read and self.config.local_reads:
            self.apl.send(
                transaction.client_id,
                ClientResponse(
                    txn_id=transaction.txn_id,
                    value=self.kv.read(transaction.key),
                    committed_round=self.round_number,
                    leader_hint=self.leader,
                ),
            )
            return
        self._forwarded[transaction.txn_id] = transaction
        self._route_to_leader(transaction)

    # ------------------------------------------------------------------ #
    # Open-loop client batches and read leases
    # ------------------------------------------------------------------ #
    def _on_client_batch(self, sender: str, message: ClientBatchRequest) -> None:
        """Handle one window's worth of operations from an open-loop population.

        Reads are answered immediately when safe to do so — at the leader,
        under a live read lease, or (leases disabled) under the eventual
        ``local_reads`` policy; everything else forwards to the leader as a
        single re-batched envelope.  Write acknowledgements accumulate in
        ``_pending_batch`` and flush once per execution.
        """
        local_view = self.view.get(self.cluster_id)
        from_member = local_view is not None and sender in local_view
        if not from_member:
            self._batch_clients.add(sender)
        is_leader = self.is_leader()
        leases = self.config.read_leases
        lease_ok = leases and self._read_lease.valid(self.now, self.leader_ts)
        serve_reads = is_leader or lease_ok or (
            not leases and (self.config.local_reads or from_member)
        )
        entries: Dict[str, List[Tuple[str, Optional[str]]]] = {}
        forward: List[Transaction] = []
        hits = 0
        misses = 0
        for transaction in message.transactions:
            if transaction.is_read:
                if serve_reads:
                    entries.setdefault(transaction.client_id, []).append(
                        (transaction.txn_id, self.kv.read(transaction.key))
                    )
                    if leases and not from_member:
                        hits += 1
                else:
                    # Lease miss: the read travels to the leader inside the
                    # same forwarded batch as the writes (never stored in
                    # ``_forwarded`` — it is answered without ordering, so
                    # there is nothing to re-forward on a leader change).
                    forward.append(transaction)
                    if leases and not from_member:
                        misses += 1
            elif from_member:
                self._enqueue(transaction)
            else:
                self._forwarded[transaction.txn_id] = transaction
                forward.append(transaction)
        if forward:
            if is_leader:
                for transaction in forward:
                    self._enqueue(transaction)
            else:
                self.apl.send(self.leader, ClientBatchRequest(transactions=tuple(forward)))
        for client_id in sorted(entries):
            self.apl.send(
                client_id,
                ClientBatchResponse(
                    entries=tuple(entries[client_id]),
                    committed_round=self.round_number,
                    leader_hint=self.leader,
                ),
            )
        if hits or misses:
            self.lease_hits += hits
            self.lease_misses += misses
            if self.metrics is not None:
                self.metrics.record_lease_reads(hits, misses)

    def _flush_batch_responses(self) -> None:
        """Send one batched response per open-loop client for this execution."""
        leader_hint = self.leader
        committed_round = self.round_number
        for client_id in sorted(self._pending_batch):
            self.apl.send(
                client_id,
                ClientBatchResponse(
                    entries=tuple(self._pending_batch[client_id]),
                    committed_round=committed_round,
                    leader_hint=leader_hint,
                ),
            )
        self._pending_batch.clear()

    def _arm_lease_tick(self) -> None:
        """Start the resident lease-refresh tick (opt-in, once per replica)."""
        if not self.config.read_leases or self._lease_tick_armed:
            return
        self._lease_tick_armed = True
        self.after(
            self.config.lease_duration / 2.0,
            self._lease_tick,
            label=f"{self.process_id}:lease",
        )

    def _lease_tick(self) -> None:
        if self.mode == MODE_LEFT:
            return
        if (
            self.mode == MODE_ACTIVE
            and self.is_leader()
            and self.now >= self._lease_hold_until
        ):
            self.abeb.broadcast(
                ReadLeaseGrant(
                    cluster_id=self.cluster_id,
                    view_ts=self.leader_ts,
                    granted_at=self.now,
                    duration=self.config.lease_duration,
                )
            )
        self.after(
            self.config.lease_duration / 2.0,
            self._lease_tick,
            label=f"{self.process_id}:lease",
        )

    def _on_lease_grant(self, sender: str, message: ReadLeaseGrant) -> None:
        if message.cluster_id != self.cluster_id:
            return
        if sender != self.leader or message.view_ts != self.leader_ts:
            return  # grant from a leader this replica no longer follows
        self._read_lease.install(message.view_ts, message.granted_at, message.duration)

    # ------------------------------------------------------------------ #
    # Reconfiguration requester side (Alg. 3)
    # ------------------------------------------------------------------ #
    def request_join(self, target_cluster: Optional[int] = None) -> None:
        """Ask to join a cluster (used by freshly created replicas)."""
        if target_cluster is not None:
            self.cluster_id = target_cluster
        self.mode = MODE_JOINING
        self._join_tracker = RequestTracker(lambda: 2 * self.faults(self.cluster_id) + 1)
        self._broadcast_join()
        self._join_retry_timer.start(1.0)

    def _broadcast_join(self) -> None:
        region = self.network.latency_model.region_of(self.process_id)
        message = RequestJoin(
            cluster_id=self.cluster_id, round_number=self.round_number, region=region
        )
        for member in self.members(self.cluster_id):
            self.apl.send(member, message)

    def request_leave(self) -> None:
        """Ask to leave the local cluster."""
        self._leave_tracker = RequestTracker(lambda: 2 * self.local_faults() + 1)
        self.collector.add(leave_request(self.process_id, self.cluster_id))
        message = RequestLeave(cluster_id=self.cluster_id, round_number=self.round_number)
        for member in self.local_members():
            if member != self.process_id:
                self.apl.send(member, message)

    def _retry_join(self) -> None:
        if self.mode != MODE_JOINING:
            return
        if self._join_tracker is not None and self._join_tracker.should_retry():
            self._broadcast_join()
        self._join_retry_timer.start(min(self._join_retry_timer.duration * 2, 16.0))

    def _on_ack(self, sender: str, message: ReconfigAck) -> None:
        if self.mode == MODE_JOINING and self._join_tracker is not None:
            self._join_tracker.record_ack(sender)
        if self._leave_tracker is not None:
            self._leave_tracker.record_ack(sender)

    def _on_curr_state(self, sender: str, message: CurrState) -> None:
        if self.mode != MODE_JOINING:
            return
        key = (message.round_number, tuple(message.members))
        votes = self._currstate_votes.setdefault(key, set())
        votes.add(sender)
        self._currstate_snapshots[key] = message
        threshold = 2 * failure_threshold(len(message.members)) + 1
        if len(votes) < threshold:
            return
        snapshot = self._currstate_snapshots[key]
        self.kv.restore(snapshot.state_snapshot)
        self.view = {cid: set(members) for cid, members in snapshot.system_view.items()}
        self._invalidate_view_caches()
        self.round_number = snapshot.round_number
        self.mode = MODE_ACTIVE
        self.joined_at = self.now
        self._join_retry_timer.stop()
        # Adopt the sending quorum's leader so votes and submissions go to the
        # replica the rest of the cluster actually follows.
        self.leader_ts = snapshot.leader_ts
        self.le.ts = snapshot.leader_ts
        if snapshot.leader:
            self.leader = snapshot.leader
        else:
            self.leader = self.local_members()[self.leader_ts % len(self.local_members())]
        self.tob.leader = self.leader
        self.tob.view_ts = self.leader_ts
        if self.metrics is not None:
            self.metrics.record_join_completed(self.process_id, self.cluster_id, self.now)
        self._arm_lease_tick()
        self._start_round()

    # ------------------------------------------------------------------ #
    # Message dispatch
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> None:
        """Route a delivered envelope to the owning sub-protocol."""
        if self.mode == MODE_LEFT:
            return
        payload = envelope.payload
        payload_type = type(payload)

        entry = self._handler_table.get(payload_type)
        if entry is not None:
            active_only, wants_envelope, handler = entry
            if active_only and self.mode != MODE_ACTIVE:
                return
            handler(sender, envelope if wants_envelope else payload)
            return
        if payload_type is RequestJoin or payload_type is RequestLeave:
            if self.mode == MODE_ACTIVE:
                if self.config.parallel_reconfig:
                    self.collector.on_message(sender, envelope)
                else:
                    self._single_workflow_reconfig(sender, payload)
            return
        self._on_message_fallback(sender, envelope)

    def _on_message_fallback(self, sender: str, envelope: Envelope) -> None:
        """isinstance-based routing for subclassed payload types.

        Mirrors the exact-type table, including its mode gating.
        """
        payload = envelope.payload
        if isinstance(payload, ClientRequest):
            self._on_client_request(sender, payload)
            return
        if isinstance(payload, ClientBatchRequest):
            self._on_client_batch(sender, payload)
            return
        if isinstance(payload, ReconfigAck):
            self._on_ack(sender, payload)
            return
        if isinstance(payload, CurrState):
            self._on_curr_state(sender, payload)
            return
        if isinstance(payload, (RequestJoin, RequestLeave)):
            if self.mode == MODE_ACTIVE:
                if self.config.parallel_reconfig:
                    self.collector.on_message(sender, envelope)
                else:
                    self._single_workflow_reconfig(sender, payload)
            return
        if self.mode != MODE_ACTIVE:
            return
        if isinstance(payload, Inter):
            self._on_inter(sender, payload)
        elif isinstance(payload, ReadLeaseGrant):
            self._on_lease_grant(sender, payload)
        elif isinstance(payload, LocalShare):
            self._on_local_share(sender, payload)
        elif isinstance(payload, (LComplaint, RComplaint, ClusterComplaint)):
            self.rlc.on_message(sender, envelope)
        elif isinstance(payload, ElectionComplaint):
            self.le.on_message(sender, envelope)
        elif isinstance(payload, self.tob.MESSAGE_TYPES):
            self.tob.on_message(sender, envelope)
        elif isinstance(payload, ByzantineReliableDissemination.MESSAGE_TYPES):
            self._dispatch_brd(sender, envelope)

    def _on_brd_timer(self, round_number: int) -> None:
        brd = self._brd_instances.get(round_number)
        if brd is not None:
            brd._on_timeout()

    def _dispatch_brd(self, sender: str, envelope: Envelope) -> None:
        round_number = envelope.payload.round_number
        brd = self._brd_instances.get(round_number)
        if brd is not None:
            brd.on_message(sender, envelope)
        elif round_number > self.round_number:
            self._buffered_brd.setdefault(round_number, []).append((sender, envelope))

    def _single_workflow_reconfig(self, sender: str, payload) -> None:
        """E5.2 baseline: order reconfigurations through the transaction path."""
        if isinstance(payload, RequestJoin):
            kind, region = "join", payload.region
        else:
            kind, region = "leave", ""
        transaction = Transaction(
            txn_id=f"reconfig:{kind}:{sender}",
            client_id=sender,
            origin_replica=self.process_id,
            op=kind,
            key=sender,
            value=region,
            submitted_at=self.now,
            size_bytes=128,
        )
        self._forwarded[transaction.txn_id] = transaction
        self._route_to_leader(transaction)
        self.collector._ack(sender)  # Acknowledge collection as in Alg. 3.


__all__ = ["ByzantineBehavior", "HamavaReplica", "MODE_ACTIVE", "MODE_IDLE", "MODE_JOINING", "MODE_LEFT"]
