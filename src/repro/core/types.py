"""Core value types: transactions, reconfiguration requests, and bundles.

These are the "operations" of the paper: clients submit *transactions*
(key-value reads and writes) and *reconfigurations* (join/leave).  A round's
worth of operations from one cluster travels between clusters as an
:class:`OperationsBundle` together with the certificates that prove the
transactions were ordered by the cluster's consensus and the reconfiguration
set was uniformly disseminated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.crypto import Certificate

_txn_counter = itertools.count()

#: Operation kinds a transaction may carry.
READ = "read"
WRITE = "write"


@dataclass(repr=False, unsafe_hash=True)
class Transaction:
    """A client key-value operation.

    Treated as immutable once created (but not ``frozen=True``: one is
    allocated per client operation, and the frozen-dataclass ``__init__``
    pays an ``object.__setattr__`` per field).  ``unsafe_hash`` keeps the
    field-based hash the frozen version provided.

    Attributes:
        txn_id: Globally unique identifier (client id + sequence number).
        client_id: The submitting client.
        origin_replica: Replica the client submitted the request to; that
            replica issues the response when the transaction executes.
        op: ``"read"`` or ``"write"``.
        key: Key operated on.
        value: Value written (``None`` for reads).
        submitted_at: Virtual time the client issued the request.
        size_bytes: Approximate payload size (the paper uses 1 KB operations).
    """

    txn_id: str
    client_id: str
    origin_replica: str
    op: str
    key: str
    value: Optional[str] = None
    submitted_at: float = 0.0
    size_bytes: int = 1024

    @property
    def is_read(self) -> bool:
        """Whether this is a read-only operation."""
        return self.op == READ

    def __repr__(self) -> str:
        # A transaction's repr is the unit every digest walk is built from
        # (client requests, batch digests, bundle digests), so it is
        # computed once per transaction instead of once per enclosing
        # message.  Same shape as the dataclass-generated repr; the field
        # list is derived from the dataclass so it cannot silently drift.
        cached = self.__dict__.get("_repr_cache")
        if cached is None:
            body = ", ".join(
                f"{name}={getattr(self, name)!r}" for name in _TRANSACTION_FIELDS
            )
            cached = self.__dict__["_repr_cache"] = f"Transaction({body})"
        return cached


#: Transaction field names in declaration order, for the cached __repr__.
_TRANSACTION_FIELDS = tuple(f.name for f in dataclass_fields(Transaction))


def make_transaction(
    client_id: str,
    origin_replica: str,
    op: str,
    key: str,
    value: Optional[str] = None,
    submitted_at: float = 0.0,
    size_bytes: int = 1024,
) -> Transaction:
    """Create a transaction with a fresh globally-unique id."""
    return Transaction(
        txn_id=f"{client_id}:{next(_txn_counter)}",
        client_id=client_id,
        origin_replica=origin_replica,
        op=op,
        key=key,
        value=value,
        submitted_at=submitted_at,
        size_bytes=size_bytes,
    )


@dataclass(frozen=True, order=True)
class ReconfigRequest:
    """A join or leave request for one process and one cluster.

    The request is the unit the collection/dissemination protocol (Alg. 3/4)
    gathers into per-round sets, so it is frozen and orderable.
    """

    kind: str  # "join" or "leave"
    process_id: str
    cluster_id: int
    region: str = ""

    @property
    def is_join(self) -> bool:
        """Whether this is a join request."""
        return self.kind == "join"

    @property
    def is_leave(self) -> bool:
        """Whether this is a leave request."""
        return self.kind == "leave"


def join_request(process_id: str, cluster_id: int, region: str = "") -> ReconfigRequest:
    """Build a join request."""
    return ReconfigRequest(kind="join", process_id=process_id, cluster_id=cluster_id, region=region)


def leave_request(process_id: str, cluster_id: int) -> ReconfigRequest:
    """Build a leave request."""
    return ReconfigRequest(kind="leave", process_id=process_id, cluster_id=cluster_id)


@dataclass
class OperationsBundle:
    """Everything a cluster decided in one round, plus the proofs.

    A bundle is *sealed* once stage 1 constructs it: the digest/size/
    validation caches (here and in ``HamavaReplica._bundle_valid``) rely on
    the contents never mutating afterwards, so treat instances as
    write-once even though the dataclass is not frozen.

    Attributes:
        cluster_id: The producing cluster.
        round_number: The round the bundle belongs to.
        transactions: The ordered transaction batch.
        reconfigs: The uniformly disseminated reconfiguration set.
        txn_certificate: ``2f+1`` commit signatures over the batch digest
            (produced by the local ordering engine).
        recs_collection_certificate: BRD's Σ — signatures showing the set was
            collected from a quorum of replicas.
        recs_ready_certificate: BRD's Σ' — ``2f+1`` Ready signatures showing
            every correct replica will deliver the same set.
    """

    cluster_id: int
    round_number: int
    transactions: List[Transaction] = field(default_factory=list)
    reconfigs: Tuple[ReconfigRequest, ...] = ()
    txn_certificate: Optional[Certificate] = None
    recs_collection_certificate: Optional[Certificate] = None
    recs_ready_certificate: Optional[Certificate] = None

    def operation_count(self) -> int:
        """Number of operations (transactions + reconfigurations)."""
        return len(self.transactions) + len(self.reconfigs)

    def size_bytes(self) -> int:
        """Approximate serialized size of the bundle.

        Cached per instance: a bundle is sealed when stage 1 finishes and is
        then wrapped by one ``Inter`` per remote target plus one
        ``LocalShare`` per receiving replica, each of which used to re-walk
        the transactions and certificates.
        """
        cache = self.__dict__
        size = cache.get("_size_cache")
        if size is None:
            txn_bytes = sum(t.size_bytes for t in self.transactions)
            cert_bytes = 0
            for cert in (
                self.txn_certificate,
                self.recs_collection_certificate,
                self.recs_ready_certificate,
            ):
                if cert is not None:
                    cert_bytes += 96 * len(cert)
            size = 256 + txn_bytes + 128 * len(self.reconfigs) + cert_bytes
            cache["_size_cache"] = size
        return size

    def digest(self) -> str:
        """Deterministic digest of the bundle contents, cached per instance.

        Used by the digests of the ``Inter``/``LocalShare`` messages that
        wrap this bundle, so the certificate/transaction walk happens once
        per bundle rather than once per wrapping message instance.  The
        field list is derived from the dataclass so a future field cannot
        silently fall out of the digest.
        """
        cache = self.__dict__
        digest = cache.get("_digest_cache")
        if digest is None:
            body = ", ".join(
                f"{name}={getattr(self, name)!r}" for name in _BUNDLE_FIELDS
            )
            digest = cache["_digest_cache"] = f"OperationsBundle({body})"
        return digest


#: OperationsBundle field names in declaration order, for the cached digest.
_BUNDLE_FIELDS = tuple(f.name for f in dataclass_fields(OperationsBundle))


def merge_reconfigs(sets: Iterable[Iterable[ReconfigRequest]]) -> Tuple[ReconfigRequest, ...]:
    """Union several reconfiguration sets into a canonical sorted tuple."""
    merged = set()
    for requests in sets:
        merged.update(requests)
    return tuple(sorted(merged))


def cluster_order(operations: Dict[int, OperationsBundle]) -> List[int]:
    """The predefined cluster order used by stage 3 (ascending cluster id)."""
    return sorted(operations)


__all__ = [
    "OperationsBundle",
    "READ",
    "ReconfigRequest",
    "Transaction",
    "WRITE",
    "cluster_order",
    "join_request",
    "leave_request",
    "make_transaction",
    "merge_reconfigs",
]
