"""Byzantine Reliable Dissemination (paper Alg. 5/6).

BRD collects one message (a set of reconfiguration requests) from every
replica of a cluster, lets the leader aggregate a quorum of them, and then
reliably disseminates the aggregated set through Echo/Ready phases so that

* the delivered set provably contains the submissions of a quorum
  (*Integrity* — a Byzantine leader cannot censor a request stored at a
  quorum),
* no two correct replicas deliver different sets (*Uniformity*), even when
  the leader changes mid-dissemination (new leaders adopt the highest-
  timestamped ``valid`` set reported by a quorum), and
* every correct replica eventually delivers (*Termination*), because a stuck
  leader is complained about and replaced.

Delivery hands back two proofs: Σ (the collection proof — who submitted
what) and Σ' (the Ready certificate — ``2f+1`` signatures over the delivered
set), which Hamava ships to remote clusters as evidence that the
reconfiguration set is the cluster's uniform decision for the round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.messages import BrdAgg, BrdEcho, BrdReady, BrdSubmit, BrdValid
from repro.core.types import ReconfigRequest
from repro.net.crypto import Certificate, Signature
from repro.net.links import AuthenticatedBestEffortBroadcast, AuthenticatedPerfectLink
from repro.net.message import Envelope, payload_digest
from repro.net.network import Network
from repro.sim.simulator import Simulator


def canonical_recs(recs) -> Tuple[ReconfigRequest, ...]:
    """Canonical (sorted, de-duplicated) form of a reconfiguration set."""
    if isinstance(recs, tuple) and not recs:
        return ()  # the overwhelmingly common case: no reconfigs this round
    return tuple(sorted(set(recs)))


def submit_digest(cluster_id: int, round_number: int, recs) -> str:
    """Digest a replica signs when submitting its collected set."""
    return f"brd-submit|c{cluster_id}|r{round_number}|{payload_digest(canonical_recs(recs))}"


def echo_digest(cluster_id: int, round_number: int, recs) -> str:
    """Digest echo votes sign."""
    return f"brd-echo|c{cluster_id}|r{round_number}|{payload_digest(canonical_recs(recs))}"


def ready_digest(cluster_id: int, round_number: int, recs) -> str:
    """Digest ready votes sign; this is the certificate remote clusters check."""
    return f"brd-ready|c{cluster_id}|r{round_number}|{payload_digest(canonical_recs(recs))}"


@dataclass(frozen=True)
class CollectionEntry:
    """One replica's signed submission inside a collection proof."""

    sender: str
    recs: Tuple[ReconfigRequest, ...]
    signature: Signature


@dataclass
class CollectionProof:
    """Σ: the signed submissions the leader aggregated (quorum of them)."""

    cluster_id: int
    round_number: int
    entries: Tuple[CollectionEntry, ...] = ()

    def senders(self) -> set:
        """Distinct submitting replicas."""
        return {entry.sender for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class _ValidSet:
    """A locally stored "valid" set, forwarded to new leaders on view change."""

    recs: Tuple[ReconfigRequest, ...]
    certificate: Certificate
    kind: str  # "echo" or "ready"
    view_ts: int


class ByzantineReliableDissemination:
    """One BRD instance (one cluster, one round) at one replica.

    Args:
        owner: Replica id this instance runs at.
        cluster_id: Local cluster id.
        round_number: The round this instance disseminates for.
        members_fn: Callable returning current cluster membership as a
            sorted tuple (the ``members_fn`` contract).
        faults_fn: Callable returning the current failure threshold ``f``.
        network: Simulated network.
        simulator: Simulation kernel (for the delivery timer).
        leader: Current cluster leader when the instance is created.
        view_ts: Leader timestamp when the instance is created.
        timeout: Seconds to wait for delivery before complaining.
        on_deliver: ``(recs, collection_proof, ready_certificate) -> None``.
        on_complain: ``(leader_id) -> None``.
    """

    MESSAGE_TYPES = (BrdSubmit, BrdAgg, BrdEcho, BrdReady, BrdValid)

    def __init__(
        self,
        owner: str,
        cluster_id: int,
        round_number: int,
        members_fn: Callable[[], List[str]],
        faults_fn: Callable[[], int],
        network: Network,
        simulator: Simulator,
        leader: str,
        view_ts: int,
        timeout: float = 20.0,
        on_deliver: Optional[Callable] = None,
        on_complain: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.owner = owner
        self.cluster_id = cluster_id
        self.round_number = round_number
        self.members_fn = members_fn
        self.faults_fn = faults_fn
        self.network = network
        self.simulator = simulator
        self.leader = leader
        self.view_ts = view_ts
        self.timeout = timeout
        self.on_deliver = on_deliver or (lambda recs, proof, cert: None)
        self.on_complain = on_complain or (lambda leader: None)
        self.apl = AuthenticatedPerfectLink(owner, network)
        self.abeb = AuthenticatedBestEffortBroadcast(owner, network, members_fn)

        # Replica-side state (Alg. 5 vars).
        self.my_recs: Optional[Tuple[ReconfigRequest, ...]] = None
        self.echoed = False
        self.readied = False
        self.delivered = False
        self.valid: Optional[_ValidSet] = None

        # Leader-side state.
        self._collected: Dict[str, CollectionEntry] = {}
        self._quorum_senders: set = set()
        self.high_valid: Optional[_ValidSet] = None
        self._aggregated_view: Optional[int] = None

        # Vote tracking keyed by the recs digest.
        self._echo_certs: Dict[str, Certificate] = {}
        self._ready_certs: Dict[str, Certificate] = {}
        self._agg_proofs: Dict[str, CollectionProof] = {}

        #: Per-instance memo of the submit/echo/ready digest strings, keyed
        #: by (kind, canonical recs).  Every received vote used to rebuild
        #: the same f-string (and re-walk the recs digest) to compare
        #: against the signature; one instance sees ~2n of each phase, and
        #: the recs tuple is almost always empty.
        self._digest_memo: Dict[Tuple[str, Tuple[ReconfigRequest, ...]], str] = {}

        self._timer = simulator.timer(
            timeout, self._on_timeout, name=f"{owner}:brd:{round_number}"
        )

    def _phase_digest(self, kind: str, recs: Tuple[ReconfigRequest, ...]) -> str:
        """Memoised ``{submit,echo,ready}_digest`` for canonical ``recs``."""
        memo = self._digest_memo
        key = (kind, recs)
        digest = memo.get(key)
        if digest is None:
            digest = memo[key] = (
                f"brd-{kind}|c{self.cluster_id}|r{self.round_number}|{payload_digest(recs)}"
            )
        return digest

    # ------------------------------------------------------------------ #
    # Membership helpers
    # ------------------------------------------------------------------ #
    def members(self) -> Sequence[str]:
        """Current cluster membership (a sorted tuple, per the contract).

        No defensive re-sort: BRD only uses this for membership and quorum
        checks (order-insensitive), and it runs once per echo/ready message.
        """
        return self.members_fn()

    def quorum(self) -> int:
        """Quorum size ``2f + 1``."""
        return 2 * self.faults_fn() + 1

    @property
    def registry(self):
        """The shared key registry."""
        return self.network.registry

    def is_leader(self) -> bool:
        """Whether this replica is the current BRD leader."""
        return self.owner == self.leader

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def broadcast(self, recs) -> None:
        """Submit this replica's collected reconfiguration set (Alg. 5 l.13)."""
        self.my_recs = canonical_recs(recs)
        signature = self.registry.sign(
            self.owner, self._phase_digest("submit", self.my_recs)
        )
        self.apl.send(
            self.leader,
            BrdSubmit(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=self.my_recs,
                signature=signature,
            ),
        )
        self._timer.start(self.timeout)

    def new_leader(self, leader: str, view_ts: int) -> None:
        """Install a new leader and hand it this replica's state (Alg. 6 l.40)."""
        self.leader = leader
        self.view_ts = view_ts
        self.echoed = False
        self.readied = False
        self.high_valid = None
        self._collected = {}
        self._quorum_senders = set()
        self._aggregated_view = None
        if self.delivered:
            return
        self._timer.start(self.timeout)
        if self.valid is not None:
            self.apl.send(
                self.leader,
                BrdValid(
                    cluster_id=self.cluster_id,
                    round_number=self.round_number,
                    view_ts=self.view_ts,
                    recs=self.valid.recs,
                    certificate=self.valid.certificate,
                    certificate_kind=self.valid.kind,
                    valid_ts=self.valid.view_ts,
                ),
            )
        elif self.my_recs is not None:
            signature = self.registry.sign(
                self.owner, self._phase_digest("submit", self.my_recs)
            )
            self.apl.send(
                self.leader,
                BrdSubmit(
                    cluster_id=self.cluster_id,
                    round_number=self.round_number,
                    view_ts=self.view_ts,
                    recs=self.my_recs,
                    signature=signature,
                ),
            )

    def stop(self) -> None:
        """Stop the delivery timer (used when a round is torn down)."""
        self._timer.stop()

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        """Consume a BRD message for this cluster and round."""
        payload = envelope.payload
        if not isinstance(payload, self.MESSAGE_TYPES):
            return False
        if payload.cluster_id != self.cluster_id or payload.round_number != self.round_number:
            return False
        if isinstance(payload, BrdSubmit):
            self._on_submit(sender, payload)
        elif isinstance(payload, BrdAgg):
            self._on_agg(sender, payload)
        elif isinstance(payload, BrdEcho):
            self._on_echo(sender, payload)
        elif isinstance(payload, BrdReady):
            self._on_ready(sender, payload)
        elif isinstance(payload, BrdValid):
            self._on_valid(sender, payload)
        return True

    # -- leader side ------------------------------------------------------ #
    def _on_submit(self, sender: str, message: BrdSubmit) -> None:
        if not self.is_leader() or message.view_ts != self.view_ts:
            return
        if sender not in self.members():
            return
        recs = canonical_recs(message.recs)
        expected = self._phase_digest("submit", recs)
        if message.signature is None or message.signature.digest != expected:
            return
        if message.signature.signer != sender or not self.registry.verify(message.signature):
            return
        self._collected[sender] = CollectionEntry(sender=sender, recs=recs, signature=message.signature)
        self._quorum_senders.add(sender)
        self._maybe_aggregate()

    def _on_valid(self, sender: str, message: BrdValid) -> None:
        if not self.is_leader():
            return
        if sender not in self.members():
            return
        recs = canonical_recs(message.recs)
        if not self._attestation_valid(recs, message.certificate, message.certificate_kind):
            return
        if self.high_valid is None or message.valid_ts > self.high_valid.view_ts:
            self.high_valid = _ValidSet(
                recs=recs,
                certificate=message.certificate,
                kind=message.certificate_kind,
                view_ts=message.valid_ts,
            )
        self._quorum_senders.add(sender)
        self._maybe_aggregate()

    def _maybe_aggregate(self) -> None:
        if not self.is_leader():
            return
        if len(self._quorum_senders) < self.quorum():
            return
        if self._aggregated_view == self.view_ts:
            return
        self._aggregated_view = self.view_ts
        if self.high_valid is not None:
            message = BrdAgg(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=self.high_valid.recs,
                collection_certificate=self.high_valid.certificate,
                attestation_kind=self.high_valid.kind,
            )
            self.abeb.broadcast(message)
            return
        union: set = set()
        for entry in self._collected.values():
            union.update(entry.recs)
        aggregated = canonical_recs(union)
        proof = CollectionProof(
            cluster_id=self.cluster_id,
            round_number=self.round_number,
            entries=tuple(self._collected.values()),
        )
        self._agg_proofs[payload_digest(aggregated)] = proof
        message = BrdAgg(
            cluster_id=self.cluster_id,
            round_number=self.round_number,
            view_ts=self.view_ts,
            recs=aggregated,
            collection_certificate=proof,  # type: ignore[arg-type]
            attestation_kind="collection",
        )
        self.abeb.broadcast(message)

    # -- replica side ------------------------------------------------------ #
    def _on_agg(self, sender: str, message: BrdAgg) -> None:
        if sender != self.leader or message.view_ts != self.view_ts or self.echoed:
            return
        recs = canonical_recs(message.recs)
        attestation = message.collection_certificate
        if message.attestation_kind == "collection":
            if not isinstance(attestation, CollectionProof):
                return
            if not self.collection_valid(attestation, recs):
                return
            self._agg_proofs[payload_digest(recs)] = attestation
        else:
            if not self._attestation_valid(recs, attestation, message.attestation_kind):
                return
        self.echoed = True
        digest = self._phase_digest("echo", recs)
        self.abeb.broadcast(
            BrdEcho(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=recs,
                echo_signature=self.registry.sign(self.owner, digest),
            )
        )

    def _on_echo(self, sender: str, message: BrdEcho) -> None:
        recs = canonical_recs(message.recs)
        digest = self._phase_digest("echo", recs)
        signature = message.echo_signature
        if signature is None or signature.digest != digest or signature.signer != sender:
            return
        if sender not in self.members() or not self.registry.verify(signature):
            return
        cert = self._echo_certs.setdefault(payload_digest(recs), Certificate(digest, kind="echo"))
        cert.add(signature)
        if len(cert) >= self.quorum() and not self.readied:
            self._send_ready(recs, cert, kind="echo")

    def _on_ready(self, sender: str, message: BrdReady) -> None:
        recs = canonical_recs(message.recs)
        digest = self._phase_digest("ready", recs)
        signature = message.ready_signature
        if signature is None or signature.digest != digest or signature.signer != sender:
            return
        if sender not in self.members() or not self.registry.verify(signature):
            return
        key = payload_digest(recs)
        cert = self._ready_certs.setdefault(key, Certificate(digest, kind="ready"))
        cert.add(signature)
        faults = self.faults_fn()
        if len(cert) >= faults + 1 and not self.readied:
            self._send_ready(recs, cert, kind="ready")
        if len(cert) >= self.quorum() and not self.delivered:
            self.delivered = True
            self._timer.stop()
            proof = self._agg_proofs.get(key)
            self.on_deliver(recs, proof, cert.copy())

    def _send_ready(self, recs: Tuple[ReconfigRequest, ...], certificate: Certificate, kind: str) -> None:
        self.readied = True
        self.valid = _ValidSet(
            recs=recs, certificate=certificate.copy(), kind=kind, view_ts=self.view_ts
        )
        digest = self._phase_digest("ready", recs)
        self.abeb.broadcast(
            BrdReady(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=recs,
                ready_signature=self.registry.sign(self.owner, digest),
            )
        )

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def collection_valid(self, proof: CollectionProof, aggregated: Tuple[ReconfigRequest, ...]) -> bool:
        """Check Σ: a quorum of distinct, valid submissions whose union is M."""
        members = set(self.members())
        senders: set = set()
        union: set = set()
        for entry in proof.entries:
            if entry.sender not in members or entry.sender in senders:
                continue
            expected = self._phase_digest("submit", canonical_recs(entry.recs))
            if entry.signature.digest != expected or entry.signature.signer != entry.sender:
                continue
            if not self.registry.verify(entry.signature):
                continue
            senders.add(entry.sender)
            union.update(entry.recs)
        if len(senders) < self.quorum():
            return False
        return canonical_recs(union) == canonical_recs(aggregated)

    def _attestation_valid(self, recs, certificate, kind: str) -> bool:
        if not isinstance(certificate, Certificate):
            return False
        members = self.members()
        faults = self.faults_fn()
        if kind == "echo":
            digest = self._phase_digest("echo", canonical_recs(recs))
            return self.registry.certificate_valid(certificate, members, 2 * faults + 1, digest=digest)
        if kind == "ready":
            digest = self._phase_digest("ready", canonical_recs(recs))
            return self.registry.certificate_valid(certificate, members, faults + 1, digest=digest)
        return False

    # ------------------------------------------------------------------ #
    # Timer
    # ------------------------------------------------------------------ #
    def _on_timeout(self) -> None:
        if not self.delivered:
            self.on_complain(self.leader)
            self._timer.start(self.timeout)


__all__ = [
    "ByzantineReliableDissemination",
    "CollectionEntry",
    "CollectionProof",
    "canonical_recs",
    "echo_digest",
    "ready_digest",
    "submit_digest",
]
