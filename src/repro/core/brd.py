"""Byzantine Reliable Dissemination (paper Alg. 5/6).

BRD collects one message (a set of reconfiguration requests) from every
replica of a cluster, lets the leader aggregate a quorum of them, and then
reliably disseminates the aggregated set through Echo/Ready phases so that

* the delivered set provably contains the submissions of a quorum
  (*Integrity* — a Byzantine leader cannot censor a request stored at a
  quorum),
* no two correct replicas deliver different sets (*Uniformity*), even when
  the leader changes mid-dissemination (new leaders adopt the highest-
  timestamped ``valid`` set reported by a quorum), and
* every correct replica eventually delivers (*Termination*), because a stuck
  leader is complained about and replaced.

Delivery hands back two proofs: Σ (the collection proof — who submitted
what) and Σ' (the Ready certificate — ``2f+1`` signatures over the delivered
set), which Hamava ships to remote clusters as evidence that the
reconfiguration set is the cluster's uniform decision for the round.

Quiet rounds (protocol deviation, see README "Protocol deviations")
-------------------------------------------------------------------
In steady state no reconfiguration is pending, so every round disseminates
the *empty* set through the full ``submit / agg / echo / ready`` exchange —
``2n² + 2n`` messages per round to agree on nothing.  When the leader's
aggregate is **provably empty-and-unanimous** — the collection proof carries
``2f+1`` valid signed *empty* submissions, so the union is empty by
construction — replicas skip the Echo phase entirely: they consume their
one echo/ready slot for the view, sign the Ready digest over the empty set,
and send that signature point-to-point to the leader.  The leader assembles
the ``2f+1`` Ready certificate and broadcasts a single
:class:`~repro.core.messages.BrdQuietDeliver` marker; replicas deliver the
empty set on validating it.  A quiet round therefore exchanges four linear
legs — submit, aggregate, Ready-to-leader, deliver marker, ``4n`` messages
counting loop-backs — instead of ``2n² + 2n``; and since the submissions
ride the consensus engine's commit votes (:meth:`make_marker`) and the
aggregate rides the HotStuff decide broadcast
(:meth:`take_quiet_proof`), the steady-state *wire* cost is just the two
post-decision legs, ``2(n-1)`` messages.  Non-empty rounds (and all
view-change recovery paths) run the full protocol unchanged.

Why an empty-and-unanimous aggregate needs no Echo quorum:  Echo exists so
that no two correct replicas *ready* different sets in the same view — a
correct replica echoes at most once, so two echo quorums for different sets
would intersect in a correct double-echoer.  On the quiet path the Ready
signature over the empty set *is* that single slot: a correct replica signs
quiet-Ready(∅) or echoes some non-empty set, never both (``echoed`` and
``readied`` are set before the signature leaves).  Hence a ``2f+1``
quiet-Ready certificate for ∅ and a ``2f+1`` Echo (and therefore Ready)
quorum for a non-empty set cannot both form: they would intersect in
``f+1`` replicas, at least one correct, which spent its one slot twice.
Uniformity is preserved, and the delivered Σ' is a standard Ready
certificate — remote-cluster verification is byte-for-byte the full path's.

What a Byzantine leader can and cannot forge about emptiness:  It cannot
fabricate the proof — each entry is a signature over the submit digest of
the empty set, and signatures are unforgeable.  If a request is stored at a
quorum (the requester's Alg. 3 retry loop guarantees this eventually), then
every collection quorum intersects the storing quorum in ``f+1`` correct
replicas whose submissions are non-empty, leaving at most ``2f`` possible
empty signers — short of the ``2f+1`` the proof needs.  So quiet rounds
cannot censor a quorum-stored request.  What the leader *can* do is omit a
request held by fewer than ``f+1`` correct replicas for a round — exactly
the censorship the full path already permits (the leader aggregates only a
quorum of submissions), so the adversary gains no new power.  A leader that
withholds the deliver marker only delays: the delivery timer fires, the
leader is replaced, and the new leader re-runs the round from the reported
valid sets (a quiet acceptor hands over the empty-unanimous proof itself,
kind ``"collection"``).

How one pending request forces the full path for everyone:  A replica with
a non-empty pending set submits it, so an honest leader's aggregate (the
union) is non-empty and the round takes the full Echo/Ready path at every
replica.  A Byzantine leader that instead aggregates ``2f+1`` empty
submissions behind the replica's back is the censorship case above — bounded
by quorum storage, and temporary by the retry loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.messages import BrdAgg, BrdEcho, BrdQuietDeliver, BrdReady, BrdSubmit, BrdValid
from repro.core.types import ReconfigRequest
from repro.net.crypto import Certificate, Signature
from repro.net.links import AuthenticatedBestEffortBroadcast, AuthenticatedPerfectLink
from repro.net.message import Envelope, payload_digest
from repro.net.network import Network
from repro.sim.simulator import Simulator


def canonical_recs(recs) -> Tuple[ReconfigRequest, ...]:
    """Canonical (sorted, de-duplicated) form of a reconfiguration set."""
    if isinstance(recs, tuple) and not recs:
        return ()  # the overwhelmingly common case: no reconfigs this round
    return tuple(sorted(set(recs)))


#: Integer phase kinds used as digest-memo keys (ints hash to themselves;
#: the old string kinds re-hashed per lookup).
_SUBMIT, _ECHO, _READY = 0, 1, 2
_KIND_NAMES = ("submit", "echo", "ready")

#: Interned phase digests for the *empty* set, keyed by the packed int
#: ``(round << 34) | (cluster << 2) | kind``.  In steady state every
#: replica of a cluster rebuilds the same three f-strings every round (and
#: re-walks the empty payload digest); the intern table builds each string
#: once per process and shares it across replicas — and across the
#: signature/token memos downstream, which key on the digest string's hash.
_EMPTY_PHASE_DIGESTS: Dict[int, str] = {}  # detlint: disable=DET004 -- pure digest interning; the value for a key is the same in every process and shard layout

_EMPTY_PAYLOAD_DIGEST = payload_digest(())


def _empty_phase_digest(kind: int, cluster_id: int, round_number: int) -> str:
    key = (round_number << 34) | (cluster_id << 2) | kind
    digest = _EMPTY_PHASE_DIGESTS.get(key)
    if digest is None:
        digest = _EMPTY_PHASE_DIGESTS[key] = (
            f"brd-{_KIND_NAMES[kind]}|c{cluster_id}|r{round_number}|{_EMPTY_PAYLOAD_DIGEST}"
        )
    return digest


def _phase_digest_for(kind: int, cluster_id: int, round_number: int, recs) -> str:
    recs = canonical_recs(recs)
    if not recs:
        return _empty_phase_digest(kind, cluster_id, round_number)
    return f"brd-{_KIND_NAMES[kind]}|c{cluster_id}|r{round_number}|{payload_digest(recs)}"


def submit_digest(cluster_id: int, round_number: int, recs) -> str:
    """Digest a replica signs when submitting its collected set."""
    return _phase_digest_for(_SUBMIT, cluster_id, round_number, recs)


def echo_digest(cluster_id: int, round_number: int, recs) -> str:
    """Digest echo votes sign."""
    return _phase_digest_for(_ECHO, cluster_id, round_number, recs)


def ready_digest(cluster_id: int, round_number: int, recs) -> str:
    """Digest ready votes sign; this is the certificate remote clusters check."""
    return _phase_digest_for(_READY, cluster_id, round_number, recs)


@dataclass(frozen=True)
class CollectionEntry:
    """One replica's signed submission inside a collection proof."""

    sender: str
    recs: Tuple[ReconfigRequest, ...]
    signature: Signature


@dataclass
class CollectionProof:
    """Σ: the signed submissions the leader aggregated (quorum of them)."""

    cluster_id: int
    round_number: int
    entries: Tuple[CollectionEntry, ...] = ()

    def senders(self) -> set:
        """Distinct submitting replicas."""
        return {entry.sender for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class _ValidSet:
    """A locally stored "valid" set, forwarded to new leaders on view change."""

    recs: Tuple[ReconfigRequest, ...]
    certificate: Certificate
    kind: str  # "echo" or "ready"
    view_ts: int


class ByzantineReliableDissemination:
    """One BRD instance (one cluster, one round) at one replica.

    Args:
        owner: Replica id this instance runs at.
        cluster_id: Local cluster id.
        round_number: The round this instance disseminates for.
        members_fn: Callable returning current cluster membership as a
            sorted tuple (the ``members_fn`` contract).
        faults_fn: Callable returning the current failure threshold ``f``.
        network: Simulated network.
        simulator: Simulation kernel (for the delivery timer).
        leader: Current cluster leader when the instance is created.
        view_ts: Leader timestamp when the instance is created.
        timeout: Seconds to wait for delivery before complaining.
        on_deliver: ``(recs, collection_proof, ready_certificate) -> None``.
        on_complain: ``(leader_id) -> None``.
        timer_pool: Optional :class:`~repro.sim.simulator.DeadlinePool`
            shared by the owning replica's BRD instances (keyed by round);
            when absent the instance owns a plain :class:`Timer`.  The pool
            owner must route expirations back to :meth:`_on_timeout`.
    """

    MESSAGE_TYPES = (BrdSubmit, BrdAgg, BrdEcho, BrdReady, BrdQuietDeliver, BrdValid)

    def __init__(
        self,
        owner: str,
        cluster_id: int,
        round_number: int,
        members_fn: Callable[[], List[str]],
        faults_fn: Callable[[], int],
        network: Network,
        simulator: Simulator,
        leader: str,
        view_ts: int,
        timeout: float = 20.0,
        on_deliver: Optional[Callable] = None,
        on_complain: Optional[Callable[[str], None]] = None,
        timer_pool=None,
    ) -> None:
        self.owner = owner
        self.cluster_id = cluster_id
        self.round_number = round_number
        self.members_fn = members_fn
        self.faults_fn = faults_fn
        self.network = network
        self.simulator = simulator
        self.leader = leader
        self.view_ts = view_ts
        self.timeout = timeout
        self.on_deliver = on_deliver or (lambda recs, proof, cert: None)
        self.on_complain = on_complain or (lambda leader: None)
        self.apl = AuthenticatedPerfectLink(owner, network)
        self.abeb = AuthenticatedBestEffortBroadcast(owner, network, members_fn)

        # Replica-side state (Alg. 5 vars).
        self.my_recs: Optional[Tuple[ReconfigRequest, ...]] = None
        self.echoed = False
        self.readied = False
        self.delivered = False
        self.valid: Optional[_ValidSet] = None
        #: Whether this view's accepted aggregate took the quiet path (an
        #: empty-and-unanimous collection proof; see the module docstring).
        self.quiet = False
        self._quiet_deliver_sent = False
        #: (view, recs) of the submission piggybacked on this replica's
        #: commit-phase vote (``make_marker``), so ``broadcast`` at decision
        #: time skips the redundant ``BrdSubmit``.
        self._marker_view: Optional[int] = None
        self._marker_recs: Optional[Tuple[ReconfigRequest, ...]] = None

        # Leader-side state.
        self._collected: Dict[str, CollectionEntry] = {}
        self._quorum_senders: set = set()
        self.high_valid: Optional[_ValidSet] = None
        self._aggregated_view: Optional[int] = None

        # Vote tracking keyed by the recs digest.
        self._echo_certs: Dict[str, Certificate] = {}
        self._ready_certs: Dict[str, Certificate] = {}
        self._agg_proofs: Dict[str, CollectionProof] = {}

        #: Per-instance memo of *non-empty* phase digests, keyed by
        #: ``(kind int, canonical recs)`` — every received vote used to
        #: rebuild the same f-string (and re-walk the recs digest) to
        #: compare against the signature.  The empty-set digests (the
        #: overwhelming majority) come from the module-level intern table
        #: instead, shared across replicas and rounds.
        self._digest_memo: Dict[Tuple[int, Tuple[ReconfigRequest, ...]], str] = {}

        if timer_pool is not None:
            self._timer = timer_pool.timer(round_number, timeout)
        else:
            self._timer = simulator.timer(
                timeout, self._on_timeout, name=f"{owner}:brd:{round_number}"
            )

    def _phase_digest(self, kind: int, recs: Tuple[ReconfigRequest, ...]) -> str:
        """Memoised ``{submit,echo,ready}_digest`` for canonical ``recs``."""
        if not recs:
            return _empty_phase_digest(kind, self.cluster_id, self.round_number)
        memo = self._digest_memo
        key = (kind, recs)
        digest = memo.get(key)
        if digest is None:
            digest = memo[key] = (
                f"brd-{_KIND_NAMES[kind]}|c{self.cluster_id}|r{self.round_number}|{payload_digest(recs)}"
            )
        return digest

    # ------------------------------------------------------------------ #
    # Membership helpers
    # ------------------------------------------------------------------ #
    def members(self) -> Sequence[str]:
        """Current cluster membership (a sorted tuple, per the contract).

        No defensive re-sort: BRD only uses this for membership and quorum
        checks (order-insensitive), and it runs once per echo/ready message.
        """
        return self.members_fn()

    def quorum(self) -> int:
        """Quorum size ``2f + 1``."""
        return 2 * self.faults_fn() + 1

    @property
    def registry(self):
        """The shared key registry."""
        return self.network.registry

    def is_leader(self) -> bool:
        """Whether this replica is the current BRD leader."""
        return self.owner == self.leader

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def broadcast(self, recs) -> None:
        """Submit this replica's collected reconfiguration set (Alg. 5 l.13).

        When the same set already rode this view's commit-phase vote as a
        round marker (:meth:`make_marker`), only the delivery timer is
        armed — the leader holds the signed submission already.
        """
        self.my_recs = canonical_recs(recs)
        if self._marker_view == self.view_ts and self._marker_recs == self.my_recs:
            self._timer.start(self.timeout)
            return
        signature = self.registry.sign(
            self.owner, self._phase_digest(_SUBMIT, self.my_recs)
        )
        self.apl.send(
            self.leader,
            BrdSubmit(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=self.my_recs,
                signature=signature,
            ),
        )
        self._timer.start(self.timeout)

    # -- consensus piggyback (quiet rounds; see the module docstring) ---- #
    def make_marker(self, recs) -> Tuple[int, Tuple[ReconfigRequest, ...], Signature]:
        """Early submission riding this replica's commit-phase vote.

        Semantically identical to a :class:`BrdSubmit` — the signature
        covers the same submit digest — just snapshotted at commit-vote
        time instead of decision time.  A request arriving in between is
        re-submitted next round (the collector keeps pending requests until
        they execute), so nothing is lost.
        """
        recs = canonical_recs(recs)
        self.my_recs = recs
        self._marker_view = self.view_ts
        self._marker_recs = recs
        signature = self.registry.sign(self.owner, self._phase_digest(_SUBMIT, recs))
        return (self.view_ts, recs, signature)

    def on_marker(self, sender: str, marker) -> None:
        """Leader-side ingestion of a piggybacked submission.

        Validation mirrors ``_on_submit``; aggregation is deferred so the
        quiet proof can ride the decide broadcast (``take_quiet_proof``) and
        mixed rounds aggregate at decision (``flush_aggregate``).
        """
        if not self.is_leader():
            return
        try:
            view_ts, recs, signature = marker
        except (TypeError, ValueError):
            return
        if view_ts != self.view_ts or sender not in self.members():
            return
        recs = canonical_recs(recs)
        expected = self._phase_digest(_SUBMIT, recs)
        if signature is None or signature.digest != expected:
            return
        if signature.signer != sender or not self.registry.verify(signature):
            return
        self._collected[sender] = CollectionEntry(sender=sender, recs=recs, signature=signature)
        self._quorum_senders.add(sender)

    def take_quiet_proof(self) -> Optional[CollectionProof]:
        """The empty-unanimity proof for the decide broadcast, if one exists.

        Returns a collection proof — and marks the view aggregated — only
        when a quorum of submissions is in hand and every one of them is
        empty; any pending request, or an adopted valid set from a previous
        view, falls through to the full path (``flush_aggregate``).
        """
        if not self.is_leader() or self._aggregated_view == self.view_ts:
            return None
        if self.high_valid is not None:
            return None
        if len(self._quorum_senders) < self.quorum():
            return None
        entries = tuple(self._collected.values())
        if len(entries) < self.quorum():
            return None
        if any(entry.recs for entry in entries):
            return None
        self._aggregated_view = self.view_ts
        proof = CollectionProof(
            cluster_id=self.cluster_id, round_number=self.round_number, entries=entries
        )
        self._agg_proofs[payload_digest(())] = proof
        return proof

    def on_quiet_aggregate(self, sender: str, proof) -> None:
        """Accept a quiet proof that rode the leader's decide broadcast."""
        if sender != self.leader or self.echoed:
            return
        if not isinstance(proof, CollectionProof):
            return
        if not self.collection_valid(proof, ()):
            return
        self._agg_proofs[payload_digest(())] = proof
        self._go_quiet(proof)

    def flush_aggregate(self) -> None:
        """Aggregate now if a quorum of submissions is already collected.

        The replica calls this at decision time: with piggybacked markers
        the leader usually holds a full quorum before any ``BrdSubmit``
        arrives, and nothing else would trigger aggregation when every
        submission rode a marker.
        """
        self._maybe_aggregate()

    def new_leader(self, leader: str, view_ts: int) -> None:
        """Install a new leader and hand it this replica's state (Alg. 6 l.40)."""
        self.leader = leader
        self.view_ts = view_ts
        self.echoed = False
        self.readied = False
        self.quiet = False
        self._quiet_deliver_sent = False
        self._marker_view = None
        self._marker_recs = None
        self.high_valid = None
        self._collected = {}
        self._quorum_senders = set()
        self._aggregated_view = None
        if self.delivered:
            return
        self._timer.start(self.timeout)
        if self.valid is not None:
            self.apl.send(
                self.leader,
                BrdValid(
                    cluster_id=self.cluster_id,
                    round_number=self.round_number,
                    view_ts=self.view_ts,
                    recs=self.valid.recs,
                    certificate=self.valid.certificate,
                    certificate_kind=self.valid.kind,
                    valid_ts=self.valid.view_ts,
                ),
            )
        elif self.my_recs is not None:
            signature = self.registry.sign(
                self.owner, self._phase_digest(_SUBMIT, self.my_recs)
            )
            self.apl.send(
                self.leader,
                BrdSubmit(
                    cluster_id=self.cluster_id,
                    round_number=self.round_number,
                    view_ts=self.view_ts,
                    recs=self.my_recs,
                    signature=signature,
                ),
            )

    def stop(self) -> None:
        """Stop the delivery timer (used when a round is torn down)."""
        self._timer.stop()

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> bool:
        """Consume a BRD message for this cluster and round."""
        payload = envelope.payload
        if not isinstance(payload, self.MESSAGE_TYPES):
            return False
        if payload.cluster_id != self.cluster_id or payload.round_number != self.round_number:
            return False
        if isinstance(payload, BrdSubmit):
            self._on_submit(sender, payload)
        elif isinstance(payload, BrdAgg):
            self._on_agg(sender, payload)
        elif isinstance(payload, BrdEcho):
            self._on_echo(sender, payload)
        elif isinstance(payload, BrdReady):
            self._on_ready(sender, payload)
        elif isinstance(payload, BrdQuietDeliver):
            self._on_quiet_deliver(sender, payload)
        elif isinstance(payload, BrdValid):
            self._on_valid(sender, payload)
        return True

    # -- leader side ------------------------------------------------------ #
    def _on_submit(self, sender: str, message: BrdSubmit) -> None:
        if not self.is_leader() or message.view_ts != self.view_ts:
            return
        if sender not in self.members():
            return
        recs = canonical_recs(message.recs)
        expected = self._phase_digest(_SUBMIT, recs)
        if message.signature is None or message.signature.digest != expected:
            return
        if message.signature.signer != sender or not self.registry.verify(message.signature):
            return
        self._collected[sender] = CollectionEntry(sender=sender, recs=recs, signature=message.signature)
        self._quorum_senders.add(sender)
        self._maybe_aggregate()

    def _on_valid(self, sender: str, message: BrdValid) -> None:
        if not self.is_leader():
            return
        if sender not in self.members():
            return
        recs = canonical_recs(message.recs)
        if not self._attestation_valid(recs, message.certificate, message.certificate_kind):
            return
        if self.high_valid is None or message.valid_ts > self.high_valid.view_ts:
            self.high_valid = _ValidSet(
                recs=recs,
                certificate=message.certificate,
                kind=message.certificate_kind,
                view_ts=message.valid_ts,
            )
        self._quorum_senders.add(sender)
        self._maybe_aggregate()

    def _maybe_aggregate(self) -> None:
        if not self.is_leader():
            return
        if len(self._quorum_senders) < self.quorum():
            return
        if self._aggregated_view == self.view_ts:
            return
        self._aggregated_view = self.view_ts
        if self.high_valid is not None:
            message = BrdAgg(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=self.high_valid.recs,
                collection_certificate=self.high_valid.certificate,
                attestation_kind=self.high_valid.kind,
            )
            self.abeb.broadcast(message)
            return
        union: set = set()
        for entry in self._collected.values():
            union.update(entry.recs)
        aggregated = canonical_recs(union)
        proof = CollectionProof(
            cluster_id=self.cluster_id,
            round_number=self.round_number,
            entries=tuple(self._collected.values()),
        )
        self._agg_proofs[payload_digest(aggregated)] = proof
        message = BrdAgg(
            cluster_id=self.cluster_id,
            round_number=self.round_number,
            view_ts=self.view_ts,
            recs=aggregated,
            collection_certificate=proof,  # type: ignore[arg-type]
            attestation_kind="collection",
        )
        self.abeb.broadcast(message)

    # -- replica side ------------------------------------------------------ #
    def _on_agg(self, sender: str, message: BrdAgg) -> None:
        if sender != self.leader or message.view_ts != self.view_ts or self.echoed:
            return
        recs = canonical_recs(message.recs)
        attestation = message.collection_certificate
        if message.attestation_kind == "collection":
            if not isinstance(attestation, CollectionProof):
                return
            if not self.collection_valid(attestation, recs):
                return
            self._agg_proofs[payload_digest(recs)] = attestation
            if not recs:
                # Empty-and-unanimous: a valid collection proof whose union
                # is empty consists of 2f+1 signed *empty* submissions — the
                # quiet-round precondition (module docstring).  Consume the
                # one echo/ready slot for this view, skip Echo, and hand the
                # Ready signature to the leader point-to-point.
                self._go_quiet(attestation)
                return
        else:
            if not self._attestation_valid(recs, attestation, message.attestation_kind):
                return
        self.echoed = True
        digest = self._phase_digest(_ECHO, recs)
        self.abeb.broadcast(
            BrdEcho(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=recs,
                echo_signature=self.registry.sign(self.owner, digest),
            )
        )

    def _go_quiet(self, proof: CollectionProof) -> None:
        """Accept an empty-and-unanimous aggregate (skip Echo, Ready-to-leader).

        ``echoed`` and ``readied`` are set *before* the signature leaves, so
        this replica can never also echo a non-empty set in the same view —
        the exclusivity the safety argument rests on.  The stored valid set
        carries the collection proof itself (kind ``"collection"``) so a new
        leader can re-validate and re-propose it after a view change.
        """
        self.quiet = True
        self.echoed = True
        self.readied = True
        self.valid = _ValidSet(
            recs=(), certificate=proof, kind="collection", view_ts=self.view_ts
        )
        self.apl.send(
            self.leader,
            BrdReady(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=(),
                ready_signature=self.registry.sign(
                    self.owner, self._phase_digest(_READY, ())
                ),
            ),
        )

    def _on_echo(self, sender: str, message: BrdEcho) -> None:
        recs = canonical_recs(message.recs)
        digest = self._phase_digest(_ECHO, recs)
        signature = message.echo_signature
        if signature is None or signature.digest != digest or signature.signer != sender:
            return
        if sender not in self.members() or not self.registry.verify(signature):
            return
        cert = self._echo_certs.setdefault(payload_digest(recs), Certificate(digest, kind="echo"))
        cert.add(signature)
        if len(cert) >= self.quorum() and not self.readied:
            self._send_ready(recs, cert, kind="echo")

    def _on_ready(self, sender: str, message: BrdReady) -> None:
        recs = canonical_recs(message.recs)
        digest = self._phase_digest(_READY, recs)
        signature = message.ready_signature
        if signature is None or signature.digest != digest or signature.signer != sender:
            return
        if sender not in self.members() or not self.registry.verify(signature):
            return
        key = payload_digest(recs)
        cert = self._ready_certs.setdefault(key, Certificate(digest, kind="ready"))
        cert.add(signature)
        faults = self.faults_fn()
        if len(cert) >= faults + 1 and not self.readied:
            self._send_ready(recs, cert, kind="ready")
        if len(cert) >= self.quorum():
            if not self.delivered:
                self.delivered = True
                self._timer.stop()
                proof = self._agg_proofs.get(key)
                self.on_deliver(recs, proof, cert.copy())
            if self.quiet and self.is_leader() and not self._quiet_deliver_sent and not recs:
                # Quiet round: the leader alone sees the point-to-point Ready
                # signatures; one marker carries the assembled Σ' to everyone.
                self._quiet_deliver_sent = True
                self.abeb.broadcast(
                    BrdQuietDeliver(
                        cluster_id=self.cluster_id,
                        round_number=self.round_number,
                        view_ts=self.view_ts,
                        certificate=cert.copy(),
                    )
                )

    def _on_quiet_deliver(self, sender: str, message: BrdQuietDeliver) -> None:
        """Deliver the empty set on a valid quiet-round Ready certificate.

        The certificate is self-certifying (2f+1 member signatures over the
        Ready digest of the empty set), so delivery is safe regardless of
        which member relayed it — including an old leader after a view
        change.  A replica that never saw the aggregate delivers with a
        ``None`` collection proof, like the full path's attested aggregates.
        """
        if self.delivered or sender not in self.members():
            return
        certificate = message.certificate
        digest = self._phase_digest(_READY, ())
        if not isinstance(certificate, Certificate) or certificate.digest != digest:
            return
        if not self.registry.certificate_valid(
            certificate, self.members(), self.quorum(), digest=digest
        ):
            return
        self.delivered = True
        self.echoed = True
        self.readied = True
        self._timer.stop()
        proof = self._agg_proofs.get(payload_digest(()))
        self.on_deliver((), proof, certificate.copy())

    def _send_ready(self, recs: Tuple[ReconfigRequest, ...], certificate: Certificate, kind: str) -> None:
        self.readied = True
        self.valid = _ValidSet(
            recs=recs, certificate=certificate.copy(), kind=kind, view_ts=self.view_ts
        )
        digest = self._phase_digest(_READY, recs)
        self.abeb.broadcast(
            BrdReady(
                cluster_id=self.cluster_id,
                round_number=self.round_number,
                view_ts=self.view_ts,
                recs=recs,
                ready_signature=self.registry.sign(self.owner, digest),
            )
        )

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def collection_valid(self, proof: CollectionProof, aggregated: Tuple[ReconfigRequest, ...]) -> bool:
        """Check Σ: a quorum of distinct, valid submissions whose union is M."""
        members = set(self.members())
        senders: set = set()
        union: set = set()
        for entry in proof.entries:
            if entry.sender not in members or entry.sender in senders:
                continue
            expected = self._phase_digest(_SUBMIT, canonical_recs(entry.recs))
            if entry.signature.digest != expected or entry.signature.signer != entry.sender:
                continue
            if not self.registry.verify(entry.signature):
                continue
            senders.add(entry.sender)
            union.update(entry.recs)
        if len(senders) < self.quorum():
            return False
        return canonical_recs(union) == canonical_recs(aggregated)

    def _attestation_valid(self, recs, certificate, kind: str) -> bool:
        if kind == "collection":
            # A quiet acceptor's stored valid set is the empty-and-unanimous
            # collection proof itself; a new leader re-validates it like any
            # collection aggregate.
            return (
                isinstance(certificate, CollectionProof)
                and self.collection_valid(certificate, canonical_recs(recs))
            )
        if not isinstance(certificate, Certificate):
            return False
        members = self.members()
        faults = self.faults_fn()
        if kind == "echo":
            digest = self._phase_digest(_ECHO, canonical_recs(recs))
            return self.registry.certificate_valid(certificate, members, 2 * faults + 1, digest=digest)
        if kind == "ready":
            digest = self._phase_digest(_READY, canonical_recs(recs))
            return self.registry.certificate_valid(certificate, members, faults + 1, digest=digest)
        return False

    # ------------------------------------------------------------------ #
    # Timer
    # ------------------------------------------------------------------ #
    def _on_timeout(self) -> None:
        if not self.delivered:
            self.on_complain(self.leader)
            self._timer.start(self.timeout)


__all__ = [
    "ByzantineReliableDissemination",
    "CollectionEntry",
    "CollectionProof",
    "canonical_recs",
    "echo_digest",
    "ready_digest",
    "submit_digest",
]
