"""The replicated application state machine: a key-value store.

The paper evaluates with YCSB over a key-value state.  The store is a plain
dict plus counters used by tests to check that every replica converges to the
same state (the Agreement and Total-order theorems).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.types import Transaction


@dataclass
class KeyValueStore:
    """A deterministic key-value state machine.

    Attributes:
        data: Current key/value mapping.
        applied: Number of write transactions applied.
        applied_log: Digest-friendly log of applied (txn_id, key) pairs used
            to compare replica histories in tests.
    """

    data: Dict[str, str] = field(default_factory=dict)
    applied: int = 0
    applied_log: list = field(default_factory=list)

    def apply(self, transaction: Transaction) -> Optional[str]:
        """Apply one transaction and return the response value."""
        if transaction.is_read:
            return self.data.get(transaction.key)
        self.data[transaction.key] = transaction.value or ""
        self.applied += 1
        self.applied_log.append((transaction.txn_id, transaction.key))
        return transaction.value

    def read(self, key: str) -> Optional[str]:
        """Read a key without going through a transaction."""
        return self.data.get(key)

    def snapshot(self) -> Dict[str, str]:
        """A copy of the current data, used for ``CurrState`` transfers."""
        return dict(self.data)

    def restore(self, snapshot: Dict[str, str]) -> None:
        """Replace the state with a received snapshot (joining replicas)."""
        self.data = dict(snapshot)

    def fingerprint(self) -> Tuple[int, int]:
        """A cheap state fingerprint: (#keys, #applied writes)."""
        return (len(self.data), self.applied)


__all__ = ["KeyValueStore"]
