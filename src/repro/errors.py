"""Exception hierarchy for the Hamava reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class at the public-API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A deployment, cluster, or protocol configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class NetworkError(ReproError):
    """A message could not be routed (unknown node, detached network, ...)."""


class CryptoError(ReproError):
    """A signature or certificate failed verification."""


class ProtocolError(ReproError):
    """A protocol invariant was violated by local code (not by a peer).

    Byzantine peer behaviour is *not* reported through exceptions: invalid
    messages from peers are dropped, as the protocols prescribe.  This error
    signals a bug in the local implementation instead.
    """


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""
