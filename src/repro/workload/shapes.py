"""Load shapes: time-varying arrival rates for open-loop populations.

A *shape* maps virtual time (seconds since the population started) to an
aggregate arrival rate in operations per second.  Shapes are the unit the
open-loop workload model is parameterized by — the staged load patterns of
large-scale traffic studies (steady state, ramp-up, flash crowd, staircase
capacity probes, diurnal cycles) plus fully trace-driven rates.

Shapes are small frozen dataclasses tagged with a ``kind`` class variable
and serialize through :func:`shape_to_dict` / :func:`shape_from_dict`, the
same tagged-dictionary pattern the scenario schedule events use — so a
:class:`~repro.harness.scenario.ScenarioSpec` carrying a shape round-trips
through JSON losslessly.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import ClassVar, Dict, Tuple, Union

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ConstantShape:
    """A steady arrival rate: ``rate`` operations per second, forever."""

    kind: ClassVar[str] = "constant"

    rate: float = 1000.0

    def rate_at(self, t: float) -> float:
        """Arrival rate at time ``t``."""
        return self.rate

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on out-of-range parameters."""
        if self.rate < 0:
            raise WorkloadError("constant shape rate must be non-negative")


@dataclass(frozen=True)
class RampShape:
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``[start, end]``.

    Before ``start`` the rate is ``start_rate``; after ``end`` it stays at
    ``end_rate`` (a ramp-up-and-hold, the usual capacity-probe pattern).
    """

    kind: ClassVar[str] = "ramp"

    start_rate: float = 0.0
    end_rate: float = 2000.0
    start: float = 0.0
    end: float = 5.0

    def rate_at(self, t: float) -> float:
        """Arrival rate at time ``t``."""
        if t <= self.start:
            return self.start_rate
        if t >= self.end:
            return self.end_rate
        fraction = (t - self.start) / (self.end - self.start)
        return self.start_rate + fraction * (self.end_rate - self.start_rate)

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on out-of-range parameters."""
        if self.start_rate < 0 or self.end_rate < 0:
            raise WorkloadError("ramp rates must be non-negative")
        if self.end <= self.start:
            raise WorkloadError("ramp end must be after start")


@dataclass(frozen=True)
class SpikeShape:
    """A flash crowd: ``base_rate`` with a burst to ``spike_rate``.

    The burst covers ``[at, at + width]`` — the open-loop pattern closed-loop
    clients cannot express (their offered load collapses to whatever the
    system admits).
    """

    kind: ClassVar[str] = "spike"

    base_rate: float = 1000.0
    spike_rate: float = 5000.0
    at: float = 2.0
    width: float = 1.0

    def rate_at(self, t: float) -> float:
        """Arrival rate at time ``t``."""
        if self.at <= t < self.at + self.width:
            return self.spike_rate
        return self.base_rate

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on out-of-range parameters."""
        if self.base_rate < 0 or self.spike_rate < 0:
            raise WorkloadError("spike rates must be non-negative")
        if self.width <= 0:
            raise WorkloadError("spike width must be positive")


@dataclass(frozen=True)
class StepShape:
    """A staircase: ``initial_rate`` until the first step, then per-step rates.

    ``steps`` is a tuple of ``(time, rate)`` pairs sorted by time; the rate
    at ``t`` is the rate of the latest step at or before ``t``.
    """

    kind: ClassVar[str] = "step"

    initial_rate: float = 500.0
    steps: Tuple[Tuple[float, float], ...] = ((2.0, 1000.0), (4.0, 2000.0))

    def rate_at(self, t: float) -> float:
        """Arrival rate at time ``t``."""
        rate = self.initial_rate
        for step_time, step_rate in self.steps:
            if t < step_time:
                break
            rate = step_rate
        return rate

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on out-of-range parameters."""
        if self.initial_rate < 0:
            raise WorkloadError("step initial_rate must be non-negative")
        previous = None
        for step_time, step_rate in self.steps:
            if step_rate < 0:
                raise WorkloadError("step rates must be non-negative")
            if previous is not None and step_time <= previous:
                raise WorkloadError("step times must be strictly increasing")
            previous = step_time


@dataclass(frozen=True)
class DiurnalShape:
    """A sinusoidal day/night cycle compressed into simulated seconds.

    ``rate(t) = mean_rate + amplitude * sin(2π (t - phase) / period)``,
    clamped at zero.  The default 10-second period stands in for a day at
    simulation scale.
    """

    kind: ClassVar[str] = "diurnal"

    mean_rate: float = 1000.0
    amplitude: float = 600.0
    period: float = 10.0
    phase: float = 0.0

    def rate_at(self, t: float) -> float:
        """Arrival rate at time ``t``."""
        value = self.mean_rate + self.amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.period
        )
        return max(0.0, value)

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on out-of-range parameters."""
        if self.mean_rate < 0 or self.amplitude < 0:
            raise WorkloadError("diurnal mean_rate and amplitude must be non-negative")
        if self.period <= 0:
            raise WorkloadError("diurnal period must be positive")


@dataclass(frozen=True)
class TraceShape:
    """Trace-driven rates: piecewise-linear interpolation over samples.

    ``points`` is a tuple of ``(time, rate)`` samples sorted by time — e.g.
    replayed from a production traffic trace.  Before the first sample the
    rate is the first sample's; after the last it holds the last sample's.
    """

    kind: ClassVar[str] = "trace"

    points: Tuple[Tuple[float, float], ...] = ((0.0, 500.0), (5.0, 2000.0))

    def rate_at(self, t: float) -> float:
        """Arrival rate at time ``t`` (linear between samples)."""
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        for index in range(1, len(points)):
            t1, r1 = points[index]
            if t <= t1:
                t0, r0 = points[index - 1]
                fraction = (t - t0) / (t1 - t0)
                return r0 + fraction * (r1 - r0)
        return points[-1][1]

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on out-of-range parameters."""
        if not self.points:
            raise WorkloadError("trace shape needs at least one (time, rate) sample")
        previous = None
        for point_time, point_rate in self.points:
            if point_rate < 0:
                raise WorkloadError("trace rates must be non-negative")
            if previous is not None and point_time <= previous:
                raise WorkloadError("trace times must be strictly increasing")
            previous = point_time


LoadShape = Union[ConstantShape, RampShape, SpikeShape, StepShape, DiurnalShape, TraceShape]

SHAPE_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (ConstantShape, RampShape, SpikeShape, StepShape, DiurnalShape, TraceShape)
}

#: Shape fields holding ``((a, b), ...)`` tuples that JSON flattens to lists.
_PAIR_TUPLE_FIELDS = {"steps", "points"}


def shape_to_dict(shape: LoadShape) -> Dict[str, object]:
    """Serialize one shape (the ``kind`` tag selects the type)."""
    payload: Dict[str, object] = {"kind": shape.kind}
    data = asdict(shape)
    for name in _PAIR_TUPLE_FIELDS:
        if name in data:
            data[name] = [list(pair) for pair in data[name]]
    payload.update(data)
    return payload


def shape_from_dict(payload: Dict[str, object]) -> LoadShape:
    """Deserialize one shape from its tagged dictionary."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind not in SHAPE_TYPES:
        raise WorkloadError(f"unknown load shape kind {kind!r}; known: {sorted(SHAPE_TYPES)}")
    for name in _PAIR_TUPLE_FIELDS:
        if name in data:
            data[name] = tuple((float(a), float(b)) for a, b in data[name])
    return SHAPE_TYPES[kind](**data)


__all__ = [
    "ConstantShape",
    "DiurnalShape",
    "LoadShape",
    "RampShape",
    "SHAPE_TYPES",
    "SpikeShape",
    "StepShape",
    "TraceShape",
    "shape_from_dict",
    "shape_to_dict",
]
