"""Open-loop client populations: millions of simulated users per region.

The closed-loop :class:`~repro.workload.clients.WorkloadClient` models each
client thread as an object with one outstanding request — faithful to the
paper's evaluation setup, but it caps "heavy traffic" at thousands of
clients because state and events scale with the population.  A
:class:`ClientPopulation` inverts the model: one process per region stands
in for an arbitrary number of users by generating an *open-loop arrival
stream* whose rate follows a :mod:`load shape <repro.workload.shapes>`
(Poisson or deterministic arrivals; constant, ramp, spike, step, diurnal,
or trace-driven rates).

The state is O(1) in the population size: arrivals are drawn per *batching
window* (one Poisson draw per tick, not one event per client), queued
arrivals are stored as ``(arrival_time, count)`` pairs (one per tick), and
only in-flight operations — bounded by the pipelining window — carry
per-operation records.  Requests cross the client–replica boundary as
:class:`~repro.core.messages.ClientBatchRequest` envelopes (one wire
message per window per target, regardless of how many operations it
carries) and responses return as per-round
:class:`~repro.core.messages.ClientBatchResponse` batches.

Open loop means arrivals do not wait for completions: when the system
cannot keep up, the backlog grows and *offered load* diverges from
*goodput* — exactly the signal closed-loop clients cannot produce, and the
one the flash-crowd and capacity-probe shapes exist to measure.  The
pipelining window (``max_outstanding``) only bounds memory: operations
beyond it wait in the backlog and their wait is reported as queueing delay.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.core.messages import ClientBatchRequest, ClientBatchResponse, ClientResponse
from repro.core.types import Transaction, make_transaction
from repro.errors import WorkloadError
from repro.net.links import AuthenticatedPerfectLink
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.workload.shapes import (
    ConstantShape,
    DiurnalShape,
    LoadShape,
    RampShape,
    SpikeShape,
    StepShape,
    TraceShape,
    shape_from_dict,
    shape_to_dict,
)
from repro.workload.ycsb import YcsbWorkload


@dataclass
class PopulationConfig:
    """Parameters of one open-loop client population (per region).

    Attributes:
        clients: Number of simulated users this population stands in for.
            Purely aggregate — state never scales with it, so millions are
            as cheap as dozens.  Operations carry synthesized per-user ids
            (round-robin over the population) for trace realism.
        rate: Aggregate arrival rate (operations/second) when no shape is
            given; ignored otherwise.
        shape: Optional time-varying rate (see :mod:`repro.workload.shapes`);
            ``None`` means a constant ``rate``.
        arrival: ``"poisson"`` (memoryless arrivals, the open-loop standard)
            or ``"uniform"`` (deterministic evenly-spaced arrivals).
        batch_window: Client-side batching quantum in seconds.  Arrivals
            within one window ship together as one batch envelope per
            target; smaller windows trade wire messages for latency
            granularity.
        max_outstanding: Pipelining window — operations in flight before
            new arrivals queue in the backlog.  Bounds per-operation state.
    """

    clients: int = 100_000
    rate: float = 2000.0
    shape: Optional[LoadShape] = None
    arrival: str = "poisson"
    batch_window: float = 0.005
    max_outstanding: int = 20_000

    def effective_shape(self) -> LoadShape:
        """The shape driving this population (a constant when none was set)."""
        return self.shape if self.shape is not None else ConstantShape(rate=self.rate)

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on out-of-range parameters."""
        if self.clients <= 0:
            raise WorkloadError("population clients must be positive")
        if self.rate < 0:
            raise WorkloadError("population rate must be non-negative")
        if self.arrival not in ("poisson", "uniform"):
            raise WorkloadError(f"unknown arrival process {self.arrival!r}")
        if self.batch_window <= 0:
            raise WorkloadError("population batch_window must be positive")
        if self.max_outstanding <= 0:
            raise WorkloadError("population max_outstanding must be positive")
        self.effective_shape().validate()

    def copy(self) -> "PopulationConfig":
        """An independent copy (shapes are frozen and safely shared)."""
        return replace(self)


def population_to_dict(config: PopulationConfig) -> Dict[str, object]:
    """Serialize a population config (the shape as a tagged dictionary)."""
    data = asdict(config)
    data["shape"] = None if config.shape is None else shape_to_dict(config.shape)
    return data


def population_from_dict(payload: Dict[str, object]) -> PopulationConfig:
    """Rebuild a population config from :func:`population_to_dict` output."""
    data = dict(payload)
    shape = data.get("shape")
    data["shape"] = None if shape is None else shape_from_dict(shape)
    return PopulationConfig(**data)


#: Named population presets: ready-made open-loop scenarios.  ``smoke`` is
#: sized for CI; the others exercise one load shape each at a scale the
#: default two-cluster deployment sustains.
POPULATION_PRESETS: Dict[str, Callable[[], PopulationConfig]] = {
    "steady": lambda: PopulationConfig(clients=100_000, rate=2000.0),
    "ramp": lambda: PopulationConfig(
        clients=100_000,
        shape=RampShape(start_rate=200.0, end_rate=3000.0, start=0.5, end=4.0),
    ),
    "rush_hour": lambda: PopulationConfig(
        clients=100_000,
        shape=SpikeShape(base_rate=800.0, spike_rate=4000.0, at=2.0, width=1.0),
    ),
    "staircase": lambda: PopulationConfig(
        clients=100_000,
        shape=StepShape(initial_rate=500.0, steps=((1.5, 1500.0), (3.0, 3000.0))),
    ),
    "diurnal": lambda: PopulationConfig(
        clients=100_000,
        shape=DiurnalShape(mean_rate=1500.0, amplitude=1000.0, period=4.0),
    ),
    "trace": lambda: PopulationConfig(
        clients=100_000,
        shape=TraceShape(points=((0.0, 400.0), (1.5, 2500.0), (3.0, 900.0), (4.5, 1800.0))),
    ),
    "smoke": lambda: PopulationConfig(clients=100_000, rate=600.0, batch_window=0.01),
}


def resolve_population_preset(name: str) -> PopulationConfig:
    """Look up a named population preset (case-insensitive)."""
    key = name.lower()
    if key not in POPULATION_PRESETS:
        raise WorkloadError(
            f"unknown population preset {name!r}; available: {sorted(POPULATION_PRESETS)}"
        )
    return POPULATION_PRESETS[key]()


class ClientPopulation(Process):
    """An aggregate open-loop client population bound to one cluster.

    One resident tick event fires every ``batch_window`` seconds: it draws
    the window's arrival count from the configured process (one Poisson or
    deterministic draw per tick), folds the arrivals into the backlog, and
    dispatches as many operations as the pipelining window admits — reads
    as one batch to a rotating replica, writes as one batch to the cached
    cluster leader.  Kernel event volume is therefore O(ticks + responses),
    independent of both the population size and the arrival rate.

    Args:
        client_id: Process id of this population.
        simulator: Simulation kernel.
        network: Simulated network.
        workload: Operation generator (key/op mix; think of it as the
            per-user behaviour profile).
        target_replicas: Replicas of the cluster this population talks to.
        config: Population parameters (rate, shape, windows).
        metrics: Optional metrics sink (duck-typed ``record_transaction`` /
            ``record_offered``).
        retry_timeout: Seconds after which unanswered in-flight operations
            are re-sent and their target suspected.
    """

    def __init__(
        self,
        client_id: str,
        simulator: Simulator,
        network: Network,
        workload: YcsbWorkload,
        target_replicas: List[str],
        config: Optional[PopulationConfig] = None,
        metrics: Optional[Any] = None,
        retry_timeout: float = 60.0,
    ) -> None:
        super().__init__(client_id, simulator)
        self.config = config or PopulationConfig()
        self.config.validate()
        self.workload = workload
        self.target_replicas = list(target_replicas)
        self.metrics = metrics
        self.retry_timeout = retry_timeout
        self.apl: Optional[AuthenticatedPerfectLink] = None
        self._network = network
        self._shape = self.config.effective_shape()
        #: Dedicated arrival stream: shares nothing with latency/workload
        #: draws, so adding a population cannot perturb other components.
        self._arrival_rng = simulator.rng.child(f"population/{client_id}")
        self._tick_label = f"{client_id}:tick"
        self._started_at = 0.0
        #: Deterministic-arrival accumulator (fractional ops carry over).
        self._carry = 0.0
        #: Backlog of arrived-but-not-dispatched operations, O(ticks):
        #: ``[arrival_time, remaining_count]`` — never one entry per op.
        self._backlog: Deque[List[float]] = deque()
        self._backlog_size = 0
        #: In-flight operations (bounded by ``max_outstanding``):
        #: txn_id -> (transaction, sent_at, target).
        self._inflight: Dict[str, Tuple[Transaction, float, str]] = {}
        #: Synthesized per-user id counter (round-robin over the population).
        self._user_cursor = 0
        self._read_cursor = 0
        self._suspected: set = set()
        #: Cached cluster leader from response ``leader_hint``s, invalidated
        #: on suspicion — writes route straight to it instead of re-learning
        #: the leader through a forward hop every window.
        self._leader_hint: str = ""
        # Aggregate statistics (exposed via ``stats()``).
        self.offered = 0
        self.dispatched = 0
        self.completed = 0
        self.completed_reads = 0
        self.completed_writes = 0
        self.retries = 0
        self.queue_delay_sum = 0.0
        self.queue_delay_count = 0
        self.max_inflight = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        """Arm the resident arrival tick and the retry sweep."""
        self.apl = AuthenticatedPerfectLink(self.process_id, self._network)
        self._started_at = self.now
        self.simulator.schedule(
            self.config.batch_window, self._tick, label=self._tick_label
        )
        self.after(self.retry_timeout / 2.0, self._sweep_retries, label=f"{self.process_id}:sweep")

    # ------------------------------------------------------------------ #
    # Arrivals
    # ------------------------------------------------------------------ #
    def _poisson(self, mean: float) -> int:
        """One Poisson draw (Knuth for small means, normal approx above)."""
        if mean <= 0.0:
            return 0
        rng = self._arrival_rng
        if mean < 30.0:
            threshold = math.exp(-mean)
            count = 0
            product = rng.random()
            while product > threshold:
                count += 1
                product *= rng.random()
            return count
        value = rng.gauss(mean, math.sqrt(mean))
        return max(0, int(round(value)))

    def _window_arrivals(self) -> int:
        """Arrival count for the window that just elapsed."""
        t = self.now - self._started_at
        mean = self._shape.rate_at(t) * self.config.batch_window
        if self.config.arrival == "poisson":
            return self._poisson(mean)
        total = self._carry + mean
        count = int(total)
        self._carry = total - count
        return count

    def _tick(self) -> None:
        if self.crashed or self.apl is None:
            return
        arrivals = self._window_arrivals()
        if arrivals:
            self.offered += arrivals
            if self.metrics is not None:
                self.metrics.record_offered(arrivals)
            self._backlog.append([self.now, arrivals])
            self._backlog_size += arrivals
        self._dispatch()
        self.simulator.schedule(
            self.config.batch_window, self._tick, label=self._tick_label
        )

    # ------------------------------------------------------------------ #
    # Dispatch (batching + pipelining)
    # ------------------------------------------------------------------ #
    def _write_target(self) -> str:
        hint = self._leader_hint
        if hint and hint not in self._suspected:
            return hint
        return self._next_read_target()

    def _next_read_target(self) -> str:
        targets = self.target_replicas
        for _ in range(len(targets)):
            target = targets[self._read_cursor % len(targets)]
            self._read_cursor += 1
            if target not in self._suspected:
                return target
        target = targets[self._read_cursor % len(targets)]
        self._read_cursor += 1
        return target

    def _dispatch(self) -> None:
        window = self.config.max_outstanding - len(self._inflight)
        if window <= 0 or not self._backlog_size:
            return
        count = min(window, self._backlog_size)
        reads: List[Transaction] = []
        writes: List[Transaction] = []
        now = self.now
        clients = self.config.clients
        value_size = self.workload.config.value_size
        backlog = self._backlog
        taken = 0
        while taken < count:
            entry = backlog[0]
            take = min(count - taken, int(entry[1]))
            self.queue_delay_sum += (now - entry[0]) * take
            self.queue_delay_count += take
            entry[1] -= take
            if entry[1] <= 0:
                backlog.popleft()
            taken += take
            for _ in range(take):
                op, key, value = self.workload.next_operation()
                user = self._user_cursor
                self._user_cursor = (user + 1) % clients
                transaction = make_transaction(
                    client_id=self.process_id,
                    origin_replica="",  # filled per batch target below
                    op=op,
                    key=key,
                    value=value,
                    submitted_at=now,
                    size_bytes=value_size,
                )
                (reads if op == "read" else writes).append(transaction)
        self._backlog_size -= taken
        self.dispatched += taken
        if reads:
            self._send_batch(reads, self._next_read_target())
        if writes:
            self._send_batch(writes, self._write_target())
        if len(self._inflight) > self.max_inflight:
            self.max_inflight = len(self._inflight)

    def _send_batch(self, transactions: List[Transaction], target: str) -> None:
        now = self.now
        inflight = self._inflight
        for transaction in transactions:
            transaction.origin_replica = target
            inflight[transaction.txn_id] = (transaction, now, target)
        self.apl.send(target, ClientBatchRequest(transactions=tuple(transactions)))

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, ClientBatchResponse):
            if self._suspected:
                self._suspected.discard(sender)
            self._adopt_hint(payload.leader_hint)
            for txn_id, _value in payload.entries:
                self._complete(txn_id)
        elif isinstance(payload, ClientResponse):
            if self._suspected:
                self._suspected.discard(sender)
            self._adopt_hint(payload.leader_hint)
            self._complete(payload.txn_id)

    def _adopt_hint(self, hint: str) -> None:
        # Cache the responder's leader hint per population; a suspected
        # replica is only rehabilitated by answering us itself, so a stale
        # third-party hint cannot re-route writes to a leader we timed out
        # on (mirrors the closed-loop client's rule).
        if hint and hint not in self._suspected:
            self._leader_hint = hint

    def _complete(self, txn_id: str) -> None:
        record = self._inflight.pop(txn_id, None)
        if record is None:
            return
        transaction, _sent_at, _target = record
        self.completed += 1
        if transaction.is_read:
            self.completed_reads += 1
        else:
            self.completed_writes += 1
        if self.metrics is not None:
            self.metrics.record_transaction(
                txn_id=txn_id,
                op=transaction.op,
                latency=self.now - transaction.submitted_at,
                completed_at=self.now,
                client_id=self.process_id,
            )

    # ------------------------------------------------------------------ #
    # Retries
    # ------------------------------------------------------------------ #
    def _sweep_retries(self) -> None:
        """Re-send in-flight operations older than the retry timeout.

        One periodic sweep over the (bounded) in-flight table replaces a
        per-operation watchdog; lost writes during a leader change are the
        only expected customers.
        """
        if self.crashed or self.apl is None:
            return
        deadline = self.now - self.retry_timeout
        stale = [
            record for record in self._inflight.values() if record[1] <= deadline
        ]
        if stale:
            by_target: Dict[str, List[Transaction]] = {}
            for transaction, _sent_at, target in stale:
                by_target.setdefault(target, []).append(transaction)
            for target, transactions in sorted(by_target.items()):
                if target not in self._suspected:
                    self._suspected.add(target)
                    if target == self._leader_hint:
                        self._leader_hint = ""  # a silent leader hint is stale
                retry_target = self._next_read_target()
                now = self.now
                for transaction in transactions:
                    self._inflight[transaction.txn_id] = (transaction, now, retry_target)
                    self.retries += 1
                self.apl.send(
                    retry_target,
                    ClientBatchRequest(transactions=tuple(transactions)),
                )
        self.after(self.retry_timeout / 2.0, self._sweep_retries, label=f"{self.process_id}:sweep")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def completed_total(self) -> int:
        """Total operations completed (same surface as WorkloadClient)."""
        return self.completed

    def backlog_size(self) -> int:
        """Operations that have arrived but not yet been dispatched."""
        return self._backlog_size

    def queueing_delay_mean(self) -> float:
        """Mean seconds a dispatched operation waited in the backlog."""
        if not self.queue_delay_count:
            return 0.0
        return self.queue_delay_sum / self.queue_delay_count

    def stats(self) -> Dict[str, float]:
        """Aggregate open-loop statistics for result rows."""
        return {
            "clients": float(self.config.clients),
            "offered": float(self.offered),
            "dispatched": float(self.dispatched),
            "completed": float(self.completed),
            "backlog": float(self._backlog_size),
            "in_flight": float(len(self._inflight)),
            "max_in_flight": float(self.max_inflight),
            "retries": float(self.retries),
            "queueing_delay_mean": self.queueing_delay_mean(),
        }


__all__ = [
    "ClientPopulation",
    "POPULATION_PRESETS",
    "PopulationConfig",
    "population_from_dict",
    "population_to_dict",
    "resolve_population_preset",
]
