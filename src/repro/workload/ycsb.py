"""YCSB-style operation generator.

Produces read/write operations over a Zipfian-distributed key space with the
paper's defaults: 85% reads, 15% writes, 1 KB values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import WorkloadError
from repro.sim.rng import SeededRng
from repro.workload.zipf import ZipfianGenerator


@dataclass
class YcsbConfig:
    """Parameters of the YCSB-like workload.

    Attributes:
        read_fraction: Fraction of operations that are reads (paper: 0.85).
        key_space: Number of distinct keys.
        zipf_theta: Zipfian skew (YCSB default 0.99).
        value_size: Bytes per written value (paper: 1 KB operations).
    """

    read_fraction: float = 0.85
    key_space: int = 10_000
    zipf_theta: float = 0.99
    value_size: int = 1024

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on out-of-range parameters."""
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction must be within [0, 1]")
        if self.key_space <= 0:
            raise WorkloadError("key_space must be positive")
        if self.value_size <= 0:
            raise WorkloadError("value_size must be positive")


class YcsbWorkload:
    """Generates (op, key, value) triples for client threads."""

    def __init__(self, config: YcsbConfig, rng: SeededRng) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        self._zipf = ZipfianGenerator(config.key_space, config.zipf_theta, rng.child("zipf"))
        self._counter = 0

    def next_operation(self) -> Tuple[str, str, Optional[str]]:
        """Draw the next operation: ``(op, key, value)``."""
        key = f"user{self._zipf.next()}"
        if self._rng.random() < self.config.read_fraction:
            return ("read", key, None)
        self._counter += 1
        value = "x" * max(1, self.config.value_size // 16)
        return ("write", key, f"{value}-{self._counter}")

    def operations(self, count: int) -> Iterator[Tuple[str, str, Optional[str]]]:
        """Yield ``count`` operations."""
        for _ in range(count):
            yield self.next_operation()


__all__ = ["YcsbConfig", "YcsbWorkload"]
