"""Client processes: closed-loop workload clients and a churn client.

The paper deploys one client per cluster with multiple threads, each issuing
its next request as soon as the previous one returns (closed loop, no think
time).  :class:`WorkloadClient` models exactly that: ``threads`` independent
logical threads, each with one outstanding transaction, retransmitting after
``retry_timeout`` if a response never arrives (e.g. the transaction was lost
in a leader change).

:class:`ReconfigurationClient` issues join/leave requests on a schedule; the
deployment harness uses it for experiments E5, E7, and E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.messages import ClientRequest, ClientResponse
from repro.core.types import Transaction, make_transaction
from repro.net.links import AuthenticatedPerfectLink
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.workload.ycsb import YcsbWorkload


@dataclass
class _Thread:
    """One logical closed-loop client thread."""

    index: int
    outstanding_txn: Optional[Transaction] = None
    submitted_at: float = 0.0
    completed: int = 0
    #: Replica the outstanding request was last sent to (original target or
    #: the latest retry target) — the one a non-answer incriminates.
    awaiting: Optional[str] = None
    #: The resident retry watchdog event.  One event per thread, re-armed
    #: lazily: arming just records the deadline (deadlines only move
    #: forward, so the pending event can never be too late), and the event
    #: re-schedules itself to the current deadline when it fires early.
    #: This replaces one schedule+cancel pair per completed operation with
    #: one field write, while keeping retry times exact.
    retry_event: Optional[object] = None
    retry_deadline: Optional[float] = None
    retry_txn: Optional[Transaction] = None


class WorkloadClient(Process):
    """A closed-loop YCSB client bound to the replicas of one cluster.

    Args:
        client_id: Process id of this client.
        simulator: Simulation kernel.
        network: Simulated network.
        workload: Operation generator.
        target_replicas: Replicas of the cluster this client talks to;
            requests are spread across them round-robin.
        threads: Number of concurrent logical threads (outstanding requests).
        metrics: Optional metrics sink (duck-typed ``record_transaction``).
        retry_timeout: Seconds after which an unanswered request is resent.
        start_delay: Virtual seconds to wait before issuing the first request.
    """

    def __init__(
        self,
        client_id: str,
        simulator: Simulator,
        network: Network,
        workload: YcsbWorkload,
        target_replicas: List[str],
        threads: int = 16,
        metrics: Optional[Any] = None,
        retry_timeout: float = 60.0,
        start_delay: float = 0.0,
    ) -> None:
        super().__init__(client_id, simulator)
        self.workload = workload
        self.target_replicas = list(target_replicas)
        self.threads = [_Thread(index=i) for i in range(threads)]
        self.metrics = metrics
        self.retry_timeout = retry_timeout
        self.start_delay = start_delay
        self.apl: Optional[AuthenticatedPerfectLink] = None
        self._network = network
        self._retry_label = f"{client_id}:retry"
        self._by_txn: Dict[str, _Thread] = {}
        self._target_index = 0
        #: Replicas that timed out recently; skipped while alternatives exist
        #: (real YCSB clients likewise stop talking to unresponsive servers).
        self._suspected: set = set()
        #: The cluster leader as last reported by a response's
        #: ``leader_hint``.  Writes are routed straight to it (standard BFT
        #: client behaviour — the primary orders them anyway, so the
        #: round-robin detour just adds a forward hop); reads stay
        #: round-robin so local reads keep load-balancing across replicas.
        self._leader_hint: str = ""
        self.completed_reads = 0
        self.completed_writes = 0

    def on_start(self) -> None:
        """Kick off every thread's first request."""
        self.apl = AuthenticatedPerfectLink(self.process_id, self._network)
        for thread in self.threads:
            self.after(self.start_delay, lambda t=thread: self._submit_next(t))

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def _next_target(self) -> str:
        if not self._suspected:
            # Fast path: plain round-robin while every replica is healthy.
            targets = self.target_replicas
            target = targets[self._target_index % len(targets)]
            self._target_index += 1
            return target
        for _ in range(len(self.target_replicas)):
            target = self.target_replicas[self._target_index % len(self.target_replicas)]
            self._target_index += 1
            if target not in self._suspected:
                return target
        # Every replica is suspected; fall back to plain round-robin.
        target = self.target_replicas[self._target_index % len(self.target_replicas)]
        self._target_index += 1
        return target

    def _submit_next(self, thread: _Thread) -> None:
        if self.crashed or self.apl is None:
            return
        op, key, value = self.workload.next_operation()
        hint = self._leader_hint
        if op != "read" and hint and hint not in self._suspected:
            target = hint
        else:
            target = self._next_target()
        transaction = make_transaction(
            client_id=self.process_id,
            origin_replica=target,
            op=op,
            key=key,
            value=value,
            submitted_at=self.now,
            size_bytes=self.workload.config.value_size,
        )
        thread.outstanding_txn = transaction
        thread.submitted_at = self.now
        thread.awaiting = target
        self._by_txn[transaction.txn_id] = thread
        self.apl.send(target, ClientRequest(transaction=transaction))
        self._arm_retry(thread, transaction)

    def _arm_retry(self, thread: _Thread, transaction: Transaction) -> None:
        """Arm the resident watchdog: record the deadline, schedule at most once."""
        thread.retry_txn = transaction
        thread.retry_deadline = self.now + self.retry_timeout
        if thread.retry_event is None:
            thread.retry_event = self.simulator.schedule_at(
                thread.retry_deadline, self._on_retry_check, 0, self._retry_label, thread
            )

    def _cancel_retry(self, thread: _Thread) -> None:
        # The resident event stays queued (it re-arms or dies when it
        # fires); disarming is just clearing the deadline.
        thread.retry_deadline = None
        thread.retry_txn = None

    def _on_retry_check(self, thread: _Thread) -> None:
        thread.retry_event = None
        if self.crashed:
            return
        deadline = thread.retry_deadline
        if deadline is None:
            return  # answered; the next submission re-creates the event
        if self.now < deadline:
            # Re-armed since this event was scheduled; chase the deadline.
            thread.retry_event = self.simulator.schedule_at(
                deadline, self._on_retry_check, 0, self._retry_label, thread
            )
            return
        transaction = thread.retry_txn
        thread.retry_deadline = None
        thread.retry_txn = None
        self._maybe_retry(thread, transaction)

    def _maybe_retry(self, thread: _Thread, transaction: Transaction) -> None:
        if self.apl is None:
            return
        if thread.outstanding_txn is None or thread.outstanding_txn.txn_id != transaction.txn_id:
            return
        # The request is still unanswered after the retry timeout; suspect
        # whichever replica it was last sent to and re-route.
        suspect = thread.awaiting or transaction.origin_replica
        if suspect and suspect not in self._suspected:
            self._suspect(suspect)  # re-routes this thread along with its peers
        else:
            self._resend(thread, transaction)

    def _suspect(self, replica_id: str) -> None:
        """Mark a replica unresponsive and re-route everything waiting on it.

        Without the immediate re-route, each thread waiting on the same dead
        replica serves out its *own* full retry timeout — and when several
        adjacent round-robin targets die together (a leave burst), retries
        hop from one dead target to the next, serialising whole multiples of
        the timeout into the outage.
        """
        if replica_id in self._suspected:
            return
        self._suspected.add(replica_id)
        if replica_id == self._leader_hint:
            self._leader_hint = ""  # a silent leader hint is stale
        for thread in self.threads:
            transaction = thread.outstanding_txn
            if transaction is not None and thread.awaiting == replica_id:
                self._resend(thread, transaction)

    def _resend(self, thread: _Thread, transaction: Transaction) -> None:
        target = self._next_target()
        thread.awaiting = target
        self.apl.send(target, ClientRequest(transaction=transaction))
        self._arm_retry(thread, transaction)

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #
    def on_message(self, sender: str, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, ClientResponse):
            return
        thread = self._by_txn.pop(payload.txn_id, None)
        if thread is None or thread.outstanding_txn is None:
            return
        if thread.outstanding_txn.txn_id != payload.txn_id:
            return
        if self._suspected:
            self._suspected.discard(sender)  # a responding replica is not dead
        hint = payload.leader_hint
        if hint and hint not in self._suspected:
            # A suspected replica is only rehabilitated by answering us
            # itself (the discard above) — a third party's stale hint must
            # not send writes back to a leader we just timed out on.  The
            # hint may name a replica outside the client's initial target
            # set (a joiner that won leadership): caching it is exactly the
            # point — writes route straight to the new leader instead of
            # paying a forward hop forever.
            self._leader_hint = hint
        transaction = thread.outstanding_txn
        latency = self.now - thread.submitted_at
        thread.outstanding_txn = None
        thread.completed += 1
        self._cancel_retry(thread)
        if transaction.is_read:
            self.completed_reads += 1
        else:
            self.completed_writes += 1
        if self.metrics is not None:
            self.metrics.record_transaction(
                txn_id=payload.txn_id,
                op=transaction.op,
                latency=latency,
                completed_at=self.now,
                client_id=self.process_id,
            )
        self._submit_next(thread)

    def completed_total(self) -> int:
        """Total operations completed across all threads."""
        return self.completed_reads + self.completed_writes


class ReconfigurationClient(Process):
    """Schedules join and leave requests against a running deployment.

    The client does not speak the wire protocol itself; it drives the
    requester-side API of replicas (``request_join`` / ``request_leave``),
    which is how the paper's dedicated reconfiguration client behaves.

    Args:
        client_id: Process id.
        simulator: Simulation kernel.
        actions: List of ``(at_time, callable)`` pairs executed at the given
            virtual times.
    """

    def __init__(
        self,
        client_id: str,
        simulator: Simulator,
        actions: Optional[List] = None,
    ) -> None:
        super().__init__(client_id, simulator)
        self.actions = list(actions or [])
        self.performed: List[float] = []

    def add_action(self, at_time: float, action: Callable[[], None]) -> None:
        """Add a scheduled action before the client starts."""
        self.actions.append((at_time, action))

    def on_start(self) -> None:
        for at_time, action in self.actions:
            self.simulator.schedule_at(
                max(at_time, self.now),
                lambda act=action, t=at_time: self._perform(act, t),
                label=f"{self.process_id}:reconfig",
            )

    def _perform(self, action: Callable[[], None], at_time: float) -> None:
        self.performed.append(at_time)
        action()

    def on_message(self, sender: str, envelope: Envelope) -> None:
        """The churn client ignores protocol traffic."""


__all__ = ["ReconfigurationClient", "WorkloadClient"]
