"""Workload generation: YCSB-style key-value operations and clients.

The paper drives both systems with YCSB at an 85%/15% read/write ratio, a
Zipfian key-popularity distribution, 1 KB operations, and closed-loop client
threads that issue requests back-to-back.  This package reproduces that
workload on top of the simulator.

Two client models are available:

* closed-loop (:class:`WorkloadClient`) — the paper's model: a fixed number
  of threads, each with exactly one outstanding request;
* open-loop (:class:`~repro.workload.population.ClientPopulation`) — one
  aggregate process per region simulating an entire user population whose
  arrival rate follows a :mod:`~repro.workload.shapes` load shape,
  independent of completions.
"""

from repro.workload.clients import ReconfigurationClient, WorkloadClient
from repro.workload.population import (
    POPULATION_PRESETS,
    ClientPopulation,
    PopulationConfig,
    population_from_dict,
    population_to_dict,
    resolve_population_preset,
)
from repro.workload.shapes import (
    SHAPE_TYPES,
    ConstantShape,
    DiurnalShape,
    LoadShape,
    RampShape,
    SpikeShape,
    StepShape,
    TraceShape,
    shape_from_dict,
    shape_to_dict,
)
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from repro.workload.zipf import ZipfianGenerator

__all__ = [
    "POPULATION_PRESETS",
    "SHAPE_TYPES",
    "ClientPopulation",
    "ConstantShape",
    "DiurnalShape",
    "LoadShape",
    "PopulationConfig",
    "RampShape",
    "ReconfigurationClient",
    "SpikeShape",
    "StepShape",
    "TraceShape",
    "WorkloadClient",
    "YcsbConfig",
    "YcsbWorkload",
    "ZipfianGenerator",
    "population_from_dict",
    "population_to_dict",
    "resolve_population_preset",
    "shape_from_dict",
    "shape_to_dict",
]
