"""Workload generation: YCSB-style key-value operations and clients.

The paper drives both systems with YCSB at an 85%/15% read/write ratio, a
Zipfian key-popularity distribution, 1 KB operations, and closed-loop client
threads that issue requests back-to-back.  This package reproduces that
workload on top of the simulator.
"""

from repro.workload.clients import ReconfigurationClient, WorkloadClient
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from repro.workload.zipf import ZipfianGenerator

__all__ = [
    "ReconfigurationClient",
    "WorkloadClient",
    "YcsbConfig",
    "YcsbWorkload",
    "ZipfianGenerator",
]
