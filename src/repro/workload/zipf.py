"""Zipfian key chooser used by the YCSB workload.

Key popularity follows a Zipfian distribution with exponent ``theta``
(YCSB's default is 0.99) over a finite key space.  Two structures are
precomputed at construction time:

* the CDF, which backs :meth:`ZipfianGenerator.probability` (and the
  chi-squared agreement test between the two structures), and
* a Walker/Vose *alias table*, which makes :meth:`ZipfianGenerator.next`
  O(1): one uniform draw selects a column and the fractional part decides
  between the column and its alias.

A draw consumes exactly one uniform from the generator's stream (as the
old binary-search implementation did), so sibling RNG streams — and
therefore whole-simulation determinism — are unaffected by the table.
The *mapping* from uniform to key differs from CDF inversion, but key
identity never feeds timing or sizes, only store contents.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import WorkloadError
from repro.sim.rng import SeededRng


class ZipfianGenerator:
    """Draws integers in ``[0, item_count)`` with Zipfian popularity.

    Args:
        item_count: Size of the key space.
        theta: Skew exponent; 0 is uniform, YCSB uses 0.99 by default.
        rng: Seeded random stream.
    """

    def __init__(self, item_count: int, theta: float, rng: SeededRng) -> None:
        if item_count <= 0:
            raise WorkloadError("item_count must be positive")
        if theta < 0:
            raise WorkloadError("theta must be non-negative")
        self.item_count = item_count
        self.theta = theta
        self._rng = rng
        self._random = rng.raw_random
        self._cdf = self._build_cdf()
        self._prob, self._alias = self._build_alias()

    def _build_cdf(self) -> List[float]:
        weights = [1.0 / ((rank + 1) ** self.theta) for rank in range(self.item_count)]
        total = sum(weights)
        cdf: List[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            cdf.append(cumulative)
        cdf[-1] = 1.0
        return cdf

    def _build_alias(self) -> Tuple[List[float], List[int]]:
        """Walker/Vose alias table over the same per-rank probabilities.

        Column ``i`` keeps its own mass with probability ``prob[i]`` and
        donates the rest of the column to ``alias[i]``; a draw is then one
        uniform split into (column, fraction).
        """
        n = self.item_count
        # Per-rank probability scaled by n, derived from the CDF so the two
        # structures agree exactly on each rank's mass.
        scaled: List[float] = []
        previous = 0.0
        for value in self._cdf:
            scaled.append((value - previous) * n)
            previous = value
        prob = [1.0] * n
        alias = list(range(n))
        small = [i for i, p in enumerate(scaled) if p < 1.0]
        large = [i for i, p in enumerate(scaled) if p >= 1.0]
        while small and large:
            lean = small.pop()
            rich = large.pop()
            prob[lean] = scaled[lean]
            alias[lean] = rich
            scaled[rich] = (scaled[rich] + scaled[lean]) - 1.0
            if scaled[rich] < 1.0:
                small.append(rich)
            else:
                large.append(rich)
        # Whatever remains (numerical leftovers) keeps its full column.
        return prob, alias

    def next(self) -> int:
        """Draw the next item index (O(1): one uniform, one table probe)."""
        scaled = self._random() * self.item_count
        index = int(scaled)
        if scaled - index < self._prob[index]:
            return index
        return self._alias[index]

    def probability(self, rank: int) -> float:
        """The probability of drawing the item at ``rank`` (0-based)."""
        if rank < 0 or rank >= self.item_count:
            raise WorkloadError(f"rank {rank} outside the key space")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous


__all__ = ["ZipfianGenerator"]
