"""Zipfian key chooser used by the YCSB workload.

Implements the standard cumulative-probability inversion over a finite key
space with exponent ``theta`` (YCSB's default is 0.99).  The CDF is
precomputed once, so drawing a key is a binary search — fast enough for the
millions of operations a throughput experiment issues.
"""

from __future__ import annotations

import bisect
from typing import List

from repro.errors import WorkloadError
from repro.sim.rng import SeededRng


class ZipfianGenerator:
    """Draws integers in ``[0, item_count)`` with Zipfian popularity.

    Args:
        item_count: Size of the key space.
        theta: Skew exponent; 0 is uniform, YCSB uses 0.99 by default.
        rng: Seeded random stream.
    """

    def __init__(self, item_count: int, theta: float, rng: SeededRng) -> None:
        if item_count <= 0:
            raise WorkloadError("item_count must be positive")
        if theta < 0:
            raise WorkloadError("theta must be non-negative")
        self.item_count = item_count
        self.theta = theta
        self._rng = rng
        self._cdf = self._build_cdf()

    def _build_cdf(self) -> List[float]:
        weights = [1.0 / ((rank + 1) ** self.theta) for rank in range(self.item_count)]
        total = sum(weights)
        cdf: List[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            cdf.append(cumulative)
        cdf[-1] = 1.0
        return cdf

    def next(self) -> int:
        """Draw the next item index."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)

    def probability(self, rank: int) -> float:
        """The probability of drawing the item at ``rank`` (0-based)."""
        if rank < 0 or rank >= self.item_count:
            raise WorkloadError(f"rank {rank} outside the key space")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous


__all__ = ["ZipfianGenerator"]
