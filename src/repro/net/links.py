"""Authenticated links, the two communication primitives the paper assumes.

* ``apl`` — authenticated perfect point-to-point links: messages carry the
  sender's signature; the transport drops forged envelopes; between correct
  processes, every sent message is eventually delivered exactly once (the
  simulator has no spontaneous loss; loss is only injected by drop rules).
* ``abeb`` — authenticated best-effort broadcast: sends the same signed
  payload over ``apl`` to every member of a group (including the sender, so
  local delivery of one's own broadcast is uniform with remote delivery).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.net.crypto import Signature
from repro.net.message import Message
from repro.net.network import Network


class AuthenticatedPerfectLink:
    """Point-to-point sending on behalf of one process.

    Args:
        owner: Process id of the sender.
        network: The network to route through.
    """

    def __init__(self, owner: str, network: Network) -> None:
        self.owner = owner
        self.network = network

    def sign(self, payload: Message) -> Signature:
        """Sign a payload digest with the owner's key."""
        return self.network.registry.sign(self.owner, payload.digest())

    def send(self, destination: str, payload: Message) -> None:
        """Sign and send ``payload`` to ``destination``.

        A self-addressed send skips the signature entirely: it takes the
        0 ms loop-back, which never verifies, and a process trusts its own
        payloads.  (Broadcasts still sign once for the whole group — group
        protocols such as the remote leader change read the envelope
        signature of their *own* loop-back copy.)
        """
        network = self.network
        if destination == self.owner:
            network.send(self.owner, destination, payload, None)
            return
        network.send(
            self.owner,
            destination,
            payload,
            network.registry.sign(self.owner, payload.digest()),
        )

    def send_many(self, destinations: Sequence[str], payload: Message) -> None:
        """Sign once and send the payload to several destinations."""
        network = self.network
        network.multicast(
            self.owner,
            destinations,
            payload,
            network.registry.sign(self.owner, payload.digest()),
        )


class AuthenticatedBestEffortBroadcast:
    """Broadcast within a (dynamic) group on behalf of one process.

    The group is supplied by a callable so it always reflects the current
    cluster membership — essential once reconfiguration changes ``C_i``.
    """

    def __init__(
        self,
        owner: str,
        network: Network,
        group: Callable[[], Iterable[str]],
        include_self: bool = True,
    ) -> None:
        self.owner = owner
        self.network = network
        self._group = group
        self.include_self = include_self

    def members(self) -> Sequence[str]:
        """Current broadcast group.

        The group callable usually satisfies the ``members_fn`` contract
        (a sorted tuple the supplier caches); when no adjustment is needed
        it is passed through without copying.
        """
        members = self._group()
        if not self.include_self:
            return [m for m in members if m != self.owner]
        if self.owner not in members:
            return (*members, self.owner)
        return members

    def broadcast(self, payload: Message) -> None:
        """Sign and send ``payload`` to every current group member."""
        signature = self.network.registry.sign(self.owner, payload.digest())
        self.network.multicast(self.owner, self.members(), payload, signature)


__all__ = ["AuthenticatedBestEffortBroadcast", "AuthenticatedPerfectLink"]
