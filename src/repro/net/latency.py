"""Geographic latency model.

The paper deploys clusters across three Google Cloud regions and reports the
inter-region round-trip times in Table II.  This module reproduces that
matrix and extends it with the extra locations used in experiment E8
(us-east5, asia-northeast1), using the one-way latencies the paper quotes for
that experiment (52 / 91 / 142 / 219 ms round trips to us-west1).

One-way latency between two processes is ``rtt / 2`` plus a small jitter;
intra-region latency is sub-millisecond, matching a single cloud zone.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.adversity import RttTrace
from repro.sim.rng import SeededRng

Region = str

#: Inter-region round-trip latency in milliseconds (paper, Table II), plus the
#: extra regions used by experiment E8 (latencies to us-west1 given in §V-E8).
REGION_RTT_MS: Dict[Tuple[Region, Region], float] = {
    ("us-west1", "us-west1"): 0.0,
    ("europe-west3", "europe-west3"): 0.0,
    ("asia-south1", "asia-south1"): 0.0,
    ("us-west1", "europe-west3"): 148.0,
    ("us-west1", "asia-south1"): 214.0,
    ("europe-west3", "asia-south1"): 134.0,
    # E8 extra regions: RTT to us-west1 reported in the paper.
    ("us-west1", "us-east5"): 52.0,
    ("us-west1", "asia-northeast1"): 91.0,
    # Reasonable symmetric fills for pairs the paper does not report; they are
    # only exercised if a scenario explicitly places clusters there.
    ("us-east5", "europe-west3"): 100.0,
    ("us-east5", "asia-south1"): 230.0,
    ("us-east5", "asia-northeast1"): 150.0,
    ("us-east5", "us-east5"): 0.0,
    ("asia-northeast1", "europe-west3"): 220.0,
    ("asia-northeast1", "asia-south1"): 120.0,
    ("asia-northeast1", "asia-northeast1"): 0.0,
}

#: Aliases used in the paper's prose ("US", "EU", "Asia") mapped to regions.
REGION_ALIASES: Dict[str, Region] = {
    "US": "us-west1",
    "EU": "europe-west3",
    "Asia": "asia-south1",
    "us": "us-west1",
    "eu": "europe-west3",
    "asia": "asia-south1",
}


def canonical_region(region: Region) -> Region:
    """Map prose aliases ("US", "EU", "Asia") to canonical region names."""
    return REGION_ALIASES.get(region, region)


#: Hub region for the triangle-inequality fallback below.  Every region the
#: paper (and any realistic table) names has an RTT to the primary US site.
TRIANGLE_HUB: Region = "us-west1"

#: Region pairs already warned about (one warning per pair per process).
_estimated_pairs: set = set()  # detlint: disable=DET004 -- warn-once dedup; never read by simulation logic, cannot affect results


def _table_rtt(a: Region, b: Region, table: Mapping[Tuple[Region, Region], float]) -> Optional[float]:
    if a == b:
        return 0.0
    if (a, b) in table:
        return table[(a, b)]
    if (b, a) in table:
        return table[(b, a)]
    return None


def region_rtt_ms(a: Region, b: Region, table: Optional[Mapping[Tuple[Region, Region], float]] = None) -> float:
    """Round-trip time in milliseconds between two regions.

    Explicit table entries are authoritative.  A pair the table does not
    list is *estimated* by the triangle inequality through
    :data:`TRIANGLE_HUB` (``rtt(a, hub) + rtt(hub, b)`` — an upper bound on
    the direct path, which is the safe direction for a latency model), with
    a one-time ``RuntimeWarning`` naming the estimate so sweeps over novel
    regions run instead of crashing.  Only pairs with no route through the
    hub still raise :class:`ConfigurationError`.
    """
    table = table if table is not None else REGION_RTT_MS
    a = canonical_region(a)
    b = canonical_region(b)
    direct = _table_rtt(a, b, table)
    if direct is not None:
        return direct
    leg_a = _table_rtt(a, TRIANGLE_HUB, table)
    leg_b = _table_rtt(TRIANGLE_HUB, b, table)
    if leg_a is not None and leg_b is not None:
        estimate = leg_a + leg_b
        key = (a, b) if a <= b else (b, a)
        if key not in _estimated_pairs:
            _estimated_pairs.add(key)
            warnings.warn(
                f"no RTT entry for region pair ({a!r}, {b!r}); using the "
                f"triangle-inequality estimate {estimate:g} ms via "
                f"{TRIANGLE_HUB!r} (add an explicit entry to override)",
                RuntimeWarning,
                stacklevel=2,
            )
        return estimate
    raise ConfigurationError(f"no RTT entry for region pair ({a!r}, {b!r})")


@dataclass
class LatencyParameters:
    """Tunable constants of the latency model (times in seconds).

    Attributes:
        intra_region_latency: One-way latency between nodes in one zone.
        jitter_fraction: Relative jitter applied to each one-way latency.
        bandwidth_bytes_per_sec: Per-link serialization bandwidth; larger
            messages (batches) take proportionally longer.
        per_message_overhead: Fixed software overhead per delivered message.
    """

    intra_region_latency: float = 0.0006
    jitter_fraction: float = 0.08
    bandwidth_bytes_per_sec: float = 2.0e8
    per_message_overhead: float = 0.00005


class LatencyModel:
    """Computes message delivery latency between located processes.

    Args:
        rng: Seeded RNG namespace; jitter draws come from a child stream so
            the same scenario seed yields the same network behaviour.
        parameters: Model constants.
        rtt_table: Override for the region RTT matrix (tests, E8 sweeps).
    """

    def __init__(
        self,
        rng: SeededRng,
        parameters: Optional[LatencyParameters] = None,
        rtt_table: Optional[Mapping[Tuple[Region, Region], float]] = None,
    ) -> None:
        self.parameters = parameters or LatencyParameters()
        self._rng = rng.child("latency")
        #: The underlying C-implemented uniform draw; the per-message jitter
        #: is inlined below and this skips three wrapper frames per draw.
        self._random = self._rng.raw_random
        self._rtt_table = dict(rtt_table) if rtt_table is not None else dict(REGION_RTT_MS)
        #: Optional piecewise-linear RTT schedule; traced pairs are sampled
        #: at send time (the pipeline bypasses its route memo for them).
        self._trace: Optional[RttTrace] = None
        self._locations: Dict[str, Region] = {}
        #: Memo of (base, jitter spread) per src -> dst process pair (nested
        #: dicts, so the per-message lookup allocates no key tuple);
        #: invalidated whenever a placement or the RTT table changes.
        self._pair_base: Dict[str, Dict[str, Tuple[float, float]]] = {}
        #: Called (no args) whenever the memo above is invalidated, so
        #: downstream caches derived from it — the delivery pipeline's
        #: per-port route memos — are torn down in the same breath.
        self._invalidate_hooks: list = []
        # Model constants are immutable after construction; bind them once.
        params = self.parameters
        self._jitter_fraction = params.jitter_fraction
        self._bandwidth = params.bandwidth_bytes_per_sec
        self._per_message_overhead = params.per_message_overhead

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def place(self, process_id: str, region: Region) -> None:
        """Record the region a process runs in."""
        self._locations[process_id] = canonical_region(region)
        self._pair_base.clear()
        for hook in self._invalidate_hooks:
            hook()

    def region_of(self, process_id: str) -> Region:
        """The region a process was placed in (default: us-west1)."""
        return self._locations.get(process_id, "us-west1")

    def set_rtt(self, a: Region, b: Region, rtt_ms: float) -> None:
        """Override the RTT between two regions (used by the E8 sweep)."""
        a = canonical_region(a)
        b = canonical_region(b)
        self._rtt_table[(a, b)] = rtt_ms
        self._rtt_table[(b, a)] = rtt_ms
        self._pair_base.clear()
        for hook in self._invalidate_hooks:
            hook()

    def set_trace(self, trace: Optional[RttTrace]) -> None:
        """Install (or clear) a trace-driven RTT schedule.

        Traced pairs stop being served from the static table: the delivery
        pipeline re-samples them at every send instead of caching route
        constants.  Installing a trace invalidates all derived memos.
        """
        if trace is not None:
            trace.validate()
        self._trace = trace
        self._pair_base.clear()
        for hook in self._invalidate_hooks:
            hook()

    @property
    def trace(self) -> Optional[RttTrace]:
        """The installed RTT trace, if any."""
        return self._trace

    def rtt_ms(self, a: Region, b: Region) -> float:
        """RTT between two regions under the current table."""
        return region_rtt_ms(a, b, self._rtt_table)

    def traced_pair_params(self, src: str, dst: str, time: float) -> Optional[Tuple[float, float]]:
        """Time-varying ``(base, jitter spread)`` of a traced process pair.

        Returns ``None`` when the pair's regions are not covered by the
        trace (or are the same region) — the caller then falls back to the
        static, memoised :meth:`pair_params`.
        """
        trace = self._trace
        if trace is None:
            return None
        src_region = self.region_of(src)
        dst_region = self.region_of(dst)
        if src_region == dst_region:
            return None
        rtt = trace.rtt_at(src_region, dst_region, time)
        if rtt is None:
            return None
        base = rtt / 2.0 / 1000.0
        return (base, base * self._jitter_fraction)

    # ------------------------------------------------------------------ #
    # Latency computation
    # ------------------------------------------------------------------ #
    def one_way_latency(self, src: str, dst: str, size_bytes: int = 0) -> float:
        """One-way delivery latency in seconds for a message of given size.

        Called once per (message, destination) pair, so the region resolution
        and RTT lookup are memoised per process pair and the jitter draw is
        inlined.  The arithmetic reproduces ``rng.jitter(base, f) + transfer``
        bit-for-bit (``spread + spread`` is IEEE-exact, and the operand order
        matches the wrapper it replaces), so simulations are unchanged.
        """
        by_src = self._pair_base.get(src)
        if by_src is None:
            by_src = self._pair_base[src] = {}
        pair = by_src.get(dst)
        if pair is None:
            src_region = self.region_of(src)
            dst_region = self.region_of(dst)
            if src_region == dst_region:
                base = self.parameters.intra_region_latency
            else:
                base = self.rtt_ms(src_region, dst_region) / 2.0 / 1000.0
            pair = by_src[dst] = (base, base * self._jitter_fraction)
        base, spread = pair
        transfer = size_bytes / self._bandwidth if size_bytes else 0.0
        if base == 0:
            latency = transfer  # jitter(0, f) draws nothing and returns 0.0
        else:
            latency = base + ((spread + spread) * self._random() - spread) + transfer
        per_message_overhead = self._per_message_overhead
        if latency < per_message_overhead:
            latency = per_message_overhead
        return latency + per_message_overhead

    def pair_params(self, src: str, dst: str) -> Tuple[float, float]:
        """The memoised ``(base, jitter spread)`` of a process pair — no draw.

        The delivery pipeline owns one jitter stream per *sender* (so a
        sender's draw sequence depends only on its own send order, which is
        invariant under kernel sharding) and resolves the pair constants
        through this method; :meth:`one_way_latency` remains for callers that
        want the model's own stream to do the drawing.
        """
        by_src = self._pair_base.get(src)
        if by_src is None:
            by_src = self._pair_base[src] = {}
        pair = by_src.get(dst)
        if pair is None:
            src_region = self.region_of(src)
            dst_region = self.region_of(dst)
            if src_region == dst_region:
                base = self.parameters.intra_region_latency
            else:
                base = self.rtt_ms(src_region, dst_region) / 2.0 / 1000.0
            pair = by_src[dst] = (base, base * self._jitter_fraction)
        return pair

    def min_cross_group_floor(self, groups: Mapping[str, object]) -> Optional[float]:
        """Smallest possible one-way latency between processes of different groups.

        ``groups`` maps process ids to an opaque group key (the sharded
        kernel passes owner-cluster ids).  The result is the conservative
        lookahead of the parallel kernel: no message sent between groups can
        arrive sooner than this.  The arithmetic mirrors the delivery
        pipeline's clamp exactly — ``max(base - spread, overhead) +
        overhead`` with a zero-size transfer — using the same float
        expressions, so the bound is tight *and* safe (the pipeline's jitter
        draw is ``base + ((spread + spread) * r - spread)`` with ``r >= 0``,
        and float addition is monotone).  Returns ``None`` when no two
        processes belong to different groups (no cross-group traffic is
        possible, hence no synchronisation barrier is needed).
        """
        if self._trace is not None:
            schedule = self.cross_group_floor_schedule(groups)
            if schedule is None:
                return None
            return min(floor for _, floor in schedule)
        best: Optional[float] = None
        for region_a, region_b in self._cross_group_region_pairs(groups):
            floor = self._base_floor(self._pair_base_latency(region_a, region_b))
            if best is None or floor < best:
                best = floor
        return best

    def _cross_group_region_pairs(self, groups: Mapping[str, object]) -> List[Tuple[Region, Region]]:
        """Region pairs with processes in different groups (deduplicated)."""
        regions_by_group: Dict[object, set] = {}
        for process_id, group in groups.items():
            regions_by_group.setdefault(group, set()).add(self.region_of(process_id))
        keys = sorted(regions_by_group, key=repr)
        pairs: List[Tuple[Region, Region]] = []
        seen: set = set()
        for index, group_a in enumerate(keys):
            for group_b in keys[index + 1:]:
                for region_a in sorted(regions_by_group[group_a]):
                    for region_b in sorted(regions_by_group[group_b]):
                        key = (region_a, region_b) if region_a <= region_b else (region_b, region_a)
                        if key not in seen:
                            seen.add(key)
                            pairs.append((region_a, region_b))
        return pairs

    def _pair_base_latency(self, region_a: Region, region_b: Region) -> float:
        if region_a == region_b:
            return self.parameters.intra_region_latency
        return self.rtt_ms(region_a, region_b) / 2.0 / 1000.0

    def _base_floor(self, base: float) -> float:
        """The pipeline's clamp applied to a base latency (see docstring above)."""
        overhead = self._per_message_overhead
        spread = base * self._jitter_fraction
        if base == 0:
            # The pipeline skips the jitter draw entirely for zero-base
            # pairs; latency is the clamped transfer.
            floor = overhead
        else:
            floor = base - spread
            if floor < overhead:
                floor = overhead
        return floor + overhead

    def cross_group_floor_schedule(
        self, groups: Mapping[str, object]
    ) -> Optional[List[Tuple[float, float]]]:
        """Piecewise-constant conservative floor: ``[(segment_start, floor), ...]``.

        The dynamic-latency generalisation of :meth:`min_cross_group_floor`:
        with an :class:`RttTrace` installed, the floor is recomputed per
        trace segment (for each window between consecutive breakpoints the
        traced pair's RTT minimum sits at a window edge, piecewise-linearity
        obliging), and the deployment forces a barrier at every segment
        boundary so no lookahead window straddles a floor change.  Without
        a trace the schedule is the single segment ``[(0.0, floor)]``.
        Returns ``None`` when no cross-group pair exists.
        """
        pairs = self._cross_group_region_pairs(groups)
        if not pairs:
            return None
        trace = self._trace
        if trace is None:
            best = min(self._base_floor(self._pair_base_latency(a, b)) for a, b in pairs)
            return [(0.0, best)]
        starts = [0.0]
        for t in trace.breakpoints():
            if t > starts[-1]:
                starts.append(t)
        schedule: List[Tuple[float, float]] = []
        for index, start in enumerate(starts):
            end = starts[index + 1] if index + 1 < len(starts) else None
            best: Optional[float] = None
            for region_a, region_b in pairs:
                if region_a == region_b:
                    base = self.parameters.intra_region_latency
                else:
                    if end is None:
                        rtt = trace.rtt_at(region_a, region_b, start)
                    else:
                        rtt = trace.window_min_rtt(region_a, region_b, start, end)
                    if rtt is None:
                        rtt = self.rtt_ms(region_a, region_b)
                    base = rtt / 2.0 / 1000.0
                floor = self._base_floor(base)
                if best is None or floor < best:
                    best = floor
            schedule.append((start, best))
        return schedule

    def pairs(self) -> Iterable[Tuple[Region, Region]]:
        """All region pairs known to the model."""
        return self._rtt_table.keys()


def paper_rtt_matrix() -> Dict[str, Dict[str, float]]:
    """Return Table II as a nested dict keyed by the paper's region labels."""
    labels = ["US", "EU", "Asia"]
    matrix: Dict[str, Dict[str, float]] = {}
    for a in labels:
        matrix[a] = {}
        for b in labels:
            matrix[a][b] = region_rtt_ms(a, b)
    return matrix


__all__ = [
    "LatencyModel",
    "LatencyParameters",
    "REGION_RTT_MS",
    "REGION_ALIASES",
    "Region",
    "TRIANGLE_HUB",
    "canonical_region",
    "paper_rtt_matrix",
    "region_rtt_ms",
]
