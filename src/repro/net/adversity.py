"""Dynamic network adversity: trace-driven RTTs and congestion surcharge.

Production WANs are not a static latency matrix.  This module supplies the
two dynamic-latency sources of the adversarial scenario pack:

* :class:`RttTrace` — a serializable, piecewise-linear ``(time, rtt_ms)``
  schedule per region pair, loadable from JSON (the shape of real cloud
  RTT measurements) or generated synthetically.  The latency model samples
  the trace at *send* time, so inter-region latency drifts over a run.
* :class:`CongestionModel` — load-dependent link latency.  Each sender's
  wire traffic to a remote region is accumulated in fixed windows, an
  M/M/1-style queueing surcharge ``service_time * rho / (1 - rho)`` is
  added per message, and declarative :class:`CrossTrafficStream` entries
  inject background cross-traffic into the utilization without simulating
  the foreign packets.

Determinism contract (the part that makes this subtle): the sharded kernel
requires every latency ingredient to be *shard-layout invariant*.

* Traces are pure functions of virtual time — invariant by construction.
  They can lower the RTT mid-run, so the conservative lookahead must track
  the trace: :meth:`~repro.net.latency.LatencyModel.cross_group_floor_schedule`
  publishes a per-segment floor and the deployment forces barriers at
  segment boundaries (no window ever straddles a floor change).
* Congestion state is keyed by the sender's *owner cluster*: a cluster's
  local event sequence — and with it the send order of all its processes —
  is identical under every shard layout, so the per-window byte counters
  evolve identically too.  The surcharge is non-negative and added *after*
  the latency floor clamp, so it can never undercut the lookahead and
  needs no barrier-grid changes.  No randomness is drawn anywhere in this
  module at simulation time (``strict_streams`` stays clean).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import config_rng

__all__ = [
    "CongestionConfig",
    "CongestionModel",
    "CrossTrafficStream",
    "RttTrace",
]


def _pair_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical (sorted) key for an unordered region pair."""
    return (a, b) if a <= b else (b, a)


@dataclass
class RttTrace:
    """Piecewise-linear RTT schedule per region pair (times in seconds, RTTs in ms).

    ``segments`` maps an unordered region pair to its breakpoints
    ``[(time, rtt_ms), ...]`` sorted by time.  Between breakpoints the RTT
    is linearly interpolated; before the first and after the last it
    extends as a constant.  Pairs absent from the trace keep the static
    table's RTT.

    A trace is *data*: it round-trips through JSON
    (:meth:`to_dict`/:meth:`from_dict`) and rides inside a
    :class:`~repro.harness.scenario.ScenarioSpec`, so multiprocess shard
    workers rebuild the identical schedule.
    """

    segments: Dict[Tuple[str, str], List[Tuple[float, float]]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, points: Dict[Tuple[str, str], Sequence[Tuple[float, float]]]) -> "RttTrace":
        """Build a trace from ``{(region_a, region_b): [(t, rtt_ms), ...]}``."""
        segments: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        for (a, b), series in points.items():
            segments[_pair_key(a, b)] = sorted((float(t), float(rtt)) for t, rtt in series)
        trace = cls(segments=segments)
        trace.validate()
        return trace

    @classmethod
    def synthetic(
        cls,
        pairs: Sequence[Tuple[str, str, float]],
        duration: float,
        seed: int = 1,
        step: float = 2.0,
        wander: float = 0.25,
        spike_probability: float = 0.15,
        spike_scale: float = 2.0,
    ) -> "RttTrace":
        """Generate a cloud-measurement-shaped trace.

        For each ``(region_a, region_b, base_rtt_ms)`` the RTT performs a
        bounded random walk around its base with occasional congestion
        spikes — the texture of real inter-region RTT measurements.  The
        generator runs at *configuration* time from its own plain seeded
        RNG (never a simulation stream), and the result is pure data, so
        the same arguments always produce the same trace.

        Args:
            pairs: Region pairs with their nominal RTTs in milliseconds.
            duration: Virtual seconds the trace must cover.
            seed: Generator seed (independent of scenario seeds).
            step: Seconds between breakpoints.
            wander: Max relative walk step per breakpoint.
            spike_probability: Chance a breakpoint is a spike.
            spike_scale: Spike height as a multiple of the base RTT.
        """
        if step <= 0:
            raise ConfigurationError("RttTrace.synthetic: step must be positive")
        # config_rng(seed) is random.Random(seed) by contract, so traces
        # generated before this module was migrated replay byte-for-byte.
        rng = config_rng(seed)
        segments: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        for region_a, region_b, base in pairs:
            series: List[Tuple[float, float]] = []
            rtt = float(base)
            t = 0.0
            while t <= duration + step:
                series.append((t, round(rtt, 3)))
                drift = 1.0 + rng.uniform(-wander, wander)
                if rng.random() < spike_probability:
                    rtt = base * spike_scale * drift
                else:
                    # Walk back toward the base so the trace stays bounded.
                    rtt = max(base * 0.5, min(base * spike_scale, (rtt + base) / 2.0 * drift))
                t += step
            segments[_pair_key(region_a, region_b)] = series
        trace = cls(segments=segments)
        trace.validate()
        return trace

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on an unusable trace."""
        if not self.segments:
            raise ConfigurationError("RttTrace has no region pairs")
        for pair, series in self.segments.items():
            if not series:
                raise ConfigurationError(f"RttTrace pair {pair!r} has no points")
            last = None
            for t, rtt in series:
                if rtt <= 0:
                    raise ConfigurationError(
                        f"RttTrace pair {pair!r}: rtt must be positive, got {rtt} at t={t}"
                    )
                if last is not None and t < last:
                    raise ConfigurationError(f"RttTrace pair {pair!r}: points must be time-sorted")
                last = t

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def rtt_at(self, region_a: str, region_b: str, time: float) -> Optional[float]:
        """RTT (ms) of a pair at a virtual time; ``None`` for untraced pairs."""
        series = self.segments.get(_pair_key(region_a, region_b))
        if series is None:
            return None
        first_t, first_rtt = series[0]
        if time <= first_t:
            return first_rtt
        for index in range(1, len(series)):
            t1, rtt1 = series[index]
            if time <= t1:
                t0, rtt0 = series[index - 1]
                if t1 == t0:
                    return rtt1
                frac = (time - t0) / (t1 - t0)
                return rtt0 + (rtt1 - rtt0) * frac
        return series[-1][1]

    def window_min_rtt(self, region_a: str, region_b: str, start: float, end: float) -> Optional[float]:
        """Smallest RTT a pair can take inside ``[start, end]``.

        Piecewise-linear functions attain their extrema at segment
        endpoints, so the minimum over a window is the min of the sampled
        window edges and every breakpoint strictly inside it.
        """
        series = self.segments.get(_pair_key(region_a, region_b))
        if series is None:
            return None
        best = min(self.rtt_at(region_a, region_b, start), self.rtt_at(region_a, region_b, end))
        for t, rtt in series:
            if start < t < end and rtt < best:
                best = rtt
        return best

    def breakpoints(self) -> List[float]:
        """Sorted unique breakpoint times across every traced pair."""
        times = {t for series in self.segments.values() for t, _ in series}
        return sorted(times)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable description (pairs become ``"a|b"`` keys)."""
        return {
            "segments": {
                f"{pair[0]}|{pair[1]}": [[t, rtt] for t, rtt in series]
                for pair, series in sorted(self.segments.items())
            }
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RttTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        segments: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        for key, series in payload.get("segments", {}).items():
            a, sep, b = key.partition("|")
            if not sep:
                raise ConfigurationError(f"RttTrace pair key {key!r} must look like 'regionA|regionB'")
            segments[_pair_key(a, b)] = [(float(t), float(rtt)) for t, rtt in series]
        trace = cls(segments=segments)
        trace.validate()
        return trace

    def to_file(self, path: str) -> None:
        """Write the trace as a JSON file (the :meth:`to_dict` shape)."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_file(cls, path: str) -> "RttTrace":
        """Load a trace from a JSON file written by :meth:`to_file`.

        The format is the :meth:`to_dict` shape — measured RTT series
        exported from cloud probes drop in directly::

            {"segments": {"us-west1|europe-west3": [[0.0, 148.0], [2.0, 151.3]]}}

        Validation mirrors :meth:`from_dict`: unsorted points, non-positive
        RTTs, malformed pair keys, or an empty trace raise
        :class:`ConfigurationError` rather than producing a silently wrong
        schedule.
        """
        import json

        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            raise ConfigurationError(f"RttTrace.from_file: cannot read {path!r}: {error}")
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"RttTrace.from_file: {path!r} must hold a JSON object, "
                f"got {type(payload).__name__}"
            )
        return cls.from_dict(payload)

    def copy(self) -> "RttTrace":
        """An independent deep copy."""
        return RttTrace(segments={pair: list(series) for pair, series in self.segments.items()})


@dataclass
class CrossTrafficStream:
    """Declarative background traffic loading one directed region link.

    The stream's bytes are never simulated as messages; they only raise the
    utilization the congestion model sees on ``src_region -> dst_region``
    while the stream is active (``start <= now < stop``).
    """

    src_region: str
    dst_region: str
    rate_bytes_per_sec: float
    start: float = 0.0
    stop: Optional[float] = None

    def active_rate(self, now: float) -> float:
        """Bytes/second this stream offers at a virtual time."""
        if now < self.start:
            return 0.0
        if self.stop is not None and now >= self.stop:
            return 0.0
        return self.rate_bytes_per_sec


@dataclass
class CongestionConfig:
    """Constants of the load-dependent latency model.

    Attributes:
        capacity_bytes_per_sec: Usable capacity of one inter-region link.
        window: Utilization accounting window in virtual seconds.
        service_time: Queueing-delay scale: the per-message surcharge is
            ``service_time * rho / (1 - rho)`` with utilization ``rho``.
        max_utilization: Cap on ``rho`` so the surcharge stays finite even
            when offered load exceeds capacity.
        streams: Background cross-traffic loading links without messages.
    """

    capacity_bytes_per_sec: float = 1.25e8
    window: float = 0.25
    service_time: float = 0.004
    max_utilization: float = 0.95
    streams: List[CrossTrafficStream] = field(default_factory=list)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on unusable constants."""
        if self.capacity_bytes_per_sec <= 0:
            raise ConfigurationError("CongestionConfig: capacity_bytes_per_sec must be positive")
        if self.window <= 0:
            raise ConfigurationError("CongestionConfig: window must be positive")
        if self.service_time < 0:
            raise ConfigurationError("CongestionConfig: service_time must be >= 0")
        if not 0.0 < self.max_utilization < 1.0:
            raise ConfigurationError("CongestionConfig: max_utilization must be in (0, 1)")
        for stream in self.streams:
            if stream.rate_bytes_per_sec < 0:
                raise ConfigurationError("CrossTrafficStream: rate_bytes_per_sec must be >= 0")
            if stream.stop is not None and stream.stop <= stream.start:
                raise ConfigurationError("CrossTrafficStream: stop must be after start")

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable description."""
        return {
            "capacity_bytes_per_sec": self.capacity_bytes_per_sec,
            "window": self.window,
            "service_time": self.service_time,
            "max_utilization": self.max_utilization,
            "streams": [
                {
                    "src_region": s.src_region,
                    "dst_region": s.dst_region,
                    "rate_bytes_per_sec": s.rate_bytes_per_sec,
                    "start": s.start,
                    "stop": s.stop,
                }
                for s in self.streams
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CongestionConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(payload)
        streams = [CrossTrafficStream(**entry) for entry in data.pop("streams", [])]
        config = cls(streams=streams, **data)
        config.validate()
        return config

    def copy(self) -> "CongestionConfig":
        """An independent deep copy."""
        return CongestionConfig(
            capacity_bytes_per_sec=self.capacity_bytes_per_sec,
            window=self.window,
            service_time=self.service_time,
            max_utilization=self.max_utilization,
            streams=[CrossTrafficStream(**vars(s)) for s in self.streams],
        )


class CongestionModel:
    """Per-link utilization tracker feeding an M/M/1-style surcharge.

    One model is shared by every delivery pipeline of a deployment.  State
    is keyed by ``(accounting key, src_region, dst_region)``, where the
    accounting key is the sender's owner cluster (falling back to the
    sender id on standalone networks): all of one cluster's processes live
    on one shard under every layout and their interleaved send order is
    layout-invariant, so the windowed byte counters — and with them every
    surcharge — are bit-identical however the simulation is sharded.

    The model draws no randomness and only ever *adds* latency after the
    pipeline's floor clamp, so the conservative lookahead is untouched.
    """

    def __init__(self, config: CongestionConfig, latency_model) -> None:
        config.validate()
        self.config = config
        self._latency_model = latency_model
        self._capacity = config.capacity_bytes_per_sec
        self._window = config.window
        self._service_time = config.service_time
        self._max_utilization = config.max_utilization
        #: (key, src_region, dst_region) -> [window_index, bytes_this_window]
        self._state: Dict[tuple, List] = {}
        #: (src_region, dst_region) -> streams loading that directed link.
        self._streams: Dict[Tuple[str, str], List[CrossTrafficStream]] = {}
        for stream in config.streams:
            self._streams.setdefault((stream.src_region, stream.dst_region), []).append(stream)

    def background_rate(self, src_region: str, dst_region: str, now: float) -> float:
        """Bytes/second of background cross-traffic on a link at ``now``."""
        streams = self._streams.get((src_region, dst_region))
        if not streams:
            return 0.0
        return sum(stream.active_rate(now) for stream in streams)

    def surcharge(self, key, sender: str, destination: str, size: int, now: float) -> float:
        """Queueing delay (seconds) for one wire message sent at ``now``.

        Utilization is the window's already-accounted bytes plus active
        background streams over the link capacity; the message's own bytes
        are accounted *after* computing its surcharge (a message does not
        queue behind itself).  Intra-region traffic pays nothing.
        """
        region_of = self._latency_model.region_of
        src_region = region_of(sender)
        dst_region = region_of(destination)
        if src_region == dst_region:
            return 0.0
        window = self._window
        window_index = int(now / window)
        state_key = (key, src_region, dst_region)
        acc = self._state.get(state_key)
        if acc is None:
            acc = self._state[state_key] = [window_index, 0.0]
        elif acc[0] != window_index:
            acc[0] = window_index
            acc[1] = 0.0
        offered = acc[1] / window + self.background_rate(src_region, dst_region, now)
        acc[1] += size
        if offered <= 0.0:
            return 0.0
        rho = offered / self._capacity
        if rho > self._max_utilization:
            rho = self._max_utilization
        return self._service_time * rho / (1.0 - rho)
