"""Simulated signatures and quorum certificates.

The paper assumes replicas are identified by public keys and cannot forge
each other's signatures.  Inside a single-process simulation we do not need
real elliptic-curve cryptography; we need *unforgeability by the code paths
that model Byzantine behaviour*.  A signature here is a token binding
``(signer, digest)`` to a per-signer secret kept in a registry.  Honest code
only creates signatures through :meth:`KeyRegistry.sign`, and verification
recomputes the token, so a Byzantine component cannot fabricate a signature
for a replica whose secret it does not hold (the registry only hands out a
replica's signing capability to that replica's own process).

The real CPU cost of signing/verification is modelled separately by the
network's processing-cost parameters so that message-complexity differences
between protocols remain visible in simulated throughput.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.errors import CryptoError


#: Token memo entry cap: keys are (signer, digest_hash) with small values,
#: so a simple entry bound replaces the old byte-based accounting.
_TOKEN_CACHE_MAX_ENTRIES = 1 << 20

#: Sentinel marking a registry-minted signature whose token has not been
#: derived yet (see :class:`Signature` — most tokens are never read).
_LAZY = object()


def _token(proto: "hashlib._Hash", digest_hash: int) -> int:
    """Keyed token binding a signer's secret to a message digest.

    A keyed blake2b over the *string hash* of the digest (not its bytes):
    CPython caches a string's hash on the string object, and signature
    objects carry a reference to the exact digest string they were created
    from, so the expensive part of tokenising even a kilobytes-long bundle
    digest is paid once per digest string, while the MAC itself runs over 8
    bytes.  Keying with the signer's secret keeps the original
    unforgeability contract: a token does not reveal anything a Byzantine
    component could use to mint tokens for other digests (unlike a plain
    ``hash ^ secret`` mix, which is invertible).

    ``proto`` is the signer's precomputed keyed hasher prototype: ``copy()``
    of a keyed blake2b skips the key schedule, which dominates an 8-byte
    MAC (most signs are cache misses — vote digests are unique — so this
    runs once per signature in a simulation).
    """
    mac = proto.copy()
    mac.update(digest_hash.to_bytes(8, "little", signed=True))
    return int.from_bytes(mac.digest(), "little")


class Signature:
    """A signature by ``signer`` over ``digest``.

    ``token`` is an integer for registry-produced signatures and a marker
    string for forged ones (so a forgery can never compare equal).  A plain
    slotted class rather than a frozen dataclass: one is allocated per
    signed message, and the frozen-dataclass ``__init__`` (one
    ``object.__setattr__`` per field) is several times slower.

    ``verified_by`` memoises a *positive* verification verdict on the object
    itself — it holds the registry that minted or first verified the
    signature.  Signatures travel the simulation by reference, never by
    serialization, so a registry-minted signature answers every later
    :meth:`KeyRegistry.verify` from the same registry with one identity
    check instead of re-deriving the token.  Scoping the memo to the
    registry keeps cross-trust-domain checks honest (a second registry whose
    secrets never produced the signature still runs the full check).  This
    preserves the unforgeability contract for the code paths that model
    Byzantine behaviour: forgeries are created through
    :meth:`KeyRegistry.forge`, which leaves the memo unset, and a
    fabricated ``Signature`` cannot carry a matching token anyway.  (A
    component that sets ``verified_by`` by hand is outside the model,
    exactly like one reading another replica's secret.)

    Tokens are derived *lazily*: in an honest run a registry-minted
    signature is verified via the ``verified_by`` memo and its token is
    never read, so :meth:`KeyRegistry.sign` skips the MAC entirely and the
    token materialises only when something actually compares it (a
    cross-registry check, a certificate replacing a signer's entry, a
    ``repr``).  The derivation goes through the minting registry, so the
    value is identical to an eagerly computed token.
    """

    __slots__ = ("signer", "digest", "_token", "verified_by")

    def __init__(
        self, signer: str, digest: str, token: object, verified_by: object = None
    ) -> None:
        self.signer = signer
        self.digest = digest
        self._token = token
        self.verified_by = verified_by

    @property
    def token(self) -> object:
        token = self._token
        if token is _LAZY:
            token = self._token = self.verified_by._derive_token(self.signer, self.digest)
        return token

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return (
            self.signer == other.signer
            and self.digest == other.digest
            and self.token == other.token
        )

    def __hash__(self) -> int:
        return hash((self.signer, self.digest, self.token))

    def __repr__(self) -> str:
        return f"Sig({self.signer},{self.token})"

    def __getstate__(self):
        # Cross-process shipping (multiprocess shard workers): materialise a
        # lazy token — the module-level ``_LAZY`` sentinel would lose its
        # identity across pickling — and drop the ``verified_by`` memo,
        # whose registry holds unpicklable keyed-hasher prototypes.  The
        # receiving worker's registry is a deterministic twin (secrets are
        # derived from ``(seed, process_id)``), so verification over there
        # re-derives the identical token and re-memoises.
        return (self.signer, self.digest, self.token)

    def __setstate__(self, state) -> None:
        self.signer, self.digest, self._token = state
        self.verified_by = None


@dataclass
class Certificate:
    """A set of signatures over one digest (a quorum certificate).

    Attributes:
        digest: The signed message digest.
        signatures: Signatures collected so far, keyed by signer.
        kind: Free-form label ("commit", "echo", "ready", "recs", ...) so the
            same container serves consensus QCs and BRD certificates.
    """

    digest: str
    kind: str = "commit"
    signatures: Dict[str, Signature] = field(default_factory=dict)

    def add(self, signature: Signature) -> None:
        """Add a signature; signatures over a different digest are rejected."""
        if signature.digest != self.digest:
            raise CryptoError(
                f"signature digest {signature.digest!r} does not match certificate "
                f"digest {self.digest!r}"
            )
        existing = self.signatures.get(signature.signer)
        if existing is not None and existing != signature:
            # Replacing a signer's entry can turn a once-valid certificate
            # invalid (e.g. a forged replacement), so the positive-validation
            # memo must not survive the swap.
            self.__dict__.pop("_valid_cache", None)
        self.signatures[signature.signer] = signature

    def signers(self) -> Set[str]:
        """The set of replica ids that have signed."""
        return set(self.signatures)

    def __len__(self) -> int:
        return len(self.signatures)

    def merge(self, other: "Certificate") -> None:
        """Union another certificate's signatures into this one."""
        for signature in other.signatures.values():
            self.add(signature)

    def copy(self) -> "Certificate":
        """Shallow copy (signatures are immutable)."""
        return Certificate(self.digest, self.kind, dict(self.signatures))

    def __getstate__(self):
        # The positive-validation memo is keyed by registry identity, which
        # does not survive a process boundary; drop it so the receiving
        # shard worker re-validates against its own registry twin.
        state = dict(self.__dict__)
        state.pop("_valid_cache", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


class KeyRegistry:
    """Key material and verification for every process in a scenario.

    One registry is shared by a whole simulation.  It also exposes helpers
    used throughout the protocols: quorum checks against a *specific* cluster
    membership (the heterogeneous part of Hamava: a certificate from cluster
    ``j`` must carry ``2 f_j + 1`` signatures *from members of C_j*).
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._secrets: Dict[str, str] = {}
        # Per-signer keyed-hasher prototypes, precomputed at registration
        # (copying a keyed blake2b skips the key schedule on every token).
        self._secret_keys: Dict[str, "hashlib._Hash"] = {}
        # Memo of correct tokens, nested signer -> digest string hash ->
        # token (nested so the per-call lookup allocates no key tuple).
        # Secrets are write-once, so entries never go stale; signing fills
        # it, so verifying an honestly-signed multicast at n destinations
        # costs one MAC total instead of n + 1.
        self._token_cache: Dict[str, Dict[int, int]] = {}

    # ------------------------------------------------------------------ #
    # Key management
    # ------------------------------------------------------------------ #
    def register(self, process_id: str) -> None:
        """Create key material for a process (idempotent)."""
        if process_id not in self._secrets:
            secret = hashlib.sha256(
                f"{self._seed}:{process_id}".encode("utf-8")
            ).hexdigest()
            self._secrets[process_id] = secret
            self._secret_keys[process_id] = hashlib.blake2b(
                key=secret.encode("utf-8")[:64], digest_size=8
            )

    def knows(self, process_id: str) -> bool:
        """Whether the process has registered keys."""
        return process_id in self._secrets

    # ------------------------------------------------------------------ #
    # Signing and verification
    # ------------------------------------------------------------------ #
    def sign(self, signer: str, digest: str) -> Signature:
        """Sign ``digest`` on behalf of ``signer``.

        Allocation-only on the hot path: the signature is born with the
        ``verified_by`` memo set and a lazy token (see :class:`Signature`),
        so signing costs one slotted object and the MAC is deferred until —
        usually never — something reads the token.
        """
        if signer not in self._secret_keys:
            raise CryptoError(f"unknown signer {signer!r}")
        signature = Signature.__new__(Signature)
        signature.signer = signer
        signature.digest = digest
        signature._token = _LAZY
        signature.verified_by = self
        return signature

    def _derive_token(self, signer: str, digest: str) -> int:
        """Compute (and memoise) the token for a signer/digest pair."""
        proto = self._secret_keys.get(signer)
        if proto is None:
            raise CryptoError(f"unknown signer {signer!r}")
        by_signer = self._token_cache.get(signer)
        if by_signer is None:
            by_signer = self._token_cache[signer] = {}
        digest_hash = hash(digest)
        token = by_signer.get(digest_hash)
        if token is None:
            if len(by_signer) >= _TOKEN_CACHE_MAX_ENTRIES:
                by_signer.clear()
            token = by_signer[digest_hash] = _token(proto, digest_hash)
        return token

    def verify(self, signature: Signature) -> bool:
        """Check that a signature was produced with the signer's secret.

        Signatures minted by — or previously verified against — *this*
        registry answer from the ``verified_by`` memo (see
        :class:`Signature`); only first-time or forged signatures derive
        and compare the token.
        """
        if signature.verified_by is self:
            return True
        if signature.signer not in self._secret_keys:
            return False
        if signature.token == self._derive_token(signature.signer, signature.digest):
            signature.verified_by = self
            return True
        return False

    def forge(self, signer: str, digest: str) -> Signature:
        """Produce an *invalid* signature claiming to be from ``signer``.

        Byzantine behaviours use this to attempt forgeries; verification will
        reject it.  Provided so attack tests never touch real secrets.
        """
        return Signature(signer=signer, digest=digest, token="forged-" + digest[:16])

    # ------------------------------------------------------------------ #
    # Certificates
    # ------------------------------------------------------------------ #
    def new_certificate(self, digest: str, kind: str = "commit") -> Certificate:
        """Create an empty certificate for a digest."""
        return Certificate(digest=digest, kind=kind)

    def certificate_valid(
        self,
        certificate: Optional[Certificate],
        members: Iterable[str],
        threshold: int,
        digest: Optional[str] = None,
    ) -> bool:
        """Validate a certificate against a membership and threshold.

        Args:
            certificate: The certificate to check (``None`` fails).
            members: The membership the signatures must come from.
            threshold: Minimum number of valid member signatures required.
            digest: If given, the certificate must cover exactly this digest.

        Returns:
            ``True`` when at least ``threshold`` signatures are valid, were
            produced by distinct members of ``members``, and cover the
            expected digest.
        """
        if certificate is None:
            return False
        if digest is not None and certificate.digest != digest:
            return False
        # Positive results are memoised on the certificate object itself: the
        # same certificate instance is re-validated by every receiving
        # replica (phase broadcasts, bundle shares), and signatures are only
        # ever *added* (replacement invalidates the memo in Certificate.add),
        # so a satisfied (registry, digest, threshold, membership) check can
        # never become unsatisfied.  The registry is part of the key: a
        # certificate may be checked against a second trust domain whose
        # secrets never produced the signatures.  Negative results are
        # recomputed.
        key = (self, certificate.digest, threshold, tuple(members))
        cache = certificate.__dict__.get("_valid_cache")
        if cache is not None and key in cache:
            return True
        member_set = set(key[3])
        valid = 0
        for signature in certificate.signatures.values():
            if signature.signer not in member_set:
                continue
            if signature.digest != certificate.digest:
                continue
            if not self.verify(signature):
                continue
            valid += 1
        if valid >= threshold:
            if cache is None:
                cache = certificate.__dict__["_valid_cache"] = set()
            cache.add(key)
            return True
        return False


__all__ = ["Certificate", "KeyRegistry", "Signature"]
