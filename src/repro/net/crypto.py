"""Simulated signatures and quorum certificates.

The paper assumes replicas are identified by public keys and cannot forge
each other's signatures.  Inside a single-process simulation we do not need
real elliptic-curve cryptography; we need *unforgeability by the code paths
that model Byzantine behaviour*.  A signature here is a token binding
``(signer, digest)`` to a per-signer secret kept in a registry.  Honest code
only creates signatures through :meth:`KeyRegistry.sign`, and verification
recomputes the token, so a Byzantine component cannot fabricate a signature
for a replica whose secret it does not hold (the registry only hands out a
replica's signing capability to that replica's own process).

The real CPU cost of signing/verification is modelled separately by the
network's processing-cost parameters so that message-complexity differences
between protocols remain visible in simulated throughput.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.errors import CryptoError


#: Token-memo bound in approximate bytes of retained digest strings; when
#: hit, the cache resets rather than growing forever.  Byte-based because
#: bundle digests are ``repr`` strings that can run to kilobytes each.
_TOKEN_CACHE_MAX_BYTES = 64 << 20


def _token(secret: str, digest: str) -> str:
    """Keyed digest binding a signer's secret to a message digest."""
    return hashlib.blake2b(
        digest.encode("utf-8"), key=secret.encode("utf-8")[:64], digest_size=16
    ).hexdigest()


@dataclass(frozen=True)
class Signature:
    """A signature by ``signer`` over ``digest``."""

    signer: str
    digest: str
    token: str

    def __repr__(self) -> str:
        return f"Sig({self.signer},{self.token[:8]})"


@dataclass
class Certificate:
    """A set of signatures over one digest (a quorum certificate).

    Attributes:
        digest: The signed message digest.
        signatures: Signatures collected so far, keyed by signer.
        kind: Free-form label ("commit", "echo", "ready", "recs", ...) so the
            same container serves consensus QCs and BRD certificates.
    """

    digest: str
    kind: str = "commit"
    signatures: Dict[str, Signature] = field(default_factory=dict)

    def add(self, signature: Signature) -> None:
        """Add a signature; signatures over a different digest are rejected."""
        if signature.digest != self.digest:
            raise CryptoError(
                f"signature digest {signature.digest!r} does not match certificate "
                f"digest {self.digest!r}"
            )
        self.signatures[signature.signer] = signature

    def signers(self) -> Set[str]:
        """The set of replica ids that have signed."""
        return set(self.signatures)

    def __len__(self) -> int:
        return len(self.signatures)

    def merge(self, other: "Certificate") -> None:
        """Union another certificate's signatures into this one."""
        for signature in other.signatures.values():
            self.add(signature)

    def copy(self) -> "Certificate":
        """Shallow copy (signatures are immutable)."""
        return Certificate(self.digest, self.kind, dict(self.signatures))


class KeyRegistry:
    """Key material and verification for every process in a scenario.

    One registry is shared by a whole simulation.  It also exposes helpers
    used throughout the protocols: quorum checks against a *specific* cluster
    membership (the heterogeneous part of Hamava: a certificate from cluster
    ``j`` must carry ``2 f_j + 1`` signatures *from members of C_j*).
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._secrets: Dict[str, str] = {}
        # Memo of correct tokens by (signer, digest).  Secrets are write-once
        # (register() never overwrites), so a cached token never goes stale.
        # Signing fills it, so verifying an honestly-signed multicast at its
        # n destinations costs one keyed hash total instead of n + 1.
        self._token_cache: Dict[tuple, str] = {}
        self._token_cache_bytes = 0

    # ------------------------------------------------------------------ #
    # Key management
    # ------------------------------------------------------------------ #
    def register(self, process_id: str) -> None:
        """Create key material for a process (idempotent)."""
        if process_id not in self._secrets:
            self._secrets[process_id] = hashlib.sha256(
                f"{self._seed}:{process_id}".encode("utf-8")
            ).hexdigest()

    def knows(self, process_id: str) -> bool:
        """Whether the process has registered keys."""
        return process_id in self._secrets

    # ------------------------------------------------------------------ #
    # Signing and verification
    # ------------------------------------------------------------------ #
    def sign(self, signer: str, digest: str) -> Signature:
        """Sign ``digest`` on behalf of ``signer``."""
        secret = self._secrets.get(signer)
        if secret is None:
            raise CryptoError(f"unknown signer {signer!r}")
        return Signature(
            signer=signer, digest=digest, token=self._cached_token(signer, secret, digest)
        )

    def verify(self, signature: Signature) -> bool:
        """Check that a signature was produced with the signer's secret."""
        secret = self._secrets.get(signature.signer)
        if secret is None:
            return False
        return signature.token == self._cached_token(signature.signer, secret, signature.digest)

    def _cached_token(self, signer: str, secret: str, digest: str) -> str:
        """The correct token for ``(signer, digest)``, memoised."""
        key = (signer, digest)
        token = self._token_cache.get(key)
        if token is None:
            if self._token_cache_bytes >= _TOKEN_CACHE_MAX_BYTES:
                self._token_cache.clear()
                self._token_cache_bytes = 0
            token = _token(secret, digest)
            self._token_cache[key] = token
            self._token_cache_bytes += len(digest) + len(signer) + 96
        return token

    def forge(self, signer: str, digest: str) -> Signature:
        """Produce an *invalid* signature claiming to be from ``signer``.

        Byzantine behaviours use this to attempt forgeries; verification will
        reject it.  Provided so attack tests never touch real secrets.
        """
        return Signature(signer=signer, digest=digest, token="forged-" + digest[:16])

    # ------------------------------------------------------------------ #
    # Certificates
    # ------------------------------------------------------------------ #
    def new_certificate(self, digest: str, kind: str = "commit") -> Certificate:
        """Create an empty certificate for a digest."""
        return Certificate(digest=digest, kind=kind)

    def certificate_valid(
        self,
        certificate: Optional[Certificate],
        members: Iterable[str],
        threshold: int,
        digest: Optional[str] = None,
    ) -> bool:
        """Validate a certificate against a membership and threshold.

        Args:
            certificate: The certificate to check (``None`` fails).
            members: The membership the signatures must come from.
            threshold: Minimum number of valid member signatures required.
            digest: If given, the certificate must cover exactly this digest.

        Returns:
            ``True`` when at least ``threshold`` signatures are valid, were
            produced by distinct members of ``members``, and cover the
            expected digest.
        """
        if certificate is None:
            return False
        if digest is not None and certificate.digest != digest:
            return False
        member_set = set(members)
        valid = 0
        for signature in certificate.signatures.values():
            if signature.signer not in member_set:
                continue
            if signature.digest != certificate.digest:
                continue
            if not self.verify(signature):
                continue
            valid += 1
        return valid >= threshold


__all__ = ["Certificate", "KeyRegistry", "Signature"]
