"""Message and envelope types.

Protocol messages are small frozen-ish dataclasses (subclasses of
:class:`Message`).  The network wraps each payload in an :class:`Envelope`
that records the sender, destination, the sender's signature over the
payload digest, and the size in bytes used by the bandwidth model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Any, Optional

_message_counter = itertools.count()


def payload_digest(value: Any) -> str:
    """Produce a deterministic, hashable digest string for a payload.

    The digest only needs to be collision-resistant *within a simulation*;
    ``repr`` over dataclasses with deterministic field ordering is enough and
    is far cheaper than real hashing for the hot path.
    """
    return repr(value)


@dataclass
class Message:
    """Base class for every protocol message.

    Subclasses add their own fields.  ``estimated_size`` feeds the bandwidth
    term of the latency model; ``verification_cost`` models the CPU time a
    receiver spends checking signatures carried inside the message.
    """

    def type_name(self) -> str:
        """Short name used in traces and metrics."""
        return type(self).__name__

    def estimated_size(self) -> int:
        """Approximate serialized size in bytes."""
        return 128

    def verification_cost(self) -> int:
        """Number of signature verifications a receiver performs."""
        return 1

    def digest(self) -> str:
        """Digest of the message contents, used for signing."""
        parts = [type(self).__name__]
        for f in fields(self):
            parts.append(f"{f.name}={payload_digest(getattr(self, f.name))}")
        return "|".join(parts)


@dataclass
class Envelope:
    """A routed message: payload plus transport metadata."""

    sender: str
    destination: str
    payload: Message
    signature: Optional[Any] = None
    sent_at: float = 0.0
    size_bytes: int = 0
    envelope_id: int = field(default_factory=lambda: next(_message_counter))

    def type_name(self) -> str:
        """Type name of the wrapped payload."""
        return self.payload.type_name()


__all__ = ["Envelope", "Message", "payload_digest"]
