"""Message and envelope types.

Protocol messages are small frozen-ish dataclasses (subclasses of
:class:`Message`).  The network wraps each payload in an :class:`Envelope`
that records the sender, destination, the sender's signature over the
payload digest, and the size in bytes used by the bandwidth model.

Messages are treated as immutable once handed to the network: the digest and
estimated size are computed lazily and cached per instance, so re-sending or
re-signing the same payload (retransmits, broadcasts fanned out one link at
a time) never recomputes the full-field ``repr`` walk.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple

#: Per-class tuple of dataclass field names, so :meth:`Message.digest` does
#: not re-run the ``dataclasses.fields`` machinery for every new instance.
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}  # detlint: disable=DET004 -- pure per-class memo of immutable field tuples; value depends only on the class

#: Per-class compiled digest walkers (see :func:`_compile_digest_fn`).
_DIGEST_FNS: Dict[type, Any] = {}  # detlint: disable=DET004 -- pure per-class memo; the compiled walker is a deterministic function of the class

#: Per-class memo of the unbound ``digest`` method (or ``False``): spares the
#: hot path one ``getattr`` + ``callable`` probe per field value.  Keyed on
#: the class because ``digest`` is a class-level method where it exists
#: (dataclass *fields* named ``digest``, e.g. ``Certificate.digest``, live on
#: instances and correctly resolve to ``False`` here).
_DIGEST_METHODS: Dict[type, Any] = {}  # detlint: disable=DET004 -- pure per-class memo; resolves to the same unbound method in every process


def payload_digest(value: Any) -> str:
    """Produce a deterministic, hashable digest string for a payload.

    The digest only needs to be collision-resistant *within a simulation*;
    ``repr`` over dataclasses with deterministic field ordering is enough and
    is far cheaper than real hashing for the hot path.  Values that expose a
    ``digest()`` method (nested messages, operation bundles) answer from
    their own per-instance cache instead of being re-walked.
    """
    cls = type(value)
    method = _DIGEST_METHODS.get(cls)
    if method is None:
        candidate = getattr(cls, "digest", None)
        method = candidate if callable(candidate) else False
        _DIGEST_METHODS[cls] = method
    if method is not False:
        return method(value)
    return repr(value)


def _compile_digest_fn(cls: type, names: Tuple[str, ...]):
    """Build a specialized digest walker for one message class.

    The same code-generation trick ``dataclasses`` uses for ``__init__``:
    a straight-line function with direct attribute loads replaces the
    name-lookup loop, since ``digest`` runs once for every signed message.
    String fields (ids, keys, phase names, embedded digests — the
    majority) are framed as ``s<len>|<content>``: the length marker keeps
    field boundaries unambiguous even though the content may contain the
    ``'|'`` separator (embedded digests always do), and the ``s`` prefix
    separates them from non-string fields, whose ``repr`` never matches
    ``s<digits>``.  Unlike ``repr``-quoting this never copies the content
    (value digests run to kilobytes), so two distinct messages cannot
    share a digest — and therefore a signature — by boundary aliasing.
    ``int`` fields (cluster ids, rounds, views, sequence numbers — the bulk
    of every protocol message) and ``None`` short-circuit straight to their
    repr, skipping the per-value method-dispatch probe; exact ``int`` keys
    cannot be digest-bearing, so the fast path loses nothing.  Other values
    go through the ``payload_digest`` dispatch (inlined), so nested
    digest-bearing values answer from their caches.
    """
    lines = [
        "def compiled(self, _methods, _repr, _getattr, _callable):",
        f"    parts = [{cls.__name__!r}]",
        "    ap = parts.append",
    ]
    for name in names:
        lines += [
            f"    v = self.{name}",
            "    if v.__class__ is str:",
            "        ap('s%d' % len(v))",
            "        ap(v)",
            "    elif v.__class__ is int:",
            "        ap(_repr(v))",
            "    elif v is None:",
            "        ap('None')",
            "    else:",
            "        m = _methods.get(v.__class__)",
            "        if m is None:",
            "            cand = _getattr(v.__class__, 'digest', None)",
            "            m = cand if _callable(cand) else False",
            "            _methods[v.__class__] = m",
            "        ap(m(v) if m is not False else _repr(v))",
        ]
    lines.append("    return '|'.join(parts)")
    namespace: Dict[str, Any] = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - trusted, class-derived source
    return namespace["compiled"]


@dataclass
class Message:
    """Base class for every protocol message.

    Subclasses add their own fields.  ``estimated_size`` feeds the bandwidth
    term of the latency model; ``verification_cost`` models the CPU time a
    receiver spends checking signatures carried inside the message.
    """

    def type_name(self) -> str:
        """Short name used in traces and metrics."""
        return type(self).__name__

    def estimated_size(self) -> int:
        """Approximate serialized size in bytes."""
        return 128

    def cached_size(self) -> int:
        """:meth:`estimated_size`, computed once per instance.

        The network calls this on every dispatch; bundles recompute their
        size from nested certificates, so caching it matters on the hot path.
        """
        cache = self.__dict__
        size = cache.get("_size_cache")
        if size is None:
            size = self.estimated_size()
            cache["_size_cache"] = size
        return size

    def verification_cost(self) -> int:
        """Number of signature verifications a receiver performs."""
        return 1

    def digest(self) -> str:
        """Digest of the message contents, used for signing.

        Cached per instance: messages are logically immutable once signed or
        sent, so the first computation (a full-field ``repr`` walk) is also
        the last.
        """
        cache = self.__dict__
        digest = cache.get("_digest_cache")
        if digest is None:
            cls = type(self)
            fn = _DIGEST_FNS.get(cls)
            if fn is None:
                names = _FIELD_NAMES.get(cls)
                if names is None:
                    names = _FIELD_NAMES[cls] = tuple(f.name for f in fields(self))
                # Field names are constant per class, so only the values go
                # into the digest; the class name plus fixed field order
                # keeps digests of different message types distinct.
                fn = _DIGEST_FNS[cls] = _compile_digest_fn(cls, names)
            digest = cache["_digest_cache"] = fn(
                self, _DIGEST_METHODS, repr, getattr, callable
            )
        return digest


class Envelope:
    """The immutable transport header of one routed message.

    One envelope is allocated per *message*, not per destination: a multicast
    fan-out shares a single header across every copy (the sender, payload,
    signature, send time, size, and precomputed receiver cost are identical
    for all destinations; the destination itself lives in the delivery
    pipeline's per-port schedule, never on the envelope).  This killed the
    largest remaining allocation site after events — the old per-destination
    dataclass init.

    Slots-only with a plain positional constructor (no dataclass machinery):
    envelopes are treated as immutable once handed to the network.
    """

    __slots__ = ("sender", "payload", "signature", "sent_at", "size_bytes", "processing")

    def __init__(
        self,
        sender: str,
        payload: Message,
        signature: Optional[Any] = None,
        sent_at: float = 0.0,
        size_bytes: int = 0,
        processing: float = 0.0,
    ) -> None:
        self.sender = sender
        self.payload = payload
        self.signature = signature
        self.sent_at = sent_at
        self.size_bytes = size_bytes
        #: Receiver-side CPU time, precomputed once per message at dispatch
        #: (it depends only on the payload and the network config).
        self.processing = processing

    def type_name(self) -> str:
        """Type name of the wrapped payload."""
        return self.payload.type_name()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Envelope from={self.sender!r} {self.payload.type_name()}>"


__all__ = ["Envelope", "Message", "payload_digest"]
