"""Message and envelope types.

Protocol messages are small frozen-ish dataclasses (subclasses of
:class:`Message`).  The network wraps each payload in an :class:`Envelope`
that records the sender, destination, the sender's signature over the
payload digest, and the size in bytes used by the bandwidth model.

Messages are treated as immutable once handed to the network: the digest and
estimated size are computed lazily and cached per instance, so re-sending or
re-signing the same payload (retransmits, broadcasts fanned out one link at
a time) never recomputes the full-field ``repr`` walk.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Any, Optional

_message_counter = itertools.count()


def payload_digest(value: Any) -> str:
    """Produce a deterministic, hashable digest string for a payload.

    The digest only needs to be collision-resistant *within a simulation*;
    ``repr`` over dataclasses with deterministic field ordering is enough and
    is far cheaper than real hashing for the hot path.
    """
    return repr(value)


@dataclass
class Message:
    """Base class for every protocol message.

    Subclasses add their own fields.  ``estimated_size`` feeds the bandwidth
    term of the latency model; ``verification_cost`` models the CPU time a
    receiver spends checking signatures carried inside the message.
    """

    def type_name(self) -> str:
        """Short name used in traces and metrics."""
        return type(self).__name__

    def estimated_size(self) -> int:
        """Approximate serialized size in bytes."""
        return 128

    def cached_size(self) -> int:
        """:meth:`estimated_size`, computed once per instance.

        The network calls this on every dispatch; bundles recompute their
        size from nested certificates, so caching it matters on the hot path.
        """
        cache = self.__dict__
        size = cache.get("_size_cache")
        if size is None:
            size = self.estimated_size()
            cache["_size_cache"] = size
        return size

    def verification_cost(self) -> int:
        """Number of signature verifications a receiver performs."""
        return 1

    def digest(self) -> str:
        """Digest of the message contents, used for signing.

        Cached per instance: messages are logically immutable once signed or
        sent, so the first computation (a full-field ``repr`` walk) is also
        the last.
        """
        cache = self.__dict__
        digest = cache.get("_digest_cache")
        if digest is None:
            parts = [type(self).__name__]
            for f in fields(self):
                parts.append(f"{f.name}={payload_digest(getattr(self, f.name))}")
            digest = "|".join(parts)
            cache["_digest_cache"] = digest
        return digest


@dataclass(slots=True)
class Envelope:
    """A routed message: payload plus transport metadata.

    Slotted: the network allocates one per (message, destination) pair, which
    makes envelopes the most-allocated object in any run after events.
    """

    sender: str
    destination: str
    payload: Message
    signature: Optional[Any] = None
    sent_at: float = 0.0
    size_bytes: int = 0
    envelope_id: int = field(default_factory=lambda: next(_message_counter))

    def type_name(self) -> str:
        """Type name of the wrapped payload."""
        return self.payload.type_name()


__all__ = ["Envelope", "Message", "payload_digest"]
