"""Network substrate: messages, simulated crypto, links, and geo latency.

This package provides the communication abstractions the paper assumes:

* authenticated perfect point-to-point links (``apl``),
* authenticated best-effort broadcast (``abeb``),
* signatures and quorum certificates,
* a geo-latency model seeded with the paper's Table II inter-region RTTs.

Everything runs on top of the discrete-event simulator; no sockets are used.
"""

from repro.net.crypto import Certificate, KeyRegistry, Signature
from repro.net.latency import REGION_RTT_MS, LatencyModel, Region
from repro.net.links import AuthenticatedBestEffortBroadcast, AuthenticatedPerfectLink
from repro.net.message import Envelope, Message
from repro.net.network import DeliveryPipeline, Network, NetworkConfig

__all__ = [
    "AuthenticatedBestEffortBroadcast",
    "AuthenticatedPerfectLink",
    "Certificate",
    "DeliveryPipeline",
    "Envelope",
    "KeyRegistry",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkConfig",
    "Region",
    "REGION_RTT_MS",
    "Signature",
]
