"""The simulated network: routing, latency, CPU queues, and fault injection.

The network routes :class:`~repro.net.message.Envelope` objects between
registered processes.  Delivery time is the sum of

* a sender-side serialization stagger (per destination),
* the geo latency from the :class:`~repro.net.latency.LatencyModel`
  (including a bandwidth term proportional to message size), and
* receiver-side processing time, served from a per-process CPU queue whose
  cost grows with the number of signatures the message carries.

The CPU queue is what makes protocol *message complexity* visible in
simulated throughput: a PBFT-style all-to-all phase loads every replica with
O(n) verifications per decision, while a HotStuff-style linear phase loads
only the leader.  This mirrors the throughput gap the paper observes between
AVA-BFTSMART and AVA-HOTSTUFF.

Fault injection supports crash-stop processes, directed message filters
(used to model partitions and Byzantine message dropping), and statistics
used by the complexity analyses.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from heapq import heappush

from repro.errors import NetworkError
from repro.net.crypto import KeyRegistry, Signature
from repro.net.latency import LatencyModel
from repro.net.message import Envelope, Message
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.simulator import Simulator

#: A drop rule: returns True when the envelope must be dropped.
DropRule = Callable[[Envelope], bool]


@dataclass
class NetworkConfig:
    """Processing-cost constants for the network (times in seconds).

    Attributes:
        send_overhead: Sender-side cost to serialize and push one message.
        base_processing: Receiver-side fixed cost to handle one message.
        signature_verify_cost: Receiver-side cost per signature verification.
        verify_envelopes: Whether the transport drops envelopes whose sender
            signature does not verify (authenticated-link property).
        cpu_model: When ``True`` (default) receivers process messages through
            a serial CPU queue; when ``False`` processing cost is ignored
            (useful for pure-logic unit tests).
    """

    send_overhead: float = 0.00002
    base_processing: float = 0.00001
    signature_verify_cost: float = 0.00008
    verify_envelopes: bool = True
    cpu_model: bool = True


@dataclass
class NetworkStats:
    """Counters describing all traffic that crossed the network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    by_type: Counter = field(default_factory=Counter)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict snapshot of the scalar counters."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
        }


class Network:
    """Routes envelopes between processes over the simulated topology.

    Args:
        simulator: The simulation kernel.
        latency_model: Geo latency model; processes must be placed on it.
        registry: Key registry used to sign and verify envelopes.
        config: Processing-cost constants.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: LatencyModel,
        registry: KeyRegistry,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model
        self.registry = registry
        self.config = config or NetworkConfig()
        # Config constants are read on every send and delivery; they are
        # fixed for the lifetime of a network, so bind them once instead of
        # paying four dataclass attribute reads per message.
        self._cpu_model = self.config.cpu_model
        self._send_overhead = self.config.send_overhead
        self._base_processing = self.config.base_processing
        self._signature_verify_cost = self.config.signature_verify_cost
        self._verify_envelopes = self.config.verify_envelopes
        self.stats = NetworkStats()
        #: The simulator's event queue, held directly: delivery and CPU-drain
        #: events are the two most-scheduled events in any run, so they are
        #: pushed without the per-call scheduling wrapper (times here are
        #: always >= now by construction, so the wrapper's guard adds nothing).
        self._equeue = simulator._queue
        self._processes: Dict[str, Process] = {}
        self._cpu_free: Dict[str, float] = {}
        #: Per-destination FIFO of (finish_time, envelope) hand-overs awaiting
        #: the resident drain event (at most one pending drain per destination).
        self._cpu_queues: Dict[str, deque] = {}
        self._drop_rules: List[DropRule] = []

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def register(self, process: Process, region: str = "us-west1") -> None:
        """Attach a process to the network and place it in a region."""
        self._processes[process.process_id] = process
        self.latency_model.place(process.process_id, region)
        self.registry.register(process.process_id)
        self._cpu_free.setdefault(process.process_id, 0.0)
        process.attach(self)

    def deregister(self, process_id: str) -> None:
        """Detach a process; subsequent messages to it are dropped."""
        self._processes.pop(process_id, None)

    def process(self, process_id: str) -> Optional[Process]:
        """Look up a registered process by id."""
        return self._processes.get(process_id)

    def known_processes(self) -> List[str]:
        """Identifiers of all registered processes."""
        return list(self._processes)

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def add_drop_rule(self, rule: DropRule) -> DropRule:
        """Install a drop rule; returns it so callers can remove it later."""
        self._drop_rules.append(rule)
        return rule

    def remove_drop_rule(self, rule: DropRule) -> None:
        """Remove a previously installed drop rule."""
        if rule in self._drop_rules:
            self._drop_rules.remove(rule)

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> DropRule:
        """Drop all traffic between two groups of processes (both ways)."""
        set_a = set(group_a)
        set_b = set(group_b)

        def rule(envelope: Envelope) -> bool:
            return (envelope.sender in set_a and envelope.destination in set_b) or (
                envelope.sender in set_b and envelope.destination in set_a
            )

        return self.add_drop_rule(rule)

    def isolate(self, process_id: str) -> DropRule:
        """Drop all traffic to and from one process."""

        def rule(envelope: Envelope) -> bool:
            return process_id in (envelope.sender, envelope.destination)

        return self.add_drop_rule(rule)

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: str,
        destination: str,
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send a single message from ``sender`` to ``destination``.

        Point-to-point sends outnumber multicasts roughly five to one in the
        protocols (votes, client requests/responses, inter-cluster targets),
        so the single-destination case is laid out straight-line here instead
        of going through the generic fan-out loop.  The arithmetic and
        side-effect order mirror :meth:`_dispatch` exactly.
        """
        processes = self._processes
        process = processes.get(sender)
        if process is None:
            raise NetworkError(f"unknown sender {sender!r}")
        if process.crashed:
            return
        now = self.simulator.now
        size = payload.cached_size()
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        stats.by_type[type(payload).__name__] += 1
        if self._cpu_model:
            cpu_free = self._cpu_free
            departure = cpu_free.get(sender, 0.0)
            if departure < now:
                departure = now
            departure += self._send_overhead
            cpu_free[sender] = departure
            processing = (
                self._base_processing
                + payload.verification_cost() * self._signature_verify_cost
            )
        else:
            departure = now
            processing = 0.0
        envelope = Envelope(sender, destination, payload, signature, now, size, processing)
        if self._drop_rules and self._should_drop(envelope):
            stats.messages_dropped += 1
            return
        if destination not in processes:
            stats.messages_dropped += 1
            return
        if destination == sender:
            arrival = departure + self.latency_model.self_delivery_latency(size)
        else:
            arrival = departure + self.latency_model.one_way_latency(sender, destination, size)
        queue = self._equeue
        sequence = queue._sequence
        queue._sequence = sequence + 1
        queue._live += 1
        heappush(
            queue._heap,
            Event((arrival, 0, sequence, self._deliver, envelope, False, "net:deliver")),
        )

    def multicast(
        self,
        sender: str,
        destinations: Sequence[str],
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send one message to many destinations with sender-side staggering."""
        self._dispatch(sender, destinations, payload, signature)

    # ------------------------------------------------------------------ #
    # Internal delivery machinery
    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        sender: str,
        destinations: Sequence[str],
        payload: Message,
        signature: Optional[Signature],
    ) -> None:
        # This loop runs once per (message, destination) pair — the hottest
        # code in any simulation after the event loop itself.  Per-message
        # state (size, counters, config flags) is hoisted out of the loop,
        # and the fan-out's near-sorted arrival events are inserted with one
        # bulk `schedule_batch` call instead of one scheduling call per
        # destination.  Sequence numbers are still assigned in destination
        # order, so delivery order is identical to per-destination pushes.
        processes = self._processes
        if sender not in processes:
            raise NetworkError(f"unknown sender {sender!r}")
        if processes[sender].crashed:
            return
        now = self.simulator.now
        size = payload.cached_size()
        stats = self.stats
        count = len(destinations)
        stats.messages_sent += count
        stats.bytes_sent += size * count
        stats.by_type[type(payload).__name__] += count
        drop_rules = self._drop_rules
        cpu_model = self._cpu_model
        if cpu_model:
            send_cost = self._send_overhead
            departure = max(now, self._cpu_free.get(sender, 0.0))
            processing = (
                self._base_processing
                + payload.verification_cost() * self._signature_verify_cost
            )
        else:
            send_cost = 0.0
            departure = now
            processing = 0.0
        latency_model = self.latency_model
        one_way_latency = latency_model.one_way_latency
        self_delivery_latency = latency_model.self_delivery_latency
        dropped = 0
        batch: List[tuple] = []
        append = batch.append
        for destination in destinations:
            departure += send_cost
            envelope = Envelope(sender, destination, payload, signature, now, size, processing)
            if drop_rules and self._should_drop(envelope):
                dropped += 1
                continue
            if destination not in processes:
                dropped += 1
                continue
            if destination == sender:
                # Self-delivery fast path (abeb includes the sender): the hop
                # is same-region by construction, so the latency-model region
                # resolution is skipped.  The jitter draw and the arrival
                # arithmetic are kept identical, and _deliver skips the
                # signature re-verification for self-addressed envelopes.
                append((departure + self_delivery_latency(size), envelope))
            else:
                append((departure + one_way_latency(sender, destination, size), envelope))
        if dropped:
            stats.messages_dropped += dropped
        if len(batch) == 1:
            self.simulator.schedule_at(batch[0][0], self._deliver, 0, "net:deliver", batch[0][1])
        elif batch:
            self.simulator.schedule_batch(batch, self._deliver, 0, "net:deliver")
        if cpu_model:
            self._cpu_free[sender] = departure

    def _should_drop(self, envelope: Envelope) -> bool:
        return any(rule(envelope) for rule in self._drop_rules)

    def _deliver(self, envelope: Envelope) -> None:
        """Arrival at the destination: fires at the envelope's arrival time."""
        destination = envelope.destination
        target = self._processes.get(destination)
        if target is None or target.crashed:
            self.stats.messages_dropped += 1
            return
        if (
            self._verify_envelopes
            and envelope.signature is not None
            and envelope.sender != destination
        ):
            if not self.registry.verify(envelope.signature):
                self.stats.messages_dropped += 1
                return
        if self._cpu_model:
            arrival = self.simulator.now
            cpu_free = self._cpu_free
            start = cpu_free.get(destination, 0.0)
            if start < arrival:
                start = arrival
            finish = start + envelope.processing
            cpu_free[destination] = finish
            # Resident CPU-queue drain: instead of one scheduled event per
            # queued message, each destination keeps a FIFO of (finish,
            # envelope) hand-overs and at most ONE pending drain event that
            # re-arms itself.  Arrival order equals hand-over order because
            # finish times are assigned monotonically per destination here.
            queues = self._cpu_queues
            queue = queues.get(destination)
            if queue is None:
                queue = queues[destination] = deque()
            busy = bool(queue)  # invariant: non-empty queue == drain pending
            queue.append((finish, envelope))
            if not busy:
                equeue = self._equeue
                sequence = equeue._sequence
                equeue._sequence = sequence + 1
                equeue._live += 1
                heappush(
                    equeue._heap,
                    Event((finish, 0, sequence, self._drain_cpu, destination, False, "net:cpu")),
                )
        else:
            self.stats.messages_delivered += 1
            target.on_message(envelope.sender, envelope)

    def _drain_cpu(self, destination: str) -> None:
        """Hand over the head of a destination's CPU queue; re-arm if busy.

        Fires at the popped message's finish time.  The next drain is
        scheduled *before* the hand-over callback runs, mirroring the old
        one-event-per-message scheme where every hand-over event was already
        queued ahead of anything the callback schedules.
        """
        queue = self._cpu_queues[destination]
        envelope = queue.popleft()[1]
        if queue:
            equeue = self._equeue
            sequence = equeue._sequence
            equeue._sequence = sequence + 1
            equeue._live += 1
            heappush(
                equeue._heap,
                Event((queue[0][0], 0, sequence, self._drain_cpu, destination, False, "net:cpu")),
            )
        target = self._processes.get(destination)
        if target is None or target.crashed:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        target.on_message(envelope.sender, envelope)


__all__ = ["DropRule", "Network", "NetworkConfig", "NetworkStats"]
