"""The simulated network: routing, latency, CPU queues, and fault injection.

The network routes :class:`~repro.net.message.Envelope` objects between
registered processes.  Delivery time is the sum of

* a sender-side serialization stagger (per destination),
* the geo latency from the :class:`~repro.net.latency.LatencyModel`
  (including a bandwidth term proportional to message size), and
* receiver-side processing time, served from a per-process CPU queue whose
  cost grows with the number of signatures the message carries.

The CPU queue is what makes protocol *message complexity* visible in
simulated throughput: a PBFT-style all-to-all phase loads every replica with
O(n) verifications per decision, while a HotStuff-style linear phase loads
only the leader.  This mirrors the throughput gap the paper observes between
AVA-BFTSMART and AVA-HOTSTUFF.

Fault injection supports crash-stop processes, directed message filters
(used to model partitions and Byzantine message dropping), and statistics
used by the complexity analyses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import NetworkError
from repro.net.crypto import KeyRegistry, Signature
from repro.net.latency import LatencyModel
from repro.net.message import Envelope, Message
from repro.sim.process import Process
from repro.sim.simulator import Simulator

#: A drop rule: returns True when the envelope must be dropped.
DropRule = Callable[[Envelope], bool]


@dataclass
class NetworkConfig:
    """Processing-cost constants for the network (times in seconds).

    Attributes:
        send_overhead: Sender-side cost to serialize and push one message.
        base_processing: Receiver-side fixed cost to handle one message.
        signature_verify_cost: Receiver-side cost per signature verification.
        verify_envelopes: Whether the transport drops envelopes whose sender
            signature does not verify (authenticated-link property).
        cpu_model: When ``True`` (default) receivers process messages through
            a serial CPU queue; when ``False`` processing cost is ignored
            (useful for pure-logic unit tests).
    """

    send_overhead: float = 0.00002
    base_processing: float = 0.00001
    signature_verify_cost: float = 0.00008
    verify_envelopes: bool = True
    cpu_model: bool = True


@dataclass
class NetworkStats:
    """Counters describing all traffic that crossed the network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    by_type: Counter = field(default_factory=Counter)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict snapshot of the scalar counters."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
        }


class Network:
    """Routes envelopes between processes over the simulated topology.

    Args:
        simulator: The simulation kernel.
        latency_model: Geo latency model; processes must be placed on it.
        registry: Key registry used to sign and verify envelopes.
        config: Processing-cost constants.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: LatencyModel,
        registry: KeyRegistry,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model
        self.registry = registry
        self.config = config or NetworkConfig()
        self.stats = NetworkStats()
        self._processes: Dict[str, Process] = {}
        self._cpu_free: Dict[str, float] = {}
        self._drop_rules: List[DropRule] = []

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def register(self, process: Process, region: str = "us-west1") -> None:
        """Attach a process to the network and place it in a region."""
        self._processes[process.process_id] = process
        self.latency_model.place(process.process_id, region)
        self.registry.register(process.process_id)
        self._cpu_free.setdefault(process.process_id, 0.0)
        process.attach(self)

    def deregister(self, process_id: str) -> None:
        """Detach a process; subsequent messages to it are dropped."""
        self._processes.pop(process_id, None)

    def process(self, process_id: str) -> Optional[Process]:
        """Look up a registered process by id."""
        return self._processes.get(process_id)

    def known_processes(self) -> List[str]:
        """Identifiers of all registered processes."""
        return list(self._processes)

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def add_drop_rule(self, rule: DropRule) -> DropRule:
        """Install a drop rule; returns it so callers can remove it later."""
        self._drop_rules.append(rule)
        return rule

    def remove_drop_rule(self, rule: DropRule) -> None:
        """Remove a previously installed drop rule."""
        if rule in self._drop_rules:
            self._drop_rules.remove(rule)

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> DropRule:
        """Drop all traffic between two groups of processes (both ways)."""
        set_a = set(group_a)
        set_b = set(group_b)

        def rule(envelope: Envelope) -> bool:
            return (envelope.sender in set_a and envelope.destination in set_b) or (
                envelope.sender in set_b and envelope.destination in set_a
            )

        return self.add_drop_rule(rule)

    def isolate(self, process_id: str) -> DropRule:
        """Drop all traffic to and from one process."""

        def rule(envelope: Envelope) -> bool:
            return process_id in (envelope.sender, envelope.destination)

        return self.add_drop_rule(rule)

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: str,
        destination: str,
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send a single message from ``sender`` to ``destination``."""
        self._dispatch(sender, [destination], payload, signature)

    def multicast(
        self,
        sender: str,
        destinations: Sequence[str],
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send one message to many destinations with sender-side staggering."""
        self._dispatch(sender, destinations, payload, signature)

    # ------------------------------------------------------------------ #
    # Internal delivery machinery
    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        sender: str,
        destinations: Sequence[str],
        payload: Message,
        signature: Optional[Signature],
    ) -> None:
        # This loop runs once per (message, destination) pair — the hottest
        # code in any simulation after the event loop itself.  Per-message
        # state (size, type name, config flags) is hoisted out of the loop,
        # and delivery is scheduled as a bound method with the envelope as
        # the event argument instead of a fresh closure per message.
        processes = self._processes
        if sender not in processes:
            raise NetworkError(f"unknown sender {sender!r}")
        if processes[sender].crashed:
            return
        now = self.simulator.now
        size = payload.cached_size()
        type_name = payload.type_name()
        stats = self.stats
        by_type = stats.by_type
        drop_rules = self._drop_rules
        config = self.config
        cpu_model = config.cpu_model
        send_cost = config.send_overhead if cpu_model else 0.0
        departure = max(now, self._cpu_free.get(sender, 0.0)) if cpu_model else now
        one_way_latency = self.latency_model.one_way_latency
        schedule_at = self.simulator.schedule_at
        deliver = self._deliver
        for destination in destinations:
            departure += send_cost
            envelope = Envelope(sender, destination, payload, signature, now, size)
            stats.messages_sent += 1
            stats.bytes_sent += size
            by_type[type_name] += 1
            if drop_rules and self._should_drop(envelope):
                stats.messages_dropped += 1
                continue
            if destination not in processes:
                stats.messages_dropped += 1
                continue
            arrival = departure + one_way_latency(sender, destination, size)
            schedule_at(arrival, deliver, label="net:deliver", arg=envelope)
        if cpu_model:
            self._cpu_free[sender] = departure

    def _should_drop(self, envelope: Envelope) -> bool:
        return any(rule(envelope) for rule in self._drop_rules)

    def _deliver(self, envelope: Envelope) -> None:
        """Arrival at the destination: fires at the envelope's arrival time."""
        destination = envelope.destination
        target = self._processes.get(destination)
        if target is None or target.crashed:
            self.stats.messages_dropped += 1
            return
        config = self.config
        if config.verify_envelopes and envelope.signature is not None:
            if not self.registry.verify(envelope.signature):
                self.stats.messages_dropped += 1
                return
        if config.cpu_model:
            arrival = self.simulator.now
            processing = (
                config.base_processing
                + envelope.payload.verification_cost() * config.signature_verify_cost
            )
            cpu_free = self._cpu_free
            start = cpu_free.get(destination, 0.0)
            if start < arrival:
                start = arrival
            finish = start + processing
            cpu_free[destination] = finish
            self.simulator.schedule_at(finish, self._hand_over, label="net:cpu", arg=envelope)
        else:
            self._hand_over(envelope)

    def _hand_over(self, envelope: Envelope) -> None:
        target = self._processes.get(envelope.destination)
        if target is None or target.crashed:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        target.deliver(envelope.sender, envelope)


__all__ = ["DropRule", "Network", "NetworkConfig", "NetworkStats"]
