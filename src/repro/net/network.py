"""The simulated network: a single-pass message-delivery pipeline.

The network routes :class:`~repro.net.message.Envelope` objects between
registered processes.  For a message that crosses the wire, the delivery
time is the sum of

* a sender-side serialization stagger (per destination),
* the geo latency from the :class:`~repro.net.latency.LatencyModel`
  (including a bandwidth term proportional to message size), and
* receiver-side processing time, served from a per-process serial CPU queue
  whose cost grows with the number of signatures the message carries.

The CPU queue is what makes protocol *message complexity* visible in
simulated throughput: a PBFT-style all-to-all phase loads every replica with
O(n) verifications per decision, while a HotStuff-style linear phase loads
only the leader.  This mirrors the throughput gap the paper observes between
AVA-BFTSMART and AVA-HOTSTUFF.

Fused scheduling
----------------
All three legs of a wire delivery are computed in one pass at *send* time by
the :class:`DeliveryPipeline`: the sender's departure stagger, the link
latency draw, and the receiver's CPU hand-over slot.  Each scheduled message
therefore costs exactly **one** kernel event, fired at its hand-over time —
the old ``net:deliver`` → ``net:cpu`` event chain (two kernel events per
message, the structural floor of every macro run) is gone.

This is possible because the receiver's CPU queue is deterministic: per
destination, hand-over times are assigned monotonically in *send-schedule
order* (``finish = max(arrival, recv_free) + processing``), so the queue
degenerates to a watermark plus a FIFO of envelopes whose pop order equals
the kernel's fire order.  The FIFO discipline is per-destination
send-schedule order; with jitter two messages can arrive out of that order,
in which case the earlier-scheduled message is served first (the inversion
is bounded by the jitter scale).  Send serialization and receive processing
are modelled as two overlapping per-process resources (see :class:`_Port`
for why the fused design cannot share one watermark between them).

Loop-back
---------
Self-addressed messages (``abeb`` includes the sender) take a true 0 ms
loop-back: they skip the latency model (no jitter draw), the drop rules, and
the signature verification, and are handed over as simulator *microtasks* at
the same virtual instant — zero kernel events.  Handling one's own message
still occupies the receiver CPU for the base processing cost (no
verification charge — a process trusts its own signatures), so loop-back
does not hand protocols with all-to-all local phases a free 1/n of their
processing load.  Loop-backs are accounted separately from wire traffic
(``loopback_messages``).

Fault injection supports crash-stop processes, directed message filters
(used to model partitions and Byzantine message dropping), and statistics
used by the complexity analyses.  Drop rules see ``(sender, destination,
payload)``: envelopes no longer carry a destination (they are shared across
a whole fan-out), and rules run at send time, before an event is scheduled.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from heapq import heapify, heappush

from repro.errors import NetworkError
from repro.net.crypto import KeyRegistry, Signature
from repro.net.latency import LatencyModel
from repro.net.message import Envelope, Message
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.simulator import Simulator

#: A drop rule: returns True when the message must be dropped.  Evaluated at
#: send time, once per (message, destination) pair, for wire traffic only —
#: loop-back (self-addressed) messages never traverse drop rules.
DropRule = Callable[[str, str, Message], bool]


@dataclass
class NetworkConfig:
    """Processing-cost constants for the network (times in seconds).

    Attributes:
        send_overhead: Sender-side cost to serialize and push one message.
        base_processing: Receiver-side fixed cost to handle one message.
        signature_verify_cost: Receiver-side cost per signature verification.
        verify_envelopes: Whether the transport drops envelopes whose sender
            signature does not verify (authenticated-link property).
        cpu_model: When ``True`` (default) receivers process messages through
            a serial CPU queue; when ``False`` processing cost is ignored
            (useful for pure-logic unit tests).
    """

    send_overhead: float = 0.00002
    base_processing: float = 0.00001
    signature_verify_cost: float = 0.00008
    verify_envelopes: bool = True
    cpu_model: bool = True


@dataclass
class NetworkStats:
    """Counters describing all traffic that crossed the network.

    ``messages_sent`` / ``messages_delivered`` / ``bytes_sent`` count *wire*
    traffic only.  Self-addressed messages never reach the wire: delivered
    loop-backs are counted in ``loopback_messages`` instead (dropped ones —
    the sender crashed within the same instant — still count as dropped).
    ``by_type`` is a census of every send, loop-back included.

    ``link_latency_sum`` / ``link_latency_count`` aggregate the latency-model
    draw of every *scheduled* wire message; loop-backs are excluded by
    construction, so per-link latency analyses (E2) are not diluted by 0 ms
    self-deliveries.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    loopback_messages: int = 0
    link_latency_sum: float = 0.0
    link_latency_count: int = 0
    by_type: Counter = field(default_factory=Counter)

    def mean_link_latency(self) -> float:
        """Mean latency-model delay (seconds) over scheduled wire messages."""
        if not self.link_latency_count:
            return 0.0
        return self.link_latency_sum / self.link_latency_count

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict snapshot of the scalar counters."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "loopback_messages": self.loopback_messages,
        }


class _Port:
    """Per-registered-process delivery state owned by the pipeline.

    Attributes:
        process: The registered process object.
        registered: Cleared on deregistration so in-flight hand-overs drop
            (a later re-registration creates a fresh port).
        send_free: Send-serialization watermark (virtual time the process's
            outgoing link engine is next free).
        recv_free: Receive-CPU watermark (virtual time the CPU finishes its
            last accepted message; loop-back handling charges here too).
        queue: FIFO of envelopes awaiting hand-over, in the same order as
            their scheduled kernel events fire (hand-over times are assigned
            monotonically per port, ties broken by kernel sequence).
        loop_queue: FIFO of self-addressed envelopes awaiting their 0 ms
            microtask hand-over.

    The send and receive watermarks are deliberately independent resources —
    a serialization/NIC engine and a processing CPU.  The pre-fusion model
    shared one watermark, so a replica's sends queued behind receive work
    that had *arrived* by the send time; the fused pipeline assigns receive
    slots at schedule time (before arrival), where a shared watermark would
    make sends queue behind work still in flight on the wire — measurably
    wrong (it serialises whole rounds behind the link latency).  Exact
    arrived-by-now coupling is precisely the arrival-time event the fusion
    removes, so the pipeline models the two directions as overlapping
    resources instead; this is part of the sanctioned semantic change this
    refactor re-pinned the goldens for.
    """

    __slots__ = ("process", "registered", "send_free", "recv_free", "queue", "loop_queue")

    def __init__(self, process: Process) -> None:
        self.process = process
        self.registered = True
        self.send_free = 0.0
        self.recv_free = 0.0
        self.queue: deque = deque()
        self.loop_queue: deque = deque()


class DeliveryPipeline:
    """Owns the fused delivery schedule: ports, drop rules, and stats.

    One pipeline serves one :class:`Network`.  ``send`` and ``multicast``
    compute the whole delivery — departure, link latency, CPU hand-over —
    in a single pass and schedule exactly one kernel event per wire message
    (zero for loop-backs, which ride the simulator's microtask queue).
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: LatencyModel,
        registry: KeyRegistry,
        config: NetworkConfig,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model
        self.registry = registry
        self.config = config
        self.stats = NetworkStats()
        # Config constants are read on every send; they are fixed for the
        # lifetime of a network, so bind them once instead of paying
        # dataclass attribute reads per message.
        self._cpu_model = config.cpu_model
        self._send_overhead = config.send_overhead
        self._base_processing = config.base_processing
        self._signature_verify_cost = config.signature_verify_cost
        self._verify_envelopes = config.verify_envelopes
        #: The simulator's event queue and microtask deque, held directly:
        #: delivery events are the most-scheduled events in any run, so they
        #: are pushed without the per-call scheduling wrapper (hand-over
        #: times are >= now by construction, so the wrapper's guard adds
        #: nothing).
        self._equeue = simulator._queue
        self._micro = simulator._microtasks
        #: The latency model's (base, spread) pair memo, its raw uniform
        #: draw, and its constants, bound here so the per-message latency is
        #: computed inline (the warm path of ``one_way_latency``, one call
        #: frame per wire message otherwise).  ``place``/``set_rtt`` clear
        #: the memo *in place*, so the alias stays valid; misses fall back
        #: to the model, which fills the memo.  The arithmetic below must
        #: stay bit-identical to :meth:`LatencyModel.one_way_latency`.
        self._pair_base = latency_model._pair_base
        self._lat_random = latency_model._random
        self._lat_bandwidth = latency_model._bandwidth
        self._lat_overhead = latency_model._per_message_overhead
        self.ports: Dict[str, _Port] = {}
        self.drop_rules: List[DropRule] = []

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def register(self, process: Process) -> _Port:
        """Create (or re-create) the delivery port for a process."""
        port = self.ports.get(process.process_id)
        if port is not None and port.process is process:
            return port
        if port is not None:
            port.registered = False  # in-flight hand-overs to the old port drop
        port = self.ports[process.process_id] = _Port(process)
        return port

    def deregister(self, process_id: str) -> None:
        """Remove a port; in-flight and subsequent messages to it drop."""
        port = self.ports.pop(process_id, None)
        if port is not None:
            port.registered = False

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: str,
        destination: str,
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send a single message from ``sender`` to ``destination``.

        Point-to-point sends outnumber multicasts roughly five to one in the
        protocols (votes, client requests/responses, inter-cluster targets),
        so the single-destination case is laid out straight-line here instead
        of going through the generic fan-out loop.  The arithmetic and
        side-effect order mirror :meth:`multicast` exactly.
        """
        ports = self.ports
        port = ports.get(sender)
        if port is None:
            raise NetworkError(f"unknown sender {sender!r}")
        if port.process.crashed:
            return
        now = self.simulator.now
        size = payload.cached_size()
        stats = self.stats
        stats.by_type[type(payload).__name__] += 1
        if destination == sender:
            # True 0 ms loop-back: no latency draw, no drop rules, no
            # verification, no kernel event.  Handling one's own message
            # still occupies the CPU (base cost only — a process does not
            # re-verify its own signatures), so the receive watermark
            # advances and subsequent wire hand-overs queue behind it;
            # without this, protocols with O(n^2) local phases would get
            # 1/n of their processing load for free.
            if self._cpu_model:
                free = port.recv_free
                if free < now:
                    free = now
                port.recv_free = free + self._base_processing
            port.loop_queue.append(Envelope(sender, payload, signature, now, size, 0.0))
            self._micro.append((self._fire_loopback, port))
            return
        stats.messages_sent += 1
        stats.bytes_sent += size
        if self._cpu_model:
            departure = port.send_free
            if departure < now:
                departure = now
            departure += self._send_overhead
            port.send_free = departure
            processing = (
                self._base_processing
                + payload.verification_cost() * self._signature_verify_cost
            )
        else:
            departure = now
            processing = 0.0
        if self.drop_rules and self._should_drop(sender, destination, payload):
            stats.messages_dropped += 1
            return
        target_port = ports.get(destination)
        if target_port is None:
            stats.messages_dropped += 1
            return
        # Authenticated-link check, once per message at schedule time:
        # verification is time-independent (a token either matches the
        # signer's secret or it never will), so checking here instead of at
        # hand-over costs the same for point-to-point traffic, removes one
        # call per delivery from the hot path, and restores the invariant
        # that a forged message never occupies the receiver's CPU queue.
        # The minted-by-this-registry memo is checked inline; only unknown
        # signatures pay the ``verify`` call.
        if (
            signature is not None
            and self._verify_envelopes
            and signature.verified_by is not self.registry
            and not self.registry.verify(signature)
        ):
            stats.messages_dropped += 1
            return
        # Inline of the latency model's warm path (see the alias note in
        # __init__); the cold path resolves regions and fills the memo.
        by_src = self._pair_base.get(sender)
        pair = None if by_src is None else by_src.get(destination)
        if pair is None:
            latency = self.latency_model.one_way_latency(sender, destination, size)
        else:
            base, spread = pair
            transfer = size / self._lat_bandwidth if size else 0.0
            if base == 0:
                latency = transfer  # jitter(0, f) draws nothing and returns 0.0
            else:
                latency = base + ((spread + spread) * self._lat_random() - spread) + transfer
            overhead = self._lat_overhead
            if latency < overhead:
                latency = overhead
            latency = latency + overhead
        stats.link_latency_sum += latency
        stats.link_latency_count += 1
        envelope = Envelope(sender, payload, signature, now, size, processing)
        queue = self._equeue
        sequence = queue._sequence
        queue._sequence = sequence + 1
        queue._live += 1
        if self._cpu_model:
            # Fused hand-over: the receiver's CPU slot is assigned now, so
            # the one kernel event fires at the finish time directly.
            finish = target_port.recv_free
            arrival = departure + latency
            if finish < arrival:
                finish = arrival
            finish += processing
            target_port.recv_free = finish
            target_port.queue.append(envelope)
            heappush(
                queue._heap,
                Event((finish, 0, sequence, self._fire_port, target_port, False, "net:msg")),
            )
        else:
            heappush(
                queue._heap,
                Event(
                    (
                        departure + latency,
                        0,
                        sequence,
                        self._fire_pair,
                        (target_port, envelope),
                        False,
                        "net:msg",
                    )
                ),
            )

    def multicast(
        self,
        sender: str,
        destinations: Sequence[str],
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send one message to many destinations with sender-side staggering.

        This loop runs once per (message, destination) pair — the hottest
        code in any simulation after the event loop itself.  One immutable
        :class:`Envelope` header is shared across the whole fan-out, and the
        near-sorted hand-over events are bulk-inserted (heapify-amortised
        for large batches).  Self-addressed copies take the 0 ms loop-back
        and pay no serialization stagger.
        """
        ports = self.ports
        port = ports.get(sender)
        if port is None:
            raise NetworkError(f"unknown sender {sender!r}")
        if port.process.crashed:
            return
        now = self.simulator.now
        size = payload.cached_size()
        stats = self.stats
        stats.by_type[type(payload).__name__] += len(destinations)
        drop_rules = self.drop_rules
        cpu_model = self._cpu_model
        if cpu_model:
            send_cost = self._send_overhead
            departure = port.send_free
            if departure < now:
                departure = now
            processing = (
                self._base_processing
                + payload.verification_cost() * self._signature_verify_cost
            )
        else:
            send_cost = 0.0
            departure = now
            processing = 0.0
        envelope = Envelope(sender, payload, signature, now, size, processing)
        # Authenticated-link check, once per *message* rather than once per
        # destination (the token either matches the signer's secret or never
        # will; see the matching comment in :meth:`send`).
        forged = (
            signature is not None
            and self._verify_envelopes
            and signature.verified_by is not self.registry
            and not self.registry.verify(signature)
        )
        one_way_latency = self.latency_model.one_way_latency
        pair_base = self._pair_base
        lat_random = self._lat_random
        lat_bandwidth = self._lat_bandwidth
        lat_overhead = self._lat_overhead
        fire_port = self._fire_port
        fire_pair = self._fire_pair
        equeue = self._equeue
        sequence = equeue._sequence
        sent = 0
        dropped = 0
        latency_sum = 0.0
        events: List[Event] = []
        append = events.append
        for destination in destinations:
            if destination == sender:
                # Loop-back copy: 0 ms, but the base handling cost still
                # occupies the receive CPU (see the note in ``send``).
                if cpu_model:
                    free = port.recv_free
                    if free < now:
                        free = now
                    port.recv_free = free + self._base_processing
                port.loop_queue.append(envelope)
                self._micro.append((self._fire_loopback, port))
                continue
            sent += 1
            departure += send_cost
            if forged:
                dropped += 1
                continue
            if drop_rules and self._should_drop(sender, destination, payload):
                dropped += 1
                continue
            target_port = ports.get(destination)
            if target_port is None:
                dropped += 1
                continue
            # Inline of the latency model's warm path (see __init__).
            by_src = pair_base.get(sender)
            pair = None if by_src is None else by_src.get(destination)
            if pair is None:
                latency = one_way_latency(sender, destination, size)
            else:
                base, spread = pair
                transfer = size / lat_bandwidth if size else 0.0
                if base == 0:
                    latency = transfer
                else:
                    latency = base + ((spread + spread) * lat_random() - spread) + transfer
                if latency < lat_overhead:
                    latency = lat_overhead
                latency = latency + lat_overhead
            latency_sum += latency
            if cpu_model:
                finish = target_port.recv_free
                arrival = departure + latency
                if finish < arrival:
                    finish = arrival
                finish += processing
                target_port.recv_free = finish
                target_port.queue.append(envelope)
                append(Event((finish, 0, sequence, fire_port, target_port, False, "net:msg")))
            else:
                append(
                    Event(
                        (
                            departure + latency,
                            0,
                            sequence,
                            fire_pair,
                            (target_port, envelope),
                            False,
                            "net:msg",
                        )
                    )
                )
            sequence += 1
        stats.messages_sent += sent
        stats.bytes_sent += size * sent
        stats.link_latency_sum += latency_sum
        stats.link_latency_count += len(events)
        if dropped:
            stats.messages_dropped += dropped
        if events:
            equeue._sequence = sequence
            equeue._live += len(events)
            heap = equeue._heap
            if len(events) * 8 >= len(heap):
                heap.extend(events)
                heapify(heap)
            else:
                for event in events:
                    heappush(heap, event)
        if cpu_model:
            port.send_free = departure

    def _should_drop(self, sender: str, destination: str, payload: Message) -> bool:
        return any(rule(sender, destination, payload) for rule in self.drop_rules)

    # ------------------------------------------------------------------ #
    # Delivery (one callback per delivered message)
    # ------------------------------------------------------------------ #
    def _fire_port(self, port: _Port) -> None:
        """Hand over the head of a port's FIFO; fires at its hand-over time.

        Pop order equals kernel fire order because hand-over times are
        assigned monotonically per port at schedule time (ties broken by the
        kernel's sequence numbers, which are assigned in the same order as
        the queue appends).
        """
        envelope = port.queue.popleft()
        process = port.process
        if process.crashed or not port.registered:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        process.on_message(envelope.sender, envelope)

    def _fire_pair(self, pair) -> None:
        """Delivery without the CPU model (``cpu_model=False`` test configs).

        Arrival times across senders are not monotone per port, so the
        envelope rides the event itself instead of the port FIFO.
        """
        port, envelope = pair
        process = port.process
        if process.crashed or not port.registered:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        process.on_message(envelope.sender, envelope)

    def _fire_loopback(self, port: _Port) -> None:
        """0 ms hand-over of a self-addressed message (microtask).

        No verification: a process trusts its own signature.  The sender may
        have crashed between the send and this microtask (both happen at the
        same virtual instant), in which case the message drops like any
        delivery to a crashed process.
        """
        envelope = port.loop_queue.popleft()
        process = port.process
        if process.crashed or not port.registered:
            self.stats.messages_dropped += 1
            return
        self.stats.loopback_messages += 1
        process.on_message(envelope.sender, envelope)


class Network:
    """Routes messages between processes over the simulated topology.

    Thin façade over the :class:`DeliveryPipeline`, which owns the drop
    rules, the per-destination FIFO CPU queues, and the statistics.  Kept as
    the public entry point so membership, fault injection, and the sending
    API live in one place.

    Args:
        simulator: The simulation kernel.
        latency_model: Geo latency model; processes must be placed on it.
        registry: Key registry used to sign and verify envelopes.
        config: Processing-cost constants.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: LatencyModel,
        registry: KeyRegistry,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model
        self.registry = registry
        self.config = config or NetworkConfig()
        self.pipeline = DeliveryPipeline(simulator, latency_model, registry, self.config)
        self.stats = self.pipeline.stats

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def register(self, process: Process, region: str = "us-west1") -> None:
        """Attach a process to the network and place it in a region."""
        self.pipeline.register(process)
        self.latency_model.place(process.process_id, region)
        self.registry.register(process.process_id)
        process.attach(self)

    def deregister(self, process_id: str) -> None:
        """Detach a process; in-flight and subsequent messages to it drop."""
        self.pipeline.deregister(process_id)

    def process(self, process_id: str) -> Optional[Process]:
        """Look up a registered process by id."""
        port = self.pipeline.ports.get(process_id)
        return None if port is None else port.process

    def known_processes(self) -> List[str]:
        """Identifiers of all registered processes."""
        return list(self.pipeline.ports)

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def add_drop_rule(self, rule: DropRule) -> DropRule:
        """Install a drop rule; returns it so callers can remove it later."""
        self.pipeline.drop_rules.append(rule)
        return rule

    def remove_drop_rule(self, rule: DropRule) -> None:
        """Remove a previously installed drop rule."""
        if rule in self.pipeline.drop_rules:
            self.pipeline.drop_rules.remove(rule)

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> DropRule:
        """Drop all traffic between two groups of processes (both ways)."""
        set_a = set(group_a)
        set_b = set(group_b)

        def rule(sender: str, destination: str, payload: Message) -> bool:
            return (sender in set_a and destination in set_b) or (
                sender in set_b and destination in set_a
            )

        return self.add_drop_rule(rule)

    def isolate(self, process_id: str) -> DropRule:
        """Drop all wire traffic to and from one process.

        Loop-back is unaffected: a process can always talk to itself.
        """

        def rule(sender: str, destination: str, payload: Message) -> bool:
            return process_id in (sender, destination)

        return self.add_drop_rule(rule)

    # ------------------------------------------------------------------ #
    # Sending (delegates to the pipeline)
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: str,
        destination: str,
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send a single message from ``sender`` to ``destination``."""
        self.pipeline.send(sender, destination, payload, signature)

    def multicast(
        self,
        sender: str,
        destinations: Sequence[str],
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send one message to many destinations with sender-side staggering."""
        self.pipeline.multicast(sender, destinations, payload, signature)

    def _should_drop(self, sender: str, destination: str, payload: Message) -> bool:
        return self.pipeline._should_drop(sender, destination, payload)


__all__ = ["DeliveryPipeline", "DropRule", "Network", "NetworkConfig", "NetworkStats"]
