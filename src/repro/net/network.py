"""The simulated network: a single-pass message-delivery pipeline.

The network routes :class:`~repro.net.message.Envelope` objects between
registered processes.  For a message that crosses the wire, the delivery
time is the sum of

* a sender-side serialization stagger (per destination),
* the geo latency from the :class:`~repro.net.latency.LatencyModel`
  (including a bandwidth term proportional to message size), and
* receiver-side processing time, served from a per-process serial CPU queue
  whose cost grows with the number of signatures the message carries.

The CPU queue is what makes protocol *message complexity* visible in
simulated throughput: a PBFT-style all-to-all phase loads every replica with
O(n) verifications per decision, while a HotStuff-style linear phase loads
only the leader.  This mirrors the throughput gap the paper observes between
AVA-BFTSMART and AVA-HOTSTUFF.

Fused scheduling
----------------
All three legs of a wire delivery are computed in one pass at *send* time by
the :class:`DeliveryPipeline`: the sender's departure stagger, the link
latency draw, and the receiver's CPU hand-over slot.  Each scheduled message
therefore costs exactly **one** kernel event, fired at its hand-over time —
the old ``net:deliver`` → ``net:cpu`` event chain (two kernel events per
message, the structural floor of every macro run) is gone.

This is possible because the receiver's CPU queue is deterministic: per
destination, hand-over times are assigned monotonically in *send-schedule
order* (``finish = max(arrival, recv_free) + processing``), so the queue
degenerates to a watermark plus a FIFO of envelopes whose pop order equals
the kernel's fire order.  The FIFO discipline is per-destination
send-schedule order; with jitter two messages can arrive out of that order,
in which case the earlier-scheduled message is served first (the inversion
is bounded by the jitter scale).  Send serialization and receive processing
are modelled as two overlapping per-process resources (see :class:`_Port`
for why the fused design cannot share one watermark between them).

Loop-back
---------
Self-addressed messages (``abeb`` includes the sender) take a true 0 ms
loop-back: they skip the latency model (no jitter draw), the drop rules, and
the signature verification, and are handed over as simulator *microtasks* at
the same virtual instant — zero kernel events.  Handling one's own message
still occupies the receiver CPU for the base processing cost (no
verification charge — a process trusts its own signatures), so loop-back
does not hand protocols with all-to-all local phases a free 1/n of their
processing load.  Loop-backs are accounted separately from wire traffic
(``loopback_messages``).

Fault injection supports crash-stop processes, directed message filters
(used to model partitions and Byzantine message dropping), and statistics
used by the complexity analyses.  Drop rules see ``(sender, destination,
payload)``: envelopes no longer carry a destination (they are shared across
a whole fan-out), and rules run at send time, before an event is scheduled.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from heapq import heapify, heappush

from repro.errors import NetworkError
from repro.net.crypto import KeyRegistry, Signature
from repro.net.latency import LatencyModel
from repro.net.message import Envelope, Message
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.simulator import Simulator

#: A drop rule: returns True when the message must be dropped.  Evaluated at
#: send time, once per (message, destination) pair, for wire traffic only —
#: loop-back (self-addressed) messages never traverse drop rules.
DropRule = Callable[[str, str, Message], bool]


@dataclass
class NetworkConfig:
    """Processing-cost constants for the network (times in seconds).

    Attributes:
        send_overhead: Sender-side cost to serialize and push one message.
        base_processing: Receiver-side fixed cost to handle one message.
        signature_verify_cost: Receiver-side cost per signature verification.
        verify_envelopes: Whether the transport drops envelopes whose sender
            signature does not verify (authenticated-link property).
        cpu_model: When ``True`` (default) receivers process messages through
            a serial CPU queue; when ``False`` processing cost is ignored
            (useful for pure-logic unit tests).
    """

    send_overhead: float = 0.00002
    base_processing: float = 0.00001
    signature_verify_cost: float = 0.00008
    verify_envelopes: bool = True
    cpu_model: bool = True


@dataclass
class NetworkStats:
    """Counters describing all traffic that crossed the network.

    ``messages_sent`` / ``messages_delivered`` / ``bytes_sent`` count *wire*
    traffic only.  Self-addressed messages never reach the wire: delivered
    loop-backs are counted in ``loopback_messages`` instead (dropped ones —
    the sender crashed within the same instant — still count as dropped).
    ``by_type`` is a census of every send, loop-back included.

    ``link_latency`` aggregates the latency-model draw of every *scheduled*
    wire message as per-sender ``[sum, count]`` accumulators; loop-backs are
    excluded by construction, so per-link latency analyses (E2) are not
    diluted by 0 ms self-deliveries.  The accumulators are per sender — not
    one global float pair — because float addition is order-sensitive: a
    sender's draws are added in its own send order (invariant under kernel
    sharding), and cross-sender folds always run in sorted sender order, so
    a sharded run's merged stats are bit-identical to the serial run's.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    loopback_messages: int = 0
    link_latency: Dict[str, List] = field(default_factory=dict)
    by_type: Counter = field(default_factory=Counter)

    @property
    def link_latency_sum(self) -> float:
        """Total latency-model delay (seconds), folded in sorted sender order."""
        link_latency = self.link_latency
        return sum(link_latency[sender][0] for sender in sorted(link_latency))

    @property
    def link_latency_count(self) -> int:
        """Number of scheduled wire messages with a latency draw."""
        return sum(acc[1] for acc in self.link_latency.values())

    def mean_link_latency(self) -> float:
        """Mean latency-model delay (seconds) over scheduled wire messages."""
        count = self.link_latency_count
        if not count:
            return 0.0
        return self.link_latency_sum / count

    def merge(self, other: "NetworkStats") -> None:
        """Fold another shard's counters into this one (ints and keyed sums
        only, so the result is independent of merge order)."""
        self.messages_sent += other.messages_sent
        self.messages_delivered += other.messages_delivered
        self.messages_dropped += other.messages_dropped
        self.bytes_sent += other.bytes_sent
        self.loopback_messages += other.loopback_messages
        for sender, acc in other.link_latency.items():
            mine = self.link_latency.get(sender)
            if mine is None:
                self.link_latency[sender] = [acc[0], acc[1]]
            else:
                mine[0] += acc[0]
                mine[1] += acc[1]
        self.by_type.update(other.by_type)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict snapshot of the scalar counters."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "loopback_messages": self.loopback_messages,
        }


class _Port:
    """Per-registered-process delivery state owned by the pipeline.

    Attributes:
        process: The registered process object.
        registered: Cleared on deregistration so in-flight hand-overs drop
            (a later re-registration creates a fresh port).
        send_free: Send-serialization watermark (virtual time the process's
            outgoing link engine is next free).
        recv_free: Receive-CPU watermark (virtual time the CPU finishes its
            last accepted message; loop-back handling charges here too).
        queue: FIFO of envelopes awaiting hand-over, in the same order as
            their scheduled kernel events fire (hand-over times are assigned
            monotonically per port, ties broken by kernel sequence).
        loop_queue: FIFO of self-addressed envelopes awaiting their 0 ms
            microtask hand-over.
        lat_random: This sender's private jitter stream (bound C-level
            draw).  Per-sender streams make a sender's latency draw sequence
            a function of its own send order only — the property that keeps
            fixed-seed runs bit-identical whatever the kernel is sharded
            into (a shared stream would interleave draws in global event
            order, which sharding reorders).
        lat_acc: This sender's ``[sum, count]`` link-latency accumulator,
            aliased into ``NetworkStats.link_latency`` (same object).
        owner: The owner-cluster key of this process (``None`` outside a
            deployment).  Messages between processes of *different* owner
            clusters always take the cross-cluster mailbox, even under a
            single-shard kernel, so routing never depends on the shard
            layout.
        xseq: Outbound cross-cluster sequence number; with the arrival time
            and sender id it gives mailbox entries a total order that every
            shard layout reproduces.
        route: Per-destination route memo, ``destination -> (target_port,
            base, spread)`` — the owner-routing verdict fused with the
            latency model's pair constants, so the hot path resolves both
            with a single dict lookup.  ``target_port is None`` means the
            cross-cluster mailbox.  Unknown destinations (drops) are never
            cached.  Entries are purged on (de)registration of the
            destination and cleared wholesale when the latency model's
            topology changes (it calls the pipeline back — see
            ``DeliveryPipeline.__init__``).

    The send and receive watermarks are deliberately independent resources —
    a serialization/NIC engine and a processing CPU.  The pre-fusion model
    shared one watermark, so a replica's sends queued behind receive work
    that had *arrived* by the send time; the fused pipeline assigns receive
    slots at schedule time (before arrival), where a shared watermark would
    make sends queue behind work still in flight on the wire — measurably
    wrong (it serialises whole rounds behind the link latency).  Exact
    arrived-by-now coupling is precisely the arrival-time event the fusion
    removes, so the pipeline models the two directions as overlapping
    resources instead; this is part of the sanctioned semantic change this
    refactor re-pinned the goldens for.
    """

    __slots__ = (
        "process",
        "registered",
        "send_free",
        "recv_free",
        "queue",
        "loop_queue",
        "lat_random",
        "lat_acc",
        "owner",
        "xseq",
        "route",
        "cpu_factor",
    )

    def __init__(self, process: Process) -> None:
        self.process = process
        self.registered = True
        self.send_free = 0.0
        self.recv_free = 0.0
        self.queue: deque = deque()
        self.loop_queue: deque = deque()
        self.lat_random: Callable[[], float] = None  # bound in register()
        self.lat_acc: List = None  # bound in register()
        self.owner: object = None
        self.xseq = 0
        self.route: Dict[str, tuple] = {}
        #: Receiver-CPU multiplier (gray/slow replicas).  1.0 for healthy
        #: processes — and ``x * 1.0 == x`` is IEEE-exact, so healthy runs
        #: are bit-identical to the pre-gray pipeline.
        self.cpu_factor = 1.0


class DeliveryPipeline:
    """Owns the fused delivery schedule: ports, drop rules, and stats.

    One pipeline serves one :class:`Network`.  ``send`` and ``multicast``
    compute the whole delivery — departure, link latency, CPU hand-over —
    in a single pass and schedule exactly one kernel event per wire message
    (zero for loop-backs, which ride the simulator's microtask queue).
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: LatencyModel,
        registry: KeyRegistry,
        config: NetworkConfig,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model
        self.registry = registry
        self.config = config
        self.stats = NetworkStats()
        # Config constants are read on every send; they are fixed for the
        # lifetime of a network, so bind them once instead of paying
        # dataclass attribute reads per message.
        self._cpu_model = config.cpu_model
        self._send_overhead = config.send_overhead
        self._base_processing = config.base_processing
        self._signature_verify_cost = config.signature_verify_cost
        self._verify_envelopes = config.verify_envelopes
        #: The simulator's event queue and microtask deque, held directly:
        #: delivery events are the most-scheduled events in any run, so they
        #: are pushed without the per-call scheduling wrapper (hand-over
        #: times are >= now by construction, so the wrapper's guard adds
        #: nothing).
        self._equeue = simulator._queue
        self._micro = simulator._microtasks
        #: The latency model's constants, bound once so the per-message
        #: latency is computed inline.  The (base, spread) pair constants
        #: live in the per-port route memos (see :class:`_Port`), filled
        #: from ``pair_params`` on miss; ``place``/``set_rtt`` invalidate
        #: those memos through the hook below.  The jitter draw itself comes
        #: from the *sender's* per-port stream, never from the model's.
        self._lat_bandwidth = latency_model._bandwidth
        self._lat_overhead = latency_model._per_message_overhead
        latency_model._invalidate_hooks.append(self._clear_route_memos)
        self.ports: Dict[str, _Port] = {}
        self.drop_rules: List[DropRule] = []
        #: Owner-cluster map (process id -> cluster key), shared across all
        #: shards of a deployment (assigned by the harness before any
        #: registration).  Empty for standalone networks — every message
        #: then takes the fused path, exactly as before this refactor.
        self.owners: Dict[str, object] = {}
        #: Cross-cluster mailbox: ``(arrival, sender, xseq, destination,
        #: envelope)`` entries awaiting the next lookahead barrier.  The
        #: sort key (arrival, sender, xseq) is a total order every shard
        #: layout reproduces, so injection order — and with it every
        #: receiver-CPU slot — is shard-count invariant.
        self.outbox: List[tuple] = []
        #: Single-shard mode: the pipeline drains its own mailbox with a
        #: priority -1 flush event at each lookahead barrier, emulating the
        #: coordinator's between-windows exchange without one.  Multi-shard
        #: runs clear this and let the coordinator call ``take_outbox``.
        self.self_flush = True
        #: Lazily resolved conservative lookahead (the barrier grid step).
        #: A provider callable defers the computation to first use because
        #: RTT overrides land after deployment construction.
        self.lookahead_provider: Optional[Callable[[], Optional[float]]] = None
        self._lookahead: Optional[float] = None
        self._flush_pending = False
        #: Optional dynamic barrier grid (``time -> next barrier``), installed
        #: by the deployment when an RTT trace makes the conservative floor —
        #: and with it the barrier spacing — piecewise instead of uniform.
        #: ``None`` keeps the historical fixed-lookahead grid below.
        self.barrier_provider: Optional[Callable[[float], Optional[float]]] = None
        #: Optional load-dependent latency surcharge (one shared
        #: :class:`~repro.net.adversity.CongestionModel` per deployment).
        self.congestion = None

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def register(self, process: Process) -> _Port:
        """Create (or re-create) the delivery port for a process."""
        process_id = process.process_id
        port = self.ports.get(process_id)
        if port is not None and port.process is process:
            return port
        if port is not None:
            port.registered = False  # in-flight hand-overs to the old port drop
            # Cached routes in other ports point at the old port object,
            # whose watermarks are now dead state — purge them so senders
            # re-resolve against the replacement.
            self._purge_route(process_id)
        port = self.ports[process_id] = _Port(process)
        # The per-sender jitter stream is derived from the *kernel's* root
        # stream by process id alone, so the same process gets the same
        # stream whichever shard (hence kernel) it lands on.
        port.lat_random = self.simulator.rng.child(f"latency/{process_id}").raw_random
        acc = self.stats.link_latency.get(process_id)
        if acc is None:
            acc = self.stats.link_latency[process_id] = [0.0, 0]
        port.lat_acc = acc
        port.owner = self.owners.get(process_id)
        return port

    def deregister(self, process_id: str) -> None:
        """Remove a port; in-flight and subsequent messages to it drop."""
        port = self.ports.pop(process_id, None)
        if port is not None:
            port.registered = False
            self._purge_route(process_id)

    def _purge_route(self, process_id: str) -> None:
        """Drop every cached route targeting ``process_id`` (rare: joins/leaves)."""
        for other in self.ports.values():
            other.route.pop(process_id, None)

    def _clear_route_memos(self) -> None:
        """Latency-model invalidation hook: topology changed, re-resolve all."""
        for other in self.ports.values():
            other.route.clear()

    # ------------------------------------------------------------------ #
    # Receiver-state-aware CPU charges
    # ------------------------------------------------------------------ #
    def charge_verification(self, process_id: str, signatures: int) -> None:
        """Charge ``signatures`` verifications to a receiver's CPU, lazily.

        The fused pipeline prices verification at *send* time, which is
        right only when every receiver verifies every message.  Handlers
        that verify conditionally — a ``LocalShare`` receiver drops
        duplicates before touching the certificates — send the message at
        its envelope-only cost and call this from inside the handler when
        they really do the work.  The charge advances the receiver's
        ``recv_free`` watermark, delaying hand-over slots assigned *after*
        this instant; messages already scheduled keep their slots (the
        fused schedule is immutable once written, and the deterministic
        handler order makes the watermark shard-layout invariant).
        """
        if not self._cpu_model or signatures <= 0:
            return
        port = self.ports.get(process_id)
        if port is None:
            return
        now = self.simulator.now
        free = port.recv_free
        if free < now:
            free = now
        port.recv_free = free + signatures * self._signature_verify_cost * port.cpu_factor

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: str,
        destination: str,
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send a single message from ``sender`` to ``destination``.

        Point-to-point sends outnumber multicasts roughly five to one in the
        protocols (votes, client requests/responses, inter-cluster targets),
        so the single-destination case is laid out straight-line here instead
        of going through the generic fan-out loop.  The arithmetic and
        side-effect order mirror :meth:`multicast` exactly.
        """
        ports = self.ports
        port = ports.get(sender)
        if port is None:
            raise NetworkError(f"unknown sender {sender!r}")
        if port.process.crashed:
            return
        now = self.simulator.now
        size = payload.cached_size()
        stats = self.stats
        stats.by_type[type(payload).__name__] += 1
        if destination == sender:
            # True 0 ms loop-back: no latency draw, no drop rules, no
            # verification, no kernel event.  Handling one's own message
            # still occupies the CPU (base cost only — a process does not
            # re-verify its own signatures), so the receive watermark
            # advances and subsequent wire hand-overs queue behind it;
            # without this, protocols with O(n^2) local phases would get
            # 1/n of their processing load for free.
            if self._cpu_model:
                free = port.recv_free
                if free < now:
                    free = now
                port.recv_free = free + self._base_processing * port.cpu_factor
            port.loop_queue.append(Envelope(sender, payload, signature, now, size, 0.0))
            self._micro.append((self._fire_loopback, port))
            return
        stats.messages_sent += 1
        stats.bytes_sent += size
        if self._cpu_model:
            departure = port.send_free
            if departure < now:
                departure = now
            departure += self._send_overhead
            port.send_free = departure
            processing = (
                self._base_processing
                + payload.verification_cost() * self._signature_verify_cost
            )
        else:
            departure = now
            processing = 0.0
        if self.drop_rules and self._should_drop(sender, destination, payload):
            stats.messages_dropped += 1
            return
        # Fused route memo: one dict lookup resolves the owner-cluster
        # routing verdict (target port, or ``None`` for the cross-cluster
        # mailbox) together with the pair's latency constants.  The slow
        # path — owner comparison, port lookup, ``pair_params`` — lives in
        # ``_resolve_route``; misses on unknown destinations drop and are
        # never cached.
        route = port.route.get(destination)
        if route is None:
            route = self._resolve_route(port, sender, destination)
            if route is None:
                stats.messages_dropped += 1
                return
        target_port, base, spread = route
        # Authenticated-link check, once per message at schedule time:
        # verification is time-independent (a token either matches the
        # signer's secret or it never will), so checking here instead of at
        # hand-over costs the same for point-to-point traffic, removes one
        # call per delivery from the hot path, and restores the invariant
        # that a forged message never occupies the receiver's CPU queue.
        # The minted-by-this-registry memo is checked inline; only unknown
        # signatures pay the ``verify`` call.
        if (
            signature is not None
            and self._verify_envelopes
            and signature.verified_by is not self.registry
            and not self.registry.verify(signature)
        ):
            stats.messages_dropped += 1
            return
        # The jitter draw comes from the sender's own stream.
        transfer = size / self._lat_bandwidth if size else 0.0
        if base == 0:
            latency = transfer  # jitter(0, f) draws nothing and returns 0.0
        else:
            latency = base + ((spread + spread) * port.lat_random() - spread) + transfer
        overhead = self._lat_overhead
        if latency < overhead:
            latency = overhead
        latency = latency + overhead
        congestion = self.congestion
        if congestion is not None:
            # Load-dependent surcharge, added *after* the floor clamp: it is
            # >= 0, so the conservative lookahead bound still holds.
            latency += congestion.surcharge(
                port.owner if port.owner is not None else sender, sender, destination, size, now
            )
        acc = port.lat_acc
        acc[0] += latency
        acc[1] += 1
        envelope = Envelope(sender, payload, signature, now, size, processing)
        if target_port is None:
            self._enqueue_cross(port, sender, departure + latency, destination, envelope, now)
            return
        queue = self._equeue
        sequence = queue._sequence
        queue._sequence = sequence + 1
        queue._live += 1
        if self._cpu_model:
            # Fused hand-over: the receiver's CPU slot is assigned now, so
            # the one kernel event fires at the finish time directly.
            finish = target_port.recv_free
            arrival = departure + latency
            if finish < arrival:
                finish = arrival
            finish += processing * target_port.cpu_factor
            target_port.recv_free = finish
            target_port.queue.append(envelope)
            heappush(
                queue._heap,
                Event((finish, 0, sequence, self._fire_port, target_port, False, "net:msg")),
            )
        else:
            heappush(
                queue._heap,
                Event(
                    (
                        departure + latency,
                        0,
                        sequence,
                        self._fire_pair,
                        (target_port, envelope),
                        False,
                        "net:msg",
                    )
                ),
            )

    def multicast(
        self,
        sender: str,
        destinations: Sequence[str],
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send one message to many destinations with sender-side staggering.

        This loop runs once per (message, destination) pair — the hottest
        code in any simulation after the event loop itself.  One immutable
        :class:`Envelope` header is shared across the whole fan-out, and the
        near-sorted hand-over events are bulk-inserted (heapify-amortised
        for large batches).  Self-addressed copies take the 0 ms loop-back
        and pay no serialization stagger.
        """
        ports = self.ports
        port = ports.get(sender)
        if port is None:
            raise NetworkError(f"unknown sender {sender!r}")
        if port.process.crashed:
            return
        now = self.simulator.now
        size = payload.cached_size()
        stats = self.stats
        stats.by_type[type(payload).__name__] += len(destinations)
        drop_rules = self.drop_rules
        cpu_model = self._cpu_model
        if cpu_model:
            send_cost = self._send_overhead
            departure = port.send_free
            if departure < now:
                departure = now
            processing = (
                self._base_processing
                + payload.verification_cost() * self._signature_verify_cost
            )
        else:
            send_cost = 0.0
            departure = now
            processing = 0.0
        envelope = Envelope(sender, payload, signature, now, size, processing)
        # Authenticated-link check, once per *message* rather than once per
        # destination (the token either matches the signer's secret or never
        # will; see the matching comment in :meth:`send`).
        forged = (
            signature is not None
            and self._verify_envelopes
            and signature.verified_by is not self.registry
            and not self.registry.verify(signature)
        )
        route_get = port.route.get
        resolve_route = self._resolve_route
        lat_random = port.lat_random
        lat_bandwidth = self._lat_bandwidth
        lat_overhead = self._lat_overhead
        congestion = self.congestion
        congestion_key = port.owner if port.owner is not None else sender
        fire_port = self._fire_port
        fire_pair = self._fire_pair
        equeue = self._equeue
        sequence = equeue._sequence
        sent = 0
        dropped = 0
        draws = 0
        latency_sum = 0.0
        events: List[Event] = []
        append = events.append
        for destination in destinations:
            if destination == sender:
                # Loop-back copy: 0 ms, but the base handling cost still
                # occupies the receive CPU (see the note in ``send``).
                if cpu_model:
                    free = port.recv_free
                    if free < now:
                        free = now
                    port.recv_free = free + self._base_processing * port.cpu_factor
                port.loop_queue.append(envelope)
                self._micro.append((self._fire_loopback, port))
                continue
            sent += 1
            departure += send_cost
            if forged:
                dropped += 1
                continue
            if drop_rules and self._should_drop(sender, destination, payload):
                dropped += 1
                continue
            # Fused route memo (see the matching comment in ``send``); the
            # jitter draw comes from the sender's own stream.
            route = route_get(destination)
            if route is None:
                route = resolve_route(port, sender, destination)
                if route is None:
                    dropped += 1
                    continue
            target_port, base, spread = route
            transfer = size / lat_bandwidth if size else 0.0
            if base == 0:
                latency = transfer
            else:
                latency = base + ((spread + spread) * lat_random() - spread) + transfer
            if latency < lat_overhead:
                latency = lat_overhead
            latency = latency + lat_overhead
            if congestion is not None:
                # >= 0 and post-clamp, so the lookahead bound still holds.
                latency += congestion.surcharge(congestion_key, sender, destination, size, now)
            latency_sum += latency
            draws += 1
            if target_port is None:
                self._enqueue_cross(port, sender, departure + latency, destination, envelope, now)
                continue
            if cpu_model:
                finish = target_port.recv_free
                arrival = departure + latency
                if finish < arrival:
                    finish = arrival
                finish += processing * target_port.cpu_factor
                target_port.recv_free = finish
                target_port.queue.append(envelope)
                append(Event((finish, 0, sequence, fire_port, target_port, False, "net:msg")))
            else:
                append(
                    Event(
                        (
                            departure + latency,
                            0,
                            sequence,
                            fire_pair,
                            (target_port, envelope),
                            False,
                            "net:msg",
                        )
                    )
                )
            sequence += 1
        stats.messages_sent += sent
        stats.bytes_sent += size * sent
        acc = port.lat_acc
        acc[0] += latency_sum
        acc[1] += draws
        if dropped:
            stats.messages_dropped += dropped
        if events:
            equeue._sequence = sequence
            equeue._live += len(events)
            heap = equeue._heap
            if len(events) * 8 >= len(heap):
                heap.extend(events)
                heapify(heap)
            else:
                for event in events:
                    heappush(heap, event)
        if cpu_model:
            port.send_free = departure

    def _should_drop(self, sender: str, destination: str, payload: Message) -> bool:
        return any(rule(sender, destination, payload) for rule in self.drop_rules)

    def _resolve_route(self, port: _Port, sender: str, destination: str):
        """Route-memo miss path: owner routing + pair constants, then cache.

        Messages between processes of different owner clusters always take
        the cross-cluster mailbox — even under a single-shard kernel — so
        delivery order never depends on how clusters are packed onto
        shards.  Processes without an owner (standalone networks, unit
        tests) keep the fused path untouched.  Returns ``None`` (and caches
        nothing) for unknown local destinations: the caller drops, and a
        later registration of that id must see a fresh lookup.
        """
        cross = port.owner is not None
        if cross:
            dest_owner = self.owners.get(destination)
            cross = dest_owner is not None and dest_owner != port.owner
        if cross:
            target_port = None
        else:
            target_port = self.ports.get(destination)
            if target_port is None:
                return None
        latency_model = self.latency_model
        if latency_model._trace is not None:
            # Trace-driven pair: sample the schedule at *send* time and do
            # not cache — every send to this destination must re-resolve so
            # the latency follows the trace.  Untraced pairs fall through to
            # the memoised constants below.
            params = latency_model.traced_pair_params(sender, destination, self.simulator.now)
            if params is not None:
                return (target_port, params[0], params[1])
        base, spread = latency_model.pair_params(sender, destination)
        route = (target_port, base, spread)
        port.route[destination] = route
        return route

    # ------------------------------------------------------------------ #
    # Cross-cluster mailbox (the conservative-parallel exchange surface)
    # ------------------------------------------------------------------ #
    def _enqueue_cross(
        self,
        port: _Port,
        sender: str,
        arrival: float,
        destination: str,
        envelope: Envelope,
        now: float,
    ) -> None:
        """Queue a cross-owner-cluster message for the next barrier.

        Everything sender-side — stats, drop rules, the signature check,
        the latency draw, the departure stagger — has already happened;
        what remains (receiver port lookup, CPU slot, delivery event) is
        receiver-side and runs at injection time on the *destination's*
        shard, identically under every shard layout.
        """
        xseq = port.xseq
        port.xseq = xseq + 1
        outbox = self.outbox
        outbox.append((arrival, sender, xseq, destination, envelope))
        if self.self_flush and not self._flush_pending:
            self._flush_pending = True
            self.simulator.schedule_at(
                self._next_barrier(now), self._flush_outbox, -1, "net:xflush"
            )

    def _next_barrier(self, time: float) -> float:
        """The smallest barrier-grid point strictly after ``time``.

        The grid is the multiples of the conservative lookahead ``L``.
        Computed by integer search rather than division alone so that every
        shard layout lands on the *same* float grid point (``k * L`` for the
        smallest integer ``k`` with ``k * L > time``) — the coordinator
        walks the same grid incrementally.

        With a dynamic floor (RTT traces), the deployment installs a
        ``barrier_provider`` and the single-shard flush walks *its*
        piecewise grid — the same one the sharded coordinator and the
        multiprocess workers use, which is what keeps serial and sharded
        runs byte-identical under dynamic latency too.
        """
        provider = self.barrier_provider
        if provider is not None:
            barrier = provider(time)
            if barrier is None:
                raise NetworkError(
                    "cross-cluster traffic requires a barrier grid, but the "
                    "barrier provider reports no cross-cluster pairs"
                )
            return barrier
        lookahead = self._lookahead
        if lookahead is None:
            provider = self.lookahead_provider
            lookahead = provider() if provider is not None else None
            if lookahead is None or lookahead <= 0.0:
                raise NetworkError(
                    "cross-cluster traffic requires a positive conservative "
                    "lookahead; the deployment must install a lookahead "
                    "provider before cross-owner sends occur"
                )
            self._lookahead = lookahead
        k = int(time / lookahead)
        while k * lookahead <= time:
            k += 1
        while k > 1 and (k - 1) * lookahead > time:
            k -= 1
        return k * lookahead

    def _flush_outbox(self) -> None:
        """Single-shard barrier: drain the mailbox in canonical order.

        Fires at priority -1, i.e. *before* any ordinary event scheduled at
        the same barrier time — the exact position the multi-shard
        coordinator injects at (between windows).  Every mailbox entry was
        produced by an event strictly before the barrier (the flush is the
        first thing to run at it), so draining everything matches the
        coordinator's take-all exchange.
        """
        self._flush_pending = False
        batch = self.outbox
        if not batch:
            return
        self.outbox = []
        batch.sort()
        deliver = self.deliver_cross
        for arrival, _sender, _xseq, destination, envelope in batch:
            deliver(arrival, destination, envelope)

    def take_outbox(self) -> List[tuple]:
        """Detach and return the pending mailbox (coordinator mode)."""
        batch = self.outbox
        if batch:
            self.outbox = []
        return batch

    def deliver_cross(self, arrival: float, destination: str, envelope: Envelope) -> None:
        """Inject a cross-cluster envelope at a barrier.

        Runs on the destination's shard.  The receiver CPU slot is assigned
        here — in canonical mailbox order — rather than at send time, so
        slot assignment is identical whichever shard the sender lived on.
        The event is pushed directly (no past-time guard): a barrier can sit
        one ulp above an arrival that equals it in real arithmetic, and both
        the single-shard flush and the coordinator tolerate that identically.
        """
        port = self.ports.get(destination)
        if port is None or not port.registered:
            self.stats.messages_dropped += 1
            return
        queue = self._equeue
        sequence = queue._sequence
        queue._sequence = sequence + 1
        queue._live += 1
        if self._cpu_model:
            finish = port.recv_free
            if finish < arrival:
                finish = arrival
            finish += envelope.processing * port.cpu_factor
            port.recv_free = finish
            port.queue.append(envelope)
            heappush(
                queue._heap,
                Event((finish, 0, sequence, self._fire_port, port, False, "net:msg")),
            )
        else:
            heappush(
                queue._heap,
                Event((arrival, 0, sequence, self._fire_pair, (port, envelope), False, "net:msg")),
            )

    # ------------------------------------------------------------------ #
    # Delivery (one callback per delivered message)
    # ------------------------------------------------------------------ #
    def _fire_port(self, port: _Port) -> None:
        """Hand over the head of a port's FIFO; fires at its hand-over time.

        Pop order equals kernel fire order because hand-over times are
        assigned monotonically per port at schedule time (ties broken by the
        kernel's sequence numbers, which are assigned in the same order as
        the queue appends).
        """
        envelope = port.queue.popleft()
        process = port.process
        if process.crashed or not port.registered:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        process.on_message(envelope.sender, envelope)

    def _fire_pair(self, pair) -> None:
        """Delivery without the CPU model (``cpu_model=False`` test configs).

        Arrival times across senders are not monotone per port, so the
        envelope rides the event itself instead of the port FIFO.
        """
        port, envelope = pair
        process = port.process
        if process.crashed or not port.registered:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        process.on_message(envelope.sender, envelope)

    def _fire_loopback(self, port: _Port) -> None:
        """0 ms hand-over of a self-addressed message (microtask).

        No verification: a process trusts its own signature.  The sender may
        have crashed between the send and this microtask (both happen at the
        same virtual instant), in which case the message drops like any
        delivery to a crashed process.
        """
        envelope = port.loop_queue.popleft()
        process = port.process
        if process.crashed or not port.registered:
            self.stats.messages_dropped += 1
            return
        self.stats.loopback_messages += 1
        process.on_message(envelope.sender, envelope)


class Network:
    """Routes messages between processes over the simulated topology.

    Thin façade over the :class:`DeliveryPipeline`, which owns the drop
    rules, the per-destination FIFO CPU queues, and the statistics.  Kept as
    the public entry point so membership, fault injection, and the sending
    API live in one place.

    Args:
        simulator: The simulation kernel.
        latency_model: Geo latency model; processes must be placed on it.
        registry: Key registry used to sign and verify envelopes.
        config: Processing-cost constants.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: LatencyModel,
        registry: KeyRegistry,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model
        self.registry = registry
        self.config = config or NetworkConfig()
        self.pipeline = DeliveryPipeline(simulator, latency_model, registry, self.config)
        self.stats = self.pipeline.stats

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def register(self, process: Process, region: str = "us-west1") -> None:
        """Attach a process to the network and place it in a region."""
        self.pipeline.register(process)
        self.latency_model.place(process.process_id, region)
        self.registry.register(process.process_id)
        process.attach(self)

    def deregister(self, process_id: str) -> None:
        """Detach a process; in-flight and subsequent messages to it drop."""
        self.pipeline.deregister(process_id)

    def process(self, process_id: str) -> Optional[Process]:
        """Look up a registered process by id."""
        port = self.pipeline.ports.get(process_id)
        return None if port is None else port.process

    def known_processes(self) -> List[str]:
        """Identifiers of all registered processes."""
        return list(self.pipeline.ports)

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def add_drop_rule(self, rule: DropRule) -> DropRule:
        """Install a drop rule; returns it so callers can remove it later."""
        self.pipeline.drop_rules.append(rule)
        return rule

    def remove_drop_rule(self, rule: DropRule) -> None:
        """Remove a previously installed drop rule."""
        if rule in self.pipeline.drop_rules:
            self.pipeline.drop_rules.remove(rule)

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> DropRule:
        """Drop all traffic between two groups of processes (both ways)."""
        set_a = set(group_a)
        set_b = set(group_b)

        def rule(sender: str, destination: str, payload: Message) -> bool:
            return (sender in set_a and destination in set_b) or (
                sender in set_b and destination in set_a
            )

        return self.add_drop_rule(rule)

    def isolate(self, process_id: str) -> DropRule:
        """Drop all wire traffic to and from one process.

        Loop-back is unaffected: a process can always talk to itself.
        """

        def rule(sender: str, destination: str, payload: Message) -> bool:
            return process_id in (sender, destination)

        return self.add_drop_rule(rule)

    # ------------------------------------------------------------------ #
    # Sending (delegates to the pipeline)
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: str,
        destination: str,
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send a single message from ``sender`` to ``destination``."""
        self.pipeline.send(sender, destination, payload, signature)

    def multicast(
        self,
        sender: str,
        destinations: Sequence[str],
        payload: Message,
        signature: Optional[Signature] = None,
    ) -> None:
        """Send one message to many destinations with sender-side staggering."""
        self.pipeline.multicast(sender, destinations, payload, signature)

    def charge_verification(self, process_id: str, signatures: int) -> None:
        """Charge in-handler verification CPU (see the pipeline method)."""
        self.pipeline.charge_verification(process_id, signatures)

    def _should_drop(self, sender: str, destination: str, payload: Message) -> bool:
        return self.pipeline._should_drop(sender, destination, payload)


__all__ = ["DeliveryPipeline", "DropRule", "Network", "NetworkConfig", "NetworkStats"]
