"""Deployment builder: wires simulator, network, replicas, and clients.

A :class:`Deployment` corresponds to one experimental data point in the
paper: a set of clusters (with sizes and regions), a protocol configuration,
one workload client per cluster, and optional fault/churn schedules.  After
``run()`` the attached :class:`~repro.harness.metrics.MetricsCollector`
answers the questions the figures plot.
"""

from __future__ import annotations

import bisect
import gc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.core.config import HamavaConfig, SystemConfig
from repro.core.replica import MODE_IDLE, ByzantineBehavior, HamavaReplica
from repro.errors import ConfigurationError
from repro.harness.metrics import MetricsCollector
from repro.net.adversity import CongestionConfig, CongestionModel, RttTrace
from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel, LatencyParameters
from repro.net.network import Network, NetworkConfig, NetworkStats
from repro.sim.sharded import ShardedSimulator
from repro.sim.simulator import Simulator
from repro.workload.clients import ReconfigurationClient, WorkloadClient
from repro.workload.population import ClientPopulation, PopulationConfig
from repro.workload.ycsb import YcsbConfig, YcsbWorkload


@dataclass
class DeploymentSpec:
    """Everything needed to build one deployment.

    Attributes:
        clusters: ``[(size, region), ...]`` — one entry per cluster.
        config: Protocol configuration (engine, batch size, timeouts, ...).
        seed: Scenario seed; same seed ⇒ same schedule.
        client_threads: Closed-loop threads per workload client (per cluster).
        workload: YCSB parameters.
        latency: Latency-model constants.
        network: Network processing-cost constants.
        clients_per_cluster: Number of workload clients per cluster.
        workload_model: ``"closed"`` (per-thread YCSB clients) or ``"open"``
            (one aggregate :class:`ClientPopulation` per cluster).
        population: Open-loop population parameters (``"open"`` model only;
            defaults applied when ``None``).
        replica_class: Replica implementation (Hamava or a baseline).
        region_overrides: Optional per-replica region placement, used by the
            non-clustered baseline whose single "cluster" spans regions.
        reconfig_client_region: Region churn/reconfiguration clients are
            registered in; defaults to the first cluster's region.
        shards: Number of simulation shards clusters are packed onto.  Each
            shard owns its clusters' event queue, RNG streams, network ports,
            and metrics; shards synchronise only at conservative-lookahead
            barriers.  Fixed-seed results are byte-identical for every value
            (clamped to the cluster count).
        strict_streams: Enable the RNG stream-ownership audit: any draw from
            a stream owned by one shard's kernel while another shard's kernel
            is stepping raises ``StreamOwnershipError``.
        rtt_trace: Optional trace-driven RTT schedule; traced region pairs
            are re-sampled at every send and the conservative lookahead
            becomes the piecewise floor schedule (barriers are forced at
            trace segment boundaries).
        congestion: Optional load-dependent link-latency model; adds an
            M/M/1-style queueing surcharge per region pair from observed
            utilization plus injected background cross-traffic streams.
    """

    clusters: Sequence[Tuple[int, str]]
    config: HamavaConfig = field(default_factory=HamavaConfig)
    seed: int = 1
    client_threads: int = 16
    workload: YcsbConfig = field(default_factory=YcsbConfig)
    latency: LatencyParameters = field(default_factory=LatencyParameters)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    clients_per_cluster: int = 1
    workload_model: str = "closed"
    population: Optional[PopulationConfig] = None
    replica_class: Type[HamavaReplica] = HamavaReplica
    region_overrides: Dict[str, str] = field(default_factory=dict)
    reconfig_client_region: Optional[str] = None
    shards: int = 1
    strict_streams: bool = False
    rtt_trace: Optional[RttTrace] = None
    congestion: Optional[CongestionConfig] = None


class Shard:
    """One simulation shard: a serial kernel plus the state it owns.

    Every mutable ingredient of the simulation — event queue, RNG streams
    (each shard's :class:`Simulator` is seeded identically, so child streams
    are layout-invariant), network ports and statistics, and the metrics
    collector — hangs off exactly one shard.  Clusters are assigned
    contiguously (``position * shards // clusters``).
    """

    __slots__ = ("index", "simulator", "network", "metrics", "clusters")

    def __init__(self, index: int, simulator: Simulator, network: Network, metrics: MetricsCollector) -> None:
        self.index = index
        self.simulator = simulator
        self.network = network
        self.metrics = metrics
        self.clusters: List[int] = []


class _ShardedNetworkView:
    """Network facade over all shards for callers that expect one network.

    Fault-injection rules fan out to every shard (drop decisions are made on
    the sender's shard, so each pipeline needs the rule); ``stats`` merges
    per-shard counters on access.
    """

    def __init__(self, shards: List[Shard]) -> None:
        self._shards = shards

    @property
    def stats(self) -> NetworkStats:
        merged = NetworkStats()
        for shard in self._shards:
            merged.merge(shard.network.stats)
        return merged

    def add_drop_rule(self, rule):
        for shard in self._shards:
            shard.network.add_drop_rule(rule)
        return rule

    def remove_drop_rule(self, rule) -> None:
        for shard in self._shards:
            shard.network.remove_drop_rule(rule)

    def partition(self, group_a, group_b):
        rule = self._shards[0].network.partition(group_a, group_b)
        for shard in self._shards[1:]:
            shard.network.add_drop_rule(rule)
        return rule

    def process(self, process_id: str):
        for shard in self._shards:
            process = shard.network.process(process_id)
            if process is not None:
                return process
        return None

    def known_processes(self) -> List[str]:
        return [pid for shard in self._shards for pid in shard.network.known_processes()]


class Deployment:
    """A runnable simulated deployment of the replicated system.

    With ``spec.shards == 1`` (the default) there is one shard whose
    simulator/network/metrics are exposed directly as ``self.simulator`` /
    ``self.network`` / ``self.metrics`` — the historical serial surface.
    With more shards, clusters are packed contiguously onto per-shard serial
    kernels coordinated by a :class:`ShardedSimulator`; ``self.kernel`` is
    the object to drive in either case.

    Shard-count invariance rests on two rules.  Message routing is decided
    by *owner cluster*, never by shard: traffic between processes of
    different clusters always goes through the cross-shard mailbox (under
    one shard, a barrier-aligned flush event replays the coordinator's
    exchange), while intra-cluster traffic always takes the fused fast
    path.  And every shard's kernel is seeded identically, so any RNG
    stream derives the same draws wherever its owner cluster lands.

    Args:
        spec: What to build.
        local_shard: When given, construct only that shard's processes and
            register the rest as ghosts (placed in the latency model and key
            registry so cross-shard envelopes sign/verify, but owning no
            port).  Used by multiprocess shard workers; in-process callers
            leave it ``None``.
    """

    def __init__(self, spec: DeploymentSpec, local_shard: Optional[int] = None) -> None:
        self.spec = spec
        self.system_config = SystemConfig.build(spec.clusters)
        cluster_ids = self.system_config.cluster_ids()
        self.num_shards = max(1, min(int(spec.shards or 1), len(cluster_ids)))
        self.local_shard = local_shard
        self.registry = KeyRegistry(seed=spec.seed)
        #: process id -> owner cluster id; shared with (and read by) every
        #: shard's delivery pipeline, so it must be fully populated before
        #: any process registers a port.
        self._owners: Dict[str, int] = {}
        self._shard_of_cluster: Dict[int, int] = {}
        for position, cluster_id in enumerate(cluster_ids):
            self._shard_of_cluster[cluster_id] = position * self.num_shards // len(cluster_ids)
        self._lookahead: Optional[float] = None
        self._lookahead_resolved = False
        self._floor_schedule: Optional[List[Tuple[float, float]]] = None
        self._floor_starts: List[float] = []
        self._floor_schedule_resolved = False

        self.shards: List[Shard] = []
        latency_model: Optional[LatencyModel] = None
        for index in range(self.num_shards):
            simulator = Simulator(seed=spec.seed, strict_streams=spec.strict_streams)
            if latency_model is None:
                # One shared topology/placement model, built from shard 0's
                # RNG so its jitter stream (used by direct one_way_latency
                # callers, not the pipeline) keeps its historical namespace.
                latency_model = LatencyModel(simulator.rng, spec.latency)
            network = Network(simulator, latency_model, self.registry, spec.network)
            network.pipeline.owners = self._owners
            network.pipeline.lookahead_provider = self._cross_cluster_lookahead
            self.shards.append(Shard(index, simulator, network, MetricsCollector()))
        self.latency_model = latency_model
        if spec.rtt_trace is not None:
            latency_model.set_trace(spec.rtt_trace)
            # Trace-driven RTTs make the lookahead time-varying: both the
            # single-shard flush and the coordinator must walk the same
            # piecewise barrier schedule instead of the static grid.
            for shard in self.shards:
                shard.network.pipeline.barrier_provider = self.next_barrier
        if spec.congestion is not None:
            # One shared model: utilization accumulators are keyed by the
            # sender's owner cluster, and every process of a cluster lives
            # on one shard, so sharing the object is layout-invariant.
            congestion = CongestionModel(spec.congestion, latency_model)
            for shard in self.shards:
                shard.network.pipeline.congestion = congestion
        self.simulator = self.shards[0].simulator
        if self.num_shards == 1:
            self.network: object = self.shards[0].network
            self.metrics = self.shards[0].metrics
            self.kernel: object = self.simulator
        else:
            for shard in self.shards:
                shard.network.pipeline.self_flush = False
            self.network = _ShardedNetworkView(self.shards)
            self.metrics = MetricsCollector()
            self.kernel = ShardedSimulator(
                [shard.simulator for shard in self.shards],
                [shard.network.pipeline for shard in self.shards],
                self._shard_of_process,
                self._cross_cluster_lookahead,
                barrier_provider=self.next_barrier if spec.rtt_trace is not None else None,
            )

        self.replicas: Dict[str, HamavaReplica] = {}
        self.clients: List[WorkloadClient] = []
        self.populations: List[ClientPopulation] = []
        self.reconfig_clients: List[ReconfigurationClient] = []
        self._joiner_count = 0
        self._started = False
        self._build()

    # ------------------------------------------------------------------ #
    # Shard topology
    # ------------------------------------------------------------------ #
    def shard_of_cluster(self, cluster_id: int) -> Shard:
        """The shard that owns a cluster's replicas and clients."""
        return self.shards[self._shard_of_cluster[cluster_id]]

    def _shard_of_process(self, process_id: str) -> int:
        return self._shard_of_cluster[self._owners[process_id]]

    def simulator_for(self, process_id: str) -> Simulator:
        """The kernel events touching ``process_id`` must be scheduled on."""
        cluster_id = self._owners.get(process_id)
        if cluster_id is None:
            return self.simulator
        return self.shards[self._shard_of_cluster[cluster_id]].simulator

    def _cross_cluster_lookahead(self) -> Optional[float]:
        """Conservative lookahead: the cross-cluster latency floor.

        Resolved once, lazily, at the first barrier computation — after RTT
        overrides and scheduled joiners have placed every process.  The
        single-shard flush and the multi-shard coordinator both call this,
        so they walk the same barrier grid.
        """
        if not self._lookahead_resolved:
            self._lookahead = self.latency_model.min_cross_group_floor(self._owners)
            self._lookahead_resolved = True
        return self._lookahead

    def _resolve_floor_schedule(self) -> Optional[List[Tuple[float, float]]]:
        if not self._floor_schedule_resolved:
            self._floor_schedule = self.latency_model.cross_group_floor_schedule(self._owners)
            self._floor_schedule_resolved = True
            if self._floor_schedule is not None:
                self._floor_starts = [start for start, _ in self._floor_schedule]
        return self._floor_schedule

    def next_barrier(self, time: float) -> Optional[float]:
        """Smallest barrier strictly after ``time`` under the floor schedule.

        For the static single-segment schedule this reproduces the
        ``k * L`` grid of ``DeliveryPipeline._next_barrier`` bit-for-bit
        (segment start ``0.0`` makes ``start + k * floor`` IEEE-identical
        to ``k * floor``).  With a trace the grid restarts at every floor
        segment and is clamped to the next boundary, so no lookahead window
        straddles a floor change.  Returns ``None`` when no cross-cluster
        pair exists (no barriers needed).
        """
        schedule = self._resolve_floor_schedule()
        if schedule is None:
            return None
        index = bisect.bisect_right(self._floor_starts, time) - 1
        if index < 0:
            index = 0
        start, floor = schedule[index]
        offset = time - start
        k = int(offset / floor)
        while start + k * floor <= time:
            k += 1
        while k > 1 and start + (k - 1) * floor > time:
            k -= 1
        barrier = start + k * floor
        if index + 1 < len(self._floor_starts):
            boundary = self._floor_starts[index + 1]
            if barrier > boundary:
                barrier = boundary
        return barrier

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _client_prefix(self) -> str:
        return "population" if self.spec.workload_model == "open" else "client"

    def _build(self) -> None:
        spec = self.spec
        prefix = self._client_prefix()
        # Fill the owner map for the whole topology first: ports snapshot
        # their owner at registration, and replicas register themselves in
        # their constructor, so every process id must be claimable before
        # the first replica is built.
        for cluster_id in self.system_config.cluster_ids():
            for replica_id in self.system_config.members(cluster_id):
                self._owners[replica_id] = cluster_id
            for client_index in range(spec.clients_per_cluster):
                self._owners[f"{prefix}{cluster_id}.{client_index}"] = cluster_id
        for cluster_id in self.system_config.cluster_ids():
            shard = self.shard_of_cluster(cluster_id)
            shard.clusters.append(cluster_id)
            if self.local_shard is not None and shard.index != self.local_shard:
                self._register_ghost_cluster(cluster_id)
                continue
            members = self.system_config.members(cluster_id)
            for index, replica_id in enumerate(members):
                replica = spec.replica_class(
                    replica_id=replica_id,
                    cluster_id=cluster_id,
                    system_config=self.system_config,
                    network=shard.network,
                    simulator=shard.simulator,
                    config=spec.config,
                    metrics=shard.metrics,
                )
                replica.is_reporter = index == 0
                region = spec.region_overrides.get(replica_id)
                if region is not None:
                    self.latency_model.place(replica_id, region)
                self.replicas[replica_id] = replica
            for client_index in range(spec.clients_per_cluster):
                if spec.workload_model == "open":
                    self._build_population(shard, cluster_id, client_index)
                else:
                    self._build_client(shard, cluster_id, client_index)

    def _register_ghost_cluster(self, cluster_id: int) -> None:
        """Place and key a remote shard's processes without building them.

        A multiprocess shard worker still needs every remote process in the
        shared latency model (pair constants, lookahead floor) and in the
        key registry (verifying signatures on cross-shard envelopes); it
        must *not* own their ports or schedule their events.
        """
        spec = self.spec
        region = self.system_config.region_of_cluster(cluster_id)
        for replica_id in self.system_config.members(cluster_id):
            self.latency_model.place(replica_id, spec.region_overrides.get(replica_id, region))
            self.registry.register(replica_id)
        prefix = self._client_prefix()
        for client_index in range(spec.clients_per_cluster):
            client_id = f"{prefix}{cluster_id}.{client_index}"
            self.latency_model.place(client_id, region)
            self.registry.register(client_id)

    def _build_client(self, shard: Shard, cluster_id: int, client_index: int) -> None:
        spec = self.spec
        client_id = f"client{cluster_id}.{client_index}"
        workload = YcsbWorkload(spec.workload, shard.simulator.rng.child(f"workload/{client_id}"))
        client = WorkloadClient(
            client_id=client_id,
            simulator=shard.simulator,
            network=shard.network,
            workload=workload,
            target_replicas=self.system_config.members(cluster_id),
            threads=spec.client_threads,
            metrics=shard.metrics,
            retry_timeout=spec.config.retry_timeout,
        )
        shard.network.register(client, self.system_config.region_of_cluster(cluster_id))
        self.clients.append(client)

    def _build_population(self, shard: Shard, cluster_id: int, client_index: int) -> None:
        spec = self.spec
        client_id = f"population{cluster_id}.{client_index}"
        workload = YcsbWorkload(spec.workload, shard.simulator.rng.child(f"workload/{client_id}"))
        config = spec.population.copy() if spec.population is not None else PopulationConfig()
        population = ClientPopulation(
            client_id=client_id,
            simulator=shard.simulator,
            network=shard.network,
            workload=workload,
            target_replicas=self.system_config.members(cluster_id),
            config=config,
            metrics=shard.metrics,
            retry_timeout=spec.config.retry_timeout,
        )
        shard.network.register(population, self.system_config.region_of_cluster(cluster_id))
        self.populations.append(population)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start all replicas and clients (idempotent)."""
        if self._started:
            return
        self._started = True
        for replica in self.replicas.values():
            replica.start()
        for client in self.clients:
            client.start()
        for population in self.populations:
            population.start()
        for churn in self.reconfig_clients:
            churn.start()

    def run(self, duration: float, warmup: float = 0.0) -> MetricsCollector:
        """Run the deployment for ``duration`` virtual seconds.

        The cyclic garbage collector is tuned for the duration of the run:
        simulation hot loops allocate heavily (events, envelopes, digests)
        but almost entirely acyclically, so objects die by refcount and the
        default gen-0 threshold (700 net allocations) just re-scans the
        long-lived deployment graph thousands of times per simulated second.
        A larger threshold recovers a few percent of wall time; thresholds
        are restored afterwards, and collection timing cannot affect the
        simulation's deterministic results.

        Args:
            duration: Total virtual time to simulate.
            warmup: Completions before this time are excluded from metrics
                queries (the paper reports the last minute of 3-minute runs).
        """
        self.start()
        thresholds = gc.get_threshold()
        gc.set_threshold(100_000, thresholds[1], thresholds[2])
        try:
            self.kernel.run_for(duration)
        finally:
            gc.set_threshold(*thresholds)
        self.finalize_metrics()
        self.metrics.set_window(warmup, self.kernel.now)
        return self.metrics

    def finalize_metrics(self) -> None:
        """Impose the canonical record order (merging shards first if any).

        Rebuilt from the per-shard collectors on every call, so repeated
        ``run()`` calls stay cumulative exactly like the serial path.
        """
        if self.num_shards == 1:
            self.metrics.canonicalize()
            return
        master = self.metrics
        master.transactions = []
        master.rounds = []
        master.reconfigs = []
        master.joins_completed = []
        master._completion_times = []
        master.offered = 0
        master.lease_hits = 0
        master.lease_misses = 0
        master.merge_from([shard.metrics for shard in self.shards])

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def replica(self, replica_id: str) -> HamavaReplica:
        """Look up a replica by id."""
        if replica_id not in self.replicas:
            raise ConfigurationError(f"unknown replica {replica_id!r}")
        return self.replicas[replica_id]

    def cluster_replicas(self, cluster_id: int) -> List[HamavaReplica]:
        """All replicas that consider themselves members of a cluster."""
        return [
            replica
            for replica in self.replicas.values()
            if replica.cluster_id == cluster_id and replica.mode != MODE_IDLE
        ]

    def leader_of(self, cluster_id: int) -> HamavaReplica:
        """The current leader of a cluster, as seen by its first member."""
        members = sorted(self.system_config.members(cluster_id))
        reporter = self.replicas[members[0]]
        return self.replicas[reporter.leader]

    def active_view(self, cluster_id: int) -> set:
        """The membership view of a cluster held by its reporter replica."""
        members = sorted(self.system_config.members(cluster_id))
        return set(self.replicas[members[0]].view[cluster_id])

    # ------------------------------------------------------------------ #
    # Churn scheduling
    # ------------------------------------------------------------------ #
    def add_joiner(
        self,
        cluster_id: int,
        at_time: float,
        replica_id: Optional[str] = None,
        region: Optional[str] = None,
    ) -> Optional[HamavaReplica]:
        """Create an idle replica that will request to join ``cluster_id``.

        Returns the new replica so callers can inspect it after the run
        (``None`` from a shard worker when another shard owns the cluster).
        """
        self._joiner_count += 1
        replica_id = replica_id or f"joiner{self._joiner_count}"
        shard = self.shard_of_cluster(cluster_id)
        # Joiners are owned by the cluster they join — in every shard
        # layout, including the serial one, so their cross-cluster traffic
        # is mailboxed identically everywhere.
        self._owners[replica_id] = cluster_id
        if self.local_shard is not None and shard.index != self.local_shard:
            placement = region or self.system_config.region_of_cluster(cluster_id)
            self.latency_model.place(replica_id, placement)
            self.registry.register(replica_id)
            return None
        replica = self.spec.replica_class(
            replica_id=replica_id,
            cluster_id=cluster_id,
            system_config=self.system_config,
            network=shard.network,
            simulator=shard.simulator,
            config=self.spec.config,
            metrics=shard.metrics,
            mode=MODE_IDLE,
        )
        if region is not None:
            self.latency_model.place(replica_id, region)
        self.replicas[replica_id] = replica
        replica.start()
        shard.simulator.schedule_at(
            at_time,
            lambda r=replica, cid=cluster_id: r.request_join(cid),
            label=f"join:{replica_id}",
        )
        return replica

    def schedule_leave(self, replica_id: str, at_time: float) -> None:
        """Schedule an existing replica's leave request."""
        if replica_id not in self.replicas and self.local_shard is not None:
            return  # owned by another shard's worker process
        replica = self.replica(replica_id)
        self.simulator_for(replica_id).schedule_at(
            at_time, replica.request_leave, label=f"leave:{replica_id}"
        )

    def add_reconfig_client(self, client: ReconfigurationClient, region: Optional[str] = None) -> None:
        """Attach a churn client (E7/E8 style schedules).

        The client is registered in ``region`` when given, else the spec's
        ``reconfig_client_region``, else the first cluster's region — so
        multi-region deployments place churn next to the clusters they churn
        instead of a hard-coded location.

        Churn clients always live on shard 0 and are *owned* by the first
        cluster (the owner decides mailbox-vs-fused routing, so it must be
        the same in every shard layout); construct them against
        ``deployment.simulator``, which is shard 0's kernel.
        """
        if region is None:
            region = self.spec.reconfig_client_region
        if region is None:
            region = self.system_config.region_of_cluster(self.system_config.cluster_ids()[0])
        self._owners[client.process_id] = self.system_config.cluster_ids()[0]
        if self.local_shard is not None and self.local_shard != 0:
            self.latency_model.place(client.process_id, region)
            self.registry.register(client.process_id)
            return
        self.shards[0].network.register(client, region)
        self.reconfig_clients.append(client)
        if self._started:
            client.start()


def build_deployment(
    clusters: Sequence[Tuple[int, str]],
    engine: str = "hotstuff",
    seed: int = 1,
    config: Optional[HamavaConfig] = None,
    **spec_kwargs,
) -> Deployment:
    """Compatibility shim over the declarative scenario API.

    Existing call sites keep working; new code should prefer
    :class:`repro.harness.builder.Scenario` /
    :class:`repro.harness.scenario.ScenarioSpec`, which add schedules,
    serialization, and multi-seed execution on top of the same path.
    """
    from repro.harness.scenario import ScenarioSpec

    if "reconfig_client_region" in spec_kwargs:
        spec_kwargs["churn_client_region"] = spec_kwargs.pop("reconfig_client_region")
    scenario = ScenarioSpec(
        name="build_deployment",
        clusters=[tuple(cluster) for cluster in clusters],
        engine=engine,
        seed=seed,
        config=config,
        **spec_kwargs,
    )
    return scenario.build()


__all__ = ["Deployment", "DeploymentSpec", "build_deployment"]
