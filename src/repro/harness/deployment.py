"""Deployment builder: wires simulator, network, replicas, and clients.

A :class:`Deployment` corresponds to one experimental data point in the
paper: a set of clusters (with sizes and regions), a protocol configuration,
one workload client per cluster, and optional fault/churn schedules.  After
``run()`` the attached :class:`~repro.harness.metrics.MetricsCollector`
answers the questions the figures plot.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.core.config import HamavaConfig, SystemConfig
from repro.core.replica import MODE_IDLE, ByzantineBehavior, HamavaReplica
from repro.errors import ConfigurationError
from repro.harness.metrics import MetricsCollector
from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel, LatencyParameters
from repro.net.network import Network, NetworkConfig
from repro.sim.simulator import Simulator
from repro.workload.clients import ReconfigurationClient, WorkloadClient
from repro.workload.population import ClientPopulation, PopulationConfig
from repro.workload.ycsb import YcsbConfig, YcsbWorkload


@dataclass
class DeploymentSpec:
    """Everything needed to build one deployment.

    Attributes:
        clusters: ``[(size, region), ...]`` — one entry per cluster.
        config: Protocol configuration (engine, batch size, timeouts, ...).
        seed: Scenario seed; same seed ⇒ same schedule.
        client_threads: Closed-loop threads per workload client (per cluster).
        workload: YCSB parameters.
        latency: Latency-model constants.
        network: Network processing-cost constants.
        clients_per_cluster: Number of workload clients per cluster.
        workload_model: ``"closed"`` (per-thread YCSB clients) or ``"open"``
            (one aggregate :class:`ClientPopulation` per cluster).
        population: Open-loop population parameters (``"open"`` model only;
            defaults applied when ``None``).
        replica_class: Replica implementation (Hamava or a baseline).
        region_overrides: Optional per-replica region placement, used by the
            non-clustered baseline whose single "cluster" spans regions.
        reconfig_client_region: Region churn/reconfiguration clients are
            registered in; defaults to the first cluster's region.
    """

    clusters: Sequence[Tuple[int, str]]
    config: HamavaConfig = field(default_factory=HamavaConfig)
    seed: int = 1
    client_threads: int = 16
    workload: YcsbConfig = field(default_factory=YcsbConfig)
    latency: LatencyParameters = field(default_factory=LatencyParameters)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    clients_per_cluster: int = 1
    workload_model: str = "closed"
    population: Optional[PopulationConfig] = None
    replica_class: Type[HamavaReplica] = HamavaReplica
    region_overrides: Dict[str, str] = field(default_factory=dict)
    reconfig_client_region: Optional[str] = None


class Deployment:
    """A runnable simulated deployment of the replicated system."""

    def __init__(self, spec: DeploymentSpec) -> None:
        self.spec = spec
        self.simulator = Simulator(seed=spec.seed)
        self.registry = KeyRegistry(seed=spec.seed)
        self.latency_model = LatencyModel(self.simulator.rng, spec.latency)
        self.network = Network(self.simulator, self.latency_model, self.registry, spec.network)
        self.metrics = MetricsCollector()
        self.system_config = SystemConfig.build(spec.clusters)
        self.replicas: Dict[str, HamavaReplica] = {}
        self.clients: List[WorkloadClient] = []
        self.populations: List[ClientPopulation] = []
        self.reconfig_clients: List[ReconfigurationClient] = []
        self._joiner_count = 0
        self._started = False
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        spec = self.spec
        for cluster_id in self.system_config.cluster_ids():
            members = self.system_config.members(cluster_id)
            for index, replica_id in enumerate(members):
                replica = spec.replica_class(
                    replica_id=replica_id,
                    cluster_id=cluster_id,
                    system_config=self.system_config,
                    network=self.network,
                    simulator=self.simulator,
                    config=spec.config,
                    metrics=self.metrics,
                )
                replica.is_reporter = index == 0
                region = spec.region_overrides.get(replica_id)
                if region is not None:
                    self.latency_model.place(replica_id, region)
                self.replicas[replica_id] = replica
            for client_index in range(spec.clients_per_cluster):
                if spec.workload_model == "open":
                    self._build_population(cluster_id, client_index)
                else:
                    self._build_client(cluster_id, client_index)

    def _build_client(self, cluster_id: int, client_index: int) -> None:
        spec = self.spec
        client_id = f"client{cluster_id}.{client_index}"
        workload = YcsbWorkload(spec.workload, self.simulator.rng.child(f"workload/{client_id}"))
        client = WorkloadClient(
            client_id=client_id,
            simulator=self.simulator,
            network=self.network,
            workload=workload,
            target_replicas=self.system_config.members(cluster_id),
            threads=spec.client_threads,
            metrics=self.metrics,
            retry_timeout=spec.config.retry_timeout,
        )
        self.network.register(client, self.system_config.region_of_cluster(cluster_id))
        self.clients.append(client)

    def _build_population(self, cluster_id: int, client_index: int) -> None:
        spec = self.spec
        client_id = f"population{cluster_id}.{client_index}"
        workload = YcsbWorkload(spec.workload, self.simulator.rng.child(f"workload/{client_id}"))
        config = spec.population.copy() if spec.population is not None else PopulationConfig()
        population = ClientPopulation(
            client_id=client_id,
            simulator=self.simulator,
            network=self.network,
            workload=workload,
            target_replicas=self.system_config.members(cluster_id),
            config=config,
            metrics=self.metrics,
            retry_timeout=spec.config.retry_timeout,
        )
        self.network.register(population, self.system_config.region_of_cluster(cluster_id))
        self.populations.append(population)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start all replicas and clients (idempotent)."""
        if self._started:
            return
        self._started = True
        for replica in self.replicas.values():
            replica.start()
        for client in self.clients:
            client.start()
        for population in self.populations:
            population.start()
        for churn in self.reconfig_clients:
            churn.start()

    def run(self, duration: float, warmup: float = 0.0) -> MetricsCollector:
        """Run the deployment for ``duration`` virtual seconds.

        The cyclic garbage collector is tuned for the duration of the run:
        simulation hot loops allocate heavily (events, envelopes, digests)
        but almost entirely acyclically, so objects die by refcount and the
        default gen-0 threshold (700 net allocations) just re-scans the
        long-lived deployment graph thousands of times per simulated second.
        A larger threshold recovers a few percent of wall time; thresholds
        are restored afterwards, and collection timing cannot affect the
        simulation's deterministic results.

        Args:
            duration: Total virtual time to simulate.
            warmup: Completions before this time are excluded from metrics
                queries (the paper reports the last minute of 3-minute runs).
        """
        self.start()
        thresholds = gc.get_threshold()
        gc.set_threshold(100_000, thresholds[1], thresholds[2])
        try:
            self.simulator.run_for(duration)
        finally:
            gc.set_threshold(*thresholds)
        self.metrics.set_window(warmup, self.simulator.now)
        return self.metrics

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def replica(self, replica_id: str) -> HamavaReplica:
        """Look up a replica by id."""
        if replica_id not in self.replicas:
            raise ConfigurationError(f"unknown replica {replica_id!r}")
        return self.replicas[replica_id]

    def cluster_replicas(self, cluster_id: int) -> List[HamavaReplica]:
        """All replicas that consider themselves members of a cluster."""
        return [
            replica
            for replica in self.replicas.values()
            if replica.cluster_id == cluster_id and replica.mode != MODE_IDLE
        ]

    def leader_of(self, cluster_id: int) -> HamavaReplica:
        """The current leader of a cluster, as seen by its first member."""
        members = sorted(self.system_config.members(cluster_id))
        reporter = self.replicas[members[0]]
        return self.replicas[reporter.leader]

    def active_view(self, cluster_id: int) -> set:
        """The membership view of a cluster held by its reporter replica."""
        members = sorted(self.system_config.members(cluster_id))
        return set(self.replicas[members[0]].view[cluster_id])

    # ------------------------------------------------------------------ #
    # Churn scheduling
    # ------------------------------------------------------------------ #
    def add_joiner(
        self,
        cluster_id: int,
        at_time: float,
        replica_id: Optional[str] = None,
        region: Optional[str] = None,
    ) -> HamavaReplica:
        """Create an idle replica that will request to join ``cluster_id``.

        Returns the new replica so callers can inspect it after the run.
        """
        self._joiner_count += 1
        replica_id = replica_id or f"joiner{self._joiner_count}"
        replica = self.spec.replica_class(
            replica_id=replica_id,
            cluster_id=cluster_id,
            system_config=self.system_config,
            network=self.network,
            simulator=self.simulator,
            config=self.spec.config,
            metrics=self.metrics,
            mode=MODE_IDLE,
        )
        if region is not None:
            self.latency_model.place(replica_id, region)
        self.replicas[replica_id] = replica
        replica.start()
        self.simulator.schedule_at(
            at_time,
            lambda r=replica, cid=cluster_id: r.request_join(cid),
            label=f"join:{replica_id}",
        )
        return replica

    def schedule_leave(self, replica_id: str, at_time: float) -> None:
        """Schedule an existing replica's leave request."""
        replica = self.replica(replica_id)
        self.simulator.schedule_at(
            at_time, replica.request_leave, label=f"leave:{replica_id}"
        )

    def add_reconfig_client(self, client: ReconfigurationClient, region: Optional[str] = None) -> None:
        """Attach a churn client (E7/E8 style schedules).

        The client is registered in ``region`` when given, else the spec's
        ``reconfig_client_region``, else the first cluster's region — so
        multi-region deployments place churn next to the clusters they churn
        instead of a hard-coded location.
        """
        if region is None:
            region = self.spec.reconfig_client_region
        if region is None:
            region = self.system_config.region_of_cluster(self.system_config.cluster_ids()[0])
        self.network.register(client, region)
        self.reconfig_clients.append(client)
        if self._started:
            client.start()


def build_deployment(
    clusters: Sequence[Tuple[int, str]],
    engine: str = "hotstuff",
    seed: int = 1,
    config: Optional[HamavaConfig] = None,
    **spec_kwargs,
) -> Deployment:
    """Compatibility shim over the declarative scenario API.

    Existing call sites keep working; new code should prefer
    :class:`repro.harness.builder.Scenario` /
    :class:`repro.harness.scenario.ScenarioSpec`, which add schedules,
    serialization, and multi-seed execution on top of the same path.
    """
    from repro.harness.scenario import ScenarioSpec

    if "reconfig_client_region" in spec_kwargs:
        spec_kwargs["churn_client_region"] = spec_kwargs.pop("reconfig_client_region")
    scenario = ScenarioSpec(
        name="build_deployment",
        clusters=[tuple(cluster) for cluster in clusters],
        engine=engine,
        seed=seed,
        config=config,
        **spec_kwargs,
    )
    return scenario.build()


__all__ = ["Deployment", "DeploymentSpec", "build_deployment"]
