"""Multiprocess execution of sharded deployments.

The in-process :class:`~repro.sim.sharded.ShardedSimulator` interleaves the
shards of one deployment on one CPU; this module runs the *same* window
protocol across forked worker processes, one per shard, so a topology sweep
actually uses multiple cores.

Every worker rebuilds the full scenario spec with ``local_shard=i``: it owns
its clusters' processes and registers the rest as ghosts (placed in the
latency model and key registry, so cross-shard envelopes verify and the
lookahead floor is identical in every process).  Workers then advance
window by window over the very same conservative barrier grid as the
in-process kernel, exchanging cross-shard mailboxes *directly with each
other* at every barrier over a full mesh of pipes — an empty batch doubles
as the null message that lets a peer advance.  Each worker splits its own
outbox by destination shard (every worker derives the identical owner map
from the spec), and sorts the union of the batches it receives; because the
canonical ``(arrival, sender, xseq)`` order restricted to one shard's
entries equals that shard's slice of the in-process coordinator's global
injection order, results are byte-identical to serial and
in-process-sharded execution of the same spec.

The parent process only collects final results: each shard's metrics
collector, network statistics, and population counters, merged by the same
fold used in-process.  (Envelope signatures and certificates carry pickle
hooks that drop registry-identity memos; the receiving worker's key
registry is a deterministic twin, so re-verification re-derives them.)

Partition events (steady and flapping) are the one unsupported schedule
feature: their drop rules read live replica state across clusters, which a
worker process cannot see.  Specs containing partitions fall back to
in-process sharded execution (still byte-identical, just not multi-core).
"""

from __future__ import annotations

import gc
import math
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.harness.metrics import MetricsCollector
from repro.harness.scenario import FlappingPartitionEvent, PartitionEvent, ScenarioSpec
from repro.net.network import NetworkStats

#: Seconds the parent waits on a worker's final result before declaring the
#: run wedged.  Generous: it spans the whole simulation, not one window.
_RESULT_TIMEOUT = 600.0


@dataclass
class ShardedOutcome:
    """What a sharded (parallel or fallback) run produces for the runner."""

    metrics: MetricsCollector
    network_stats: NetworkStats
    population_stats: List[Dict[str, float]]
    engine: str
    #: Simulation events processed across all shards (determinism probe).
    events: int = 0


def _supports_parallel(spec: ScenarioSpec) -> bool:
    if any(
        isinstance(event, (PartitionEvent, FlappingPartitionEvent)) for event in spec.schedule
    ):
        return False
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return False
    return True


def _exchange(shard_index: int, peers: dict, batches: List[list]) -> List[tuple]:
    """One barrier's peer-to-peer mailbox swap; returns the merged inbox.

    Pairwise handshakes run in peer-index order with the lower-index side
    sending first — the sequence every worker agrees on, so no two workers
    ever block sending to each other (the classic pipe-buffer deadlock).
    An empty batch is still sent: it is the null message telling the peer
    nothing earlier than the next barrier is coming.
    """
    inbox = batches[shard_index]
    for peer_index in sorted(peers):
        conn = peers[peer_index]
        try:
            if shard_index < peer_index:
                conn.send(batches[peer_index])
                inbox.extend(conn.recv())
            else:
                incoming = conn.recv()
                conn.send(batches[peer_index])
                inbox.extend(incoming)
        except (EOFError, BrokenPipeError) as exc:
            raise SimulationError(f"shard peer {peer_index} died mid-window") from exc
    inbox.sort()
    return inbox


def _worker_main(conn, peers: dict, spec: ScenarioSpec, shard_index: int) -> None:
    """One shard's window loop, synchronised with its peers at barriers."""
    try:
        deployment = spec.build(local_shard=shard_index)
        shard = deployment.shards[shard_index]
        simulator = shard.simulator
        pipeline = shard.network.pipeline
        route = deployment._shard_of_process
        num_shards = len(deployment.shards)
        deployment.start()
        until = spec.duration
        thresholds = gc.get_threshold()
        gc.set_threshold(100_000, thresholds[1], thresholds[2])
        now = 0.0
        while True:
            # The deployment's schedule generalises the static grid: for a
            # trace-free spec it reproduces ``_next_barrier`` bit-for-bit,
            # with a trace it restarts the grid at floor-segment boundaries
            # — every worker derives the identical sequence from the spec.
            barrier = deployment.next_barrier(now)
            if barrier is None or barrier > until:
                barrier = until
            simulator.run(until=math.nextafter(barrier, -math.inf))
            batches: List[list] = [[] for _ in range(num_shards)]
            for entry in pipeline.take_outbox():
                batches[route(entry[3])].append(entry)
            for entry in _exchange(shard_index, peers, batches):
                pipeline.deliver_cross(entry[0], entry[3], entry[4])
            now = barrier
            if barrier >= until:
                break
        # Final inclusive pass: events at exactly ``until``.
        simulator.run(until=until)
        gc.set_threshold(*thresholds)
        conn.send(
            (
                "done",
                {
                    "metrics": shard.metrics,
                    "stats": shard.network.stats,
                    "populations": [population.stats() for population in deployment.populations],
                    "events": simulator.events_processed,
                },
            )
        )
    except Exception:  # noqa: BLE001 - shipped to the parent as the payload
        try:
            conn.send(("error", f"shard {shard_index}:\n{traceback.format_exc()}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        for peer_conn in peers.values():
            peer_conn.close()
        conn.close()


def _run_in_process(spec: ScenarioSpec) -> ShardedOutcome:
    deployment = spec.build()
    metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
    return ShardedOutcome(
        metrics=metrics,
        network_stats=deployment.network.stats,
        population_stats=[population.stats() for population in deployment.populations],
        engine=deployment.spec.config.engine,
        events=deployment.kernel.events_processed,
    )


def run_sharded_parallel(spec: ScenarioSpec) -> ShardedOutcome:
    """Run one spec with its shards in forked worker processes.

    Falls back to in-process execution (identical results) when the spec
    effectively has fewer than two shards, schedules a partition, or the
    platform cannot fork.
    """
    spec.validate()
    num_shards = max(1, min(int(spec.shards or 1), len(spec.clusters)))
    if num_shards < 2 or not _supports_parallel(spec):
        return _run_in_process(spec)

    context = multiprocessing.get_context("fork")
    # Full mesh: one duplex pipe per worker pair, plus one to the parent.
    mesh: Dict[tuple, tuple] = {
        (low, high): context.Pipe()
        for low in range(num_shards)
        for high in range(low + 1, num_shards)
    }
    conns = []
    workers = []
    for index in range(num_shards):
        parent_conn, child_conn = context.Pipe()
        peers = {}
        for (low, high), (low_end, high_end) in mesh.items():
            if index == low:
                peers[high] = low_end
            elif index == high:
                peers[low] = high_end
        worker = context.Process(
            target=_worker_main,
            args=(child_conn, peers, spec, index),
            daemon=True,
            name=f"shard-{index}",
        )
        worker.start()
        child_conn.close()
        conns.append(parent_conn)
        workers.append(worker)
    for low_end, high_end in mesh.values():
        low_end.close()
        high_end.close()

    results: List[Optional[dict]] = [None] * num_shards
    try:
        for index, conn in enumerate(conns):
            if not conn.poll(_RESULT_TIMEOUT):
                raise SimulationError(f"shard worker {index} did not finish in time")
            try:
                kind, payload = conn.recv()
            except EOFError as exc:
                raise SimulationError(f"shard worker {index} died mid-run") from exc
            if kind == "error":
                raise SimulationError(f"shard worker failed:\n{payload}")
            results[index] = payload
    finally:
        for conn in conns:
            conn.close()
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():  # pragma: no cover - defensive teardown
                worker.terminate()

    metrics = MetricsCollector()
    metrics.merge_from([result["metrics"] for result in results])
    metrics.set_window(spec.warmup, spec.duration)
    stats = NetworkStats()
    for result in results:
        stats.merge(result["stats"])
    population_stats = [entry for result in results for entry in result["populations"]]
    return ShardedOutcome(
        metrics=metrics,
        network_stats=stats,
        population_stats=population_stats,
        engine=spec.compiled_config().engine,
        events=sum(result["events"] for result in results),
    )


__all__ = ["ShardedOutcome", "run_sharded_parallel"]
