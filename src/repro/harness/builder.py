"""Fluent scenario builder: compose experiments in a few declarative lines.

The builder is the experiment-facing entry point of the harness::

    from repro import Scenario

    rows = (
        Scenario("e4")
        .clusters(4, 4)
        .engine("hotstuff")
        .crash("r0.1", at=2.0)
        .join(cluster=1, at=3.0)
        .duration(8.0, warmup=1.0)
        .seeds(1, 2, 3)
        .run(workers=2)
    )

Every fluent call returns the builder, ``specs()`` compiles one
:class:`~repro.harness.scenario.ScenarioSpec` per requested seed, and
``run()`` hands them to a :class:`~repro.harness.runner.ScenarioRunner`.
Replica references accept both the canonical ``"c0/r1"`` ids and the
shorthand ``"r0.1"`` (cluster 0, replica 1).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import HamavaConfig
from repro.errors import ConfigurationError
from repro.workload.population import PopulationConfig, resolve_population_preset
from repro.workload.shapes import LoadShape
from repro.harness.scenario import (
    DEFAULT_REGION,
    ByzantineEvent,
    ChurnLoop,
    ClockSkewEvent,
    CrashEvent,
    FlappingPartitionEvent,
    GrayReplicaEvent,
    JoinEvent,
    LeaveEvent,
    PartitionEvent,
    RegionOutageEvent,
    ScenarioSpec,
)
from repro.net.adversity import CongestionConfig, CrossTrafficStream, RttTrace

_SHORTHAND = re.compile(r"^r(\d+)\.(\d+)$")

ClusterShape = Union[int, Tuple[int, str], List[object]]


def normalize_replica_ref(ref: str) -> str:
    """Map the ``"r<cluster>.<index>"`` shorthand to a ``"c<cluster>/r<index>"`` id."""
    match = _SHORTHAND.match(ref)
    if match:
        return f"c{match.group(1)}/r{match.group(2)}"
    return ref


class Scenario:
    """Composable builder that compiles to :class:`ScenarioSpec` objects."""

    def __init__(self, name: str = "scenario") -> None:
        self._spec = ScenarioSpec(name=name, clusters=[])
        self._seeds: List[int] = []
        self._default_region = DEFAULT_REGION
        self._bare_clusters: List[int] = []  # indices placed in the default region

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def clusters(self, *shapes: ClusterShape, region: Optional[str] = None) -> "Scenario":
        """Add clusters: bare sizes (``4, 4``) or ``(size, region)`` pairs."""
        for shape in shapes:
            if isinstance(shape, int):
                if region is None:
                    self._bare_clusters.append(len(self._spec.clusters))
                self._spec.clusters.append((shape, region or self._default_region))
            else:
                size, shape_region = shape
                self._spec.clusters.append((int(size), str(shape_region)))
        return self

    def region(self, region: str) -> "Scenario":
        """Default region for clusters added without an explicit one."""
        self._default_region = region
        for index in self._bare_clusters:
            size, _ = self._spec.clusters[index]
            self._spec.clusters[index] = (size, region)
        return self

    def place(self, replica: str, region: str) -> "Scenario":
        """Pin one replica to a region (heterogeneous E3-style placement)."""
        self._spec.region_overrides[normalize_replica_ref(replica)] = region
        return self

    def place_many(self, overrides: Dict[str, str]) -> "Scenario":
        """Pin several replicas to regions at once."""
        for replica, region in overrides.items():
            self.place(replica, region)
        return self

    def rtt(self, region_a: str, region_b: str, rtt_ms: float) -> "Scenario":
        """Override the round-trip time between two regions (E8 sweeps)."""
        self._spec.rtt_overrides.append((region_a, region_b, float(rtt_ms)))
        return self

    # ------------------------------------------------------------------ #
    # System variant and configuration
    # ------------------------------------------------------------------ #
    def engine(self, engine: str) -> "Scenario":
        """Select the local ordering engine (``"hotstuff"``/``"bftsmart"``)."""
        self._spec.engine = engine
        return self

    def preset(self, preset: str) -> "Scenario":
        """Select a system preset (``"hamava"``, ``"geobft"``, ...)."""
        self._spec.preset = preset
        return self

    def config(self, base: Optional[HamavaConfig] = None, **overrides: object) -> "Scenario":
        """Set the base protocol config and/or flat field overrides."""
        if base is not None:
            self._spec.config = base
        self._spec.config_overrides.update(overrides)
        return self

    def timeouts(self, remote: float, instance: Optional[float] = None, brd: Optional[float] = None) -> "Scenario":
        """Shorthand for the three fault-detection timeouts at once."""
        overrides: Dict[str, object] = {"remote_timeout": remote}
        overrides["instance_timeout"] = instance if instance is not None else remote
        overrides["brd_timeout"] = brd if brd is not None else remote
        self._spec.config_overrides.update(overrides)
        return self

    def replica_class(self, replica_class: Union[str, type]) -> "Scenario":
        """Use a custom replica implementation (class or ``"module:Class"``)."""
        self._spec.replica_class = replica_class
        return self

    # ------------------------------------------------------------------ #
    # Workload and clients
    # ------------------------------------------------------------------ #
    def workload(self, **fields: object) -> "Scenario":
        """Override YCSB workload parameters (``read_fraction``, ...)."""
        for key, value in fields.items():
            if not hasattr(self._spec.workload, key):
                raise ConfigurationError(f"unknown workload field {key!r}")
            setattr(self._spec.workload, key, value)
        return self

    def latency(self, **fields: object) -> "Scenario":
        """Override latency-model constants."""
        for key, value in fields.items():
            if not hasattr(self._spec.latency, key):
                raise ConfigurationError(f"unknown latency field {key!r}")
            setattr(self._spec.latency, key, value)
        return self

    def network(self, **fields: object) -> "Scenario":
        """Override network processing-cost constants."""
        for key, value in fields.items():
            if not hasattr(self._spec.network, key):
                raise ConfigurationError(f"unknown network field {key!r}")
            setattr(self._spec.network, key, value)
        return self

    def threads(self, client_threads: int) -> "Scenario":
        """Closed-loop threads per workload client."""
        self._spec.client_threads = int(client_threads)
        return self

    def open_loop(
        self,
        clients: Optional[int] = None,
        rate: Optional[float] = None,
        shape: Optional[LoadShape] = None,
        preset: Optional[str] = None,
        **fields: object,
    ) -> "Scenario":
        """Switch to the open-loop population workload model.

        Either start from a named population ``preset`` (``"steady"``,
        ``"ramp"``, ``"rush_hour"``, ``"staircase"``, ``"diurnal"``,
        ``"trace"``, ``"smoke"``) or from defaults, then override
        ``clients`` / ``rate`` / ``shape`` and any other
        :class:`~repro.workload.population.PopulationConfig` field
        (``arrival``, ``batch_window``, ``max_outstanding``).
        """
        config = (
            resolve_population_preset(preset)
            if preset is not None
            else (self._spec.population.copy() if self._spec.population is not None else PopulationConfig())
        )
        if clients is not None:
            config.clients = int(clients)
        if rate is not None:
            config.rate = float(rate)
            config.shape = None  # an explicit rate overrides a preset's shape
        if shape is not None:
            config.shape = shape
        for key, value in fields.items():
            if not hasattr(config, key):
                raise ConfigurationError(f"unknown population field {key!r}")
            setattr(config, key, value)
        self._spec.workload_model = "open"
        self._spec.population = config
        return self

    def load_shape(self, shape: LoadShape) -> "Scenario":
        """Set the open-loop arrival-rate shape (implies the open model)."""
        return self.open_loop(shape=shape)

    def read_leases(self, enabled: bool = True, duration: Optional[float] = None) -> "Scenario":
        """Enable leader read leases (lease-covered reads skip consensus)."""
        self._spec.config_overrides["read_leases"] = bool(enabled)
        if duration is not None:
            self._spec.config_overrides["lease_duration"] = float(duration)
        return self

    def clients_per_cluster(self, count: int) -> "Scenario":
        """Number of workload clients per cluster."""
        self._spec.clients_per_cluster = int(count)
        return self

    def churn_region(self, region: str) -> "Scenario":
        """Region churn/reconfiguration clients are registered in."""
        self._spec.churn_client_region = region
        return self

    # ------------------------------------------------------------------ #
    # Run shape
    # ------------------------------------------------------------------ #
    def duration(self, duration: float, warmup: Optional[float] = None) -> "Scenario":
        """Virtual seconds to simulate (and, optionally, the warmup cutoff)."""
        self._spec.duration = float(duration)
        if warmup is not None:
            self._spec.warmup = float(warmup)
        return self

    def warmup(self, warmup: float) -> "Scenario":
        """Exclude completions before this virtual time from metrics."""
        self._spec.warmup = float(warmup)
        return self

    def seed(self, seed: int) -> "Scenario":
        """Single scenario seed (see :meth:`seeds` for multi-seed grids).

        The latest of :meth:`seed`/:meth:`seeds` wins, so calling this
        after :meth:`seeds` collapses the grid back to one seed.
        """
        self._spec.seed = int(seed)
        self._seeds = []
        return self

    def seeds(self, *seeds: int) -> "Scenario":
        """Run this scenario once per seed (compiles to one spec per seed)."""
        self._seeds = [int(seed) for seed in seeds]
        return self

    def shards(self, shards: int, parallel: bool = False) -> "Scenario":
        """Pack clusters onto ``shards`` simulation shards.

        Results are byte-identical for every shard count; sharding only
        changes how the work is executed.  With ``parallel=True`` the
        shards run in worker processes (use for large multi-cluster
        topologies where per-shard event work dominates the barrier cost).
        """
        self._spec.shards = int(shards)
        self._spec.shard_parallel = bool(parallel)
        return self

    def strict_streams(self, enabled: bool = True) -> "Scenario":
        """Enable the RNG stream-ownership audit (raises on foreign draws)."""
        self._spec.strict_streams = bool(enabled)
        return self

    def timeseries(self, bucket: float = 1.0) -> "Scenario":
        """Collect a throughput time series with the given bucket width."""
        self._spec.timeseries_bucket = float(bucket)
        return self

    def stages(self) -> "Scenario":
        """Collect the per-stage latency breakdown (E2)."""
        self._spec.collect_stages = True
        return self

    def label(self, **labels: object) -> "Scenario":
        """Attach free-form tags that are copied into result rows."""
        self._spec.labels.update(labels)
        return self

    # ------------------------------------------------------------------ #
    # Schedule
    # ------------------------------------------------------------------ #
    def join(
        self,
        cluster: int,
        at: float,
        replica_id: Optional[str] = None,
        region: Optional[str] = None,
    ) -> "Scenario":
        """Schedule a join request against ``cluster`` at time ``at``."""
        self._spec.schedule.append(JoinEvent(cluster=cluster, at=at, replica_id=replica_id, region=region))
        return self

    def leave(self, replica: str, at: float) -> "Scenario":
        """Schedule an existing replica's leave request."""
        self._spec.schedule.append(LeaveEvent(replica=normalize_replica_ref(replica), at=at))
        return self

    def crash(self, replica: str, at: float) -> "Scenario":
        """Crash-stop one replica at time ``at``."""
        self._spec.schedule.append(CrashEvent(at=at, replica=normalize_replica_ref(replica)))
        return self

    def crash_leader(self, cluster: int, at: float) -> "Scenario":
        """Crash the leader of ``cluster`` (E4.2)."""
        self._spec.schedule.append(CrashEvent(at=at, cluster=cluster, scope="leader"))
        return self

    def crash_non_leaders(self, cluster: int, at: float, count: Optional[int] = None) -> "Scenario":
        """Crash up to ``f`` (or ``count``) non-leader replicas (E4.1)."""
        self._spec.schedule.append(CrashEvent(at=at, cluster=cluster, scope="non_leaders", count=count))
        return self

    def byzantine_leader(self, cluster: int, at: float) -> "Scenario":
        """Silence the leader's inter-cluster broadcast from time ``at`` (E4.3)."""
        self._spec.schedule.append(ByzantineEvent(cluster=cluster, at=at))
        return self

    def partition(self, cluster_a: int, cluster_b: int, at: float, duration: float) -> "Scenario":
        """Drop traffic between two clusters for ``duration`` seconds."""
        self._spec.schedule.append(
            PartitionEvent(cluster_a=cluster_a, cluster_b=cluster_b, at=at, duration=duration)
        )
        return self

    def gray(
        self, replica: str, at: float, factor: float = 8.0, duration: Optional[float] = None
    ) -> "Scenario":
        """Gray-degrade one replica: its CPU slows by ``factor`` at ``at``."""
        self._spec.schedule.append(
            GrayReplicaEvent(
                at=at, factor=factor, replica=normalize_replica_ref(replica), duration=duration
            )
        )
        return self

    def gray_leader(
        self, cluster: int, at: float, factor: float = 8.0, duration: Optional[float] = None
    ) -> "Scenario":
        """Gray-degrade whichever replica leads ``cluster`` at time ``at``."""
        self._spec.schedule.append(
            GrayReplicaEvent(at=at, factor=factor, cluster=cluster, scope="leader", duration=duration)
        )
        return self

    def clock_skew(
        self, replica: str, at: float, rate: float = 0.5, duration: Optional[float] = None
    ) -> "Scenario":
        """Skew one replica's timer clock (``rate < 1``: timeouts fire early)."""
        self._spec.schedule.append(
            ClockSkewEvent(
                at=at, rate=rate, replica=normalize_replica_ref(replica), duration=duration
            )
        )
        return self

    def clock_skew_leader(
        self, cluster: int, at: float, rate: float = 0.5, duration: Optional[float] = None
    ) -> "Scenario":
        """Skew the clock of whichever replica leads ``cluster`` at ``at``."""
        self._spec.schedule.append(
            ClockSkewEvent(at=at, rate=rate, cluster=cluster, scope="leader", duration=duration)
        )
        return self

    def flapping_partition(
        self,
        cluster_a: int,
        cluster_b: int,
        at: float,
        period: float,
        duty: float = 0.5,
        cycles: int = 5,
        direction: str = "both",
    ) -> "Scenario":
        """Duty-cycle the link between two clusters (optionally one-way)."""
        self._spec.schedule.append(
            FlappingPartitionEvent(
                cluster_a=cluster_a,
                cluster_b=cluster_b,
                at=at,
                period=period,
                duty=duty,
                cycles=cycles,
                direction=direction,
            )
        )
        return self

    def region_outage(self, region: str, at: float, duration: float) -> "Scenario":
        """Cut a whole region off the WAN for ``duration`` seconds."""
        self._spec.schedule.append(RegionOutageEvent(region=region, at=at, duration=duration))
        return self

    # ------------------------------------------------------------------ #
    # Network adversity (continuous, not scheduled)
    # ------------------------------------------------------------------ #
    def rtt_trace(self, trace: RttTrace) -> "Scenario":
        """Drive inter-region RTTs from a piecewise-linear trace."""
        trace.validate()
        self._spec.rtt_trace = trace
        return self

    def congestion(self, config: Optional[CongestionConfig] = None, **fields: object) -> "Scenario":
        """Enable load-dependent link latency (M/M/1-style congestion).

        Pass a full :class:`CongestionConfig` or override individual fields
        (``capacity_bytes_per_sec``, ``window``, ``service_time``,
        ``max_utilization``) on the current/default config.
        """
        if config is None:
            config = (
                self._spec.congestion.copy()
                if self._spec.congestion is not None
                else CongestionConfig()
            )
        for key, value in fields.items():
            if not hasattr(config, key):
                raise ConfigurationError(f"unknown congestion field {key!r}")
            setattr(config, key, value)
        config.validate()
        self._spec.congestion = config
        return self

    def cross_traffic(
        self,
        src_region: str,
        dst_region: str,
        rate_bytes_per_sec: float,
        start: float = 0.0,
        stop: Optional[float] = None,
    ) -> "Scenario":
        """Inject a background traffic stream into the congestion model."""
        if self._spec.congestion is None:
            self._spec.congestion = CongestionConfig()
        self._spec.congestion.streams.append(
            CrossTrafficStream(
                src_region=src_region,
                dst_region=dst_region,
                rate_bytes_per_sec=float(rate_bytes_per_sec),
                start=start,
                stop=stop,
            )
        )
        return self

    def churn(
        self,
        start: float,
        period: float,
        stop: Optional[float] = None,
        clusters: Sequence[int] = (0,),
        prefix: str = "churn",
        region: Optional[str] = None,
    ) -> "Scenario":
        """Add a periodic join loop (E5.2/E7/E8-style churn)."""
        self._spec.schedule.append(
            ChurnLoop(
                start=start,
                period=period,
                stop=stop,
                clusters=tuple(clusters),
                prefix=prefix,
                region=region,
            )
        )
        return self

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def spec(self) -> ScenarioSpec:
        """Compile to a single spec (first seed when several were given)."""
        spec = self._spec.with_seed(self._seeds[0] if self._seeds else self._spec.seed)
        if not spec.clusters:
            spec.clusters = [(4, self._default_region)]
        spec.validate()
        return spec

    def specs(self) -> List[ScenarioSpec]:
        """Compile to one spec per requested seed."""
        base = self.spec()
        seeds = self._seeds if self._seeds else [base.seed]
        return [base.with_seed(seed) for seed in seeds]

    def build(self):
        """Compile and build the deployment for the first seed."""
        return self.spec().build()

    def run(self, workers: int = 1):
        """Execute all seeds, optionally in parallel; returns result rows."""
        from repro.harness.runner import ScenarioRunner

        return ScenarioRunner(workers=workers).run(self)

    def run_one(self):
        """Execute the first seed only; returns a single result row."""
        return self.spec().run()


#: Alias: both names refer to the same fluent builder.
DeploymentBuilder = Scenario

__all__ = ["DeploymentBuilder", "Scenario", "normalize_replica_ref"]
