"""Runners for every experiment in the paper's evaluation (E0–E8, Tables I/II).

Each ``run_*`` function builds the deployments for one figure/table, runs
them on the simulator, and returns a list of result rows (dictionaries) that
mirror the series the paper plots.  The benchmark suite and the examples are
thin wrappers around these runners.

Scale notes: the paper runs 96-node deployments for three minutes of wall
time on Google Cloud.  The runners default to smaller node counts and a few
seconds of *virtual* time so the whole suite completes quickly; pass
``total_nodes``/``duration`` explicitly (or set the ``REPRO_FULL_SCALE``
environment variable) to run at paper scale.  Shapes — who wins, how curves
trend — are preserved at the reduced scale; absolute numbers are not
comparable to the paper's testbed either way.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.complexity import complexity_table
from repro.baselines.geobft import build_geobft_deployment
from repro.baselines.single_workflow import build_single_workflow_deployment
from repro.core.config import HamavaConfig
from repro.harness.deployment import Deployment, DeploymentSpec, build_deployment
from repro.harness.faults import FaultInjector
from repro.net.latency import paper_rtt_matrix
from repro.workload.clients import ReconfigurationClient

#: Region rotation used when spreading clusters across the paper's 3 regions.
PAPER_REGIONS = ("us-west1", "europe-west3", "asia-south1")

Row = Dict[str, object]


def full_scale() -> bool:
    """Whether paper-scale parameters were requested via the environment."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "False")


def default_duration(fallback: float) -> float:
    """Simulated seconds per data point (env override: ``REPRO_DURATION``)."""
    value = os.environ.get("REPRO_DURATION")
    if value:
        return float(value)
    return 180.0 if full_scale() else fallback


def default_nodes(fallback: int) -> int:
    """Total nodes for the cluster-sweep experiments."""
    value = os.environ.get("REPRO_TOTAL_NODES")
    if value:
        return int(value)
    return 96 if full_scale() else fallback


def print_rows(rows: Sequence[Row], title: str = "") -> None:
    """Print result rows as an aligned text table."""
    if title:
        print(f"\n== {title} ==")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    print("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _fast_config(engine: str) -> HamavaConfig:
    """A configuration with fault-detection timeouts sized for short runs."""
    config = HamavaConfig().with_engine(engine).with_timeouts(
        remote_timeout=5.0, instance_timeout=5.0, brd_timeout=5.0
    )
    # Clients must fail over quickly when churn or faults remove the replica
    # they were talking to; the paper's 3-minute runs can afford long client
    # retries, seconds-long simulations cannot.
    config.retry_timeout = 2.0
    return config


def _split_nodes(total: int, clusters: int) -> List[int]:
    """Split ``total`` nodes into ``clusters`` groups as evenly as possible."""
    base = total // clusters
    remainder = total % clusters
    return [base + (1 if index < remainder else 0) for index in range(clusters)]


def _measure(deployment: Deployment, duration: float, warmup: float) -> Dict[str, float]:
    metrics = deployment.run(duration=duration, warmup=warmup)
    return metrics.summary()


# ---------------------------------------------------------------------- #
# Tables I and II
# ---------------------------------------------------------------------- #
def run_table1(z: int = 4, n: int = 24) -> List[Row]:
    """Table I: best-case complexity of the protocols."""
    return [dict(row) for row in complexity_table(z=z, n=n)]


def run_table2() -> List[Row]:
    """Table II: inter-region round-trip latency matrix."""
    matrix = paper_rtt_matrix()
    rows: List[Row] = []
    for origin, destinations in matrix.items():
        row: Row = {"region": origin}
        row.update(destinations)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------- #
# E0 / E1: throughput and latency vs number of clusters
# ---------------------------------------------------------------------- #
def run_cluster_sweep(
    engines: Sequence[str] = ("hotstuff", "bftsmart"),
    cluster_counts: Sequence[int] = (2, 3, 4, 6, 8, 12),
    total_nodes: Optional[int] = None,
    multi_region: bool = False,
    duration: Optional[float] = None,
    warmup: float = 0.5,
    client_threads: int = 24,
    seed: int = 1,
) -> List[Row]:
    """Shared sweep behind E0 (single region) and E1 (three regions)."""
    total_nodes = total_nodes if total_nodes is not None else default_nodes(48)
    duration = duration if duration is not None else default_duration(2.5)
    rows: List[Row] = []
    for engine in engines:
        for clusters in cluster_counts:
            sizes = _split_nodes(total_nodes, clusters)
            if multi_region:
                specs = [(size, PAPER_REGIONS[index % len(PAPER_REGIONS)]) for index, size in enumerate(sizes)]
            else:
                specs = [(size, "us-west1") for size in sizes]
            deployment = build_deployment(
                specs,
                engine=engine,
                seed=seed,
                config=_fast_config(engine),
                client_threads=client_threads,
            )
            summary = _measure(deployment, duration, warmup)
            rows.append(
                {
                    "engine": engine,
                    "clusters": clusters,
                    "nodes": total_nodes,
                    "regions": 3 if multi_region else 1,
                    "throughput": summary["throughput_total"],
                    "latency_mean": summary["latency_mean"],
                    "latency_write": summary["latency_mean_write"],
                    "rounds": summary["rounds"],
                }
            )
    return rows


def run_e0(**kwargs) -> List[Row]:
    """E0: multi-cluster, single region (Fig. 3 left)."""
    kwargs.setdefault("multi_region", False)
    return run_cluster_sweep(**kwargs)


def run_e1(**kwargs) -> List[Row]:
    """E1: multi-cluster, three regions (Fig. 3 right)."""
    kwargs.setdefault("multi_region", True)
    return run_cluster_sweep(**kwargs)


# ---------------------------------------------------------------------- #
# E2: latency breakdown per stage
# ---------------------------------------------------------------------- #
def run_e2(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    warmup: float = 0.5,
    client_threads: int = 12,
    seed: int = 2,
) -> List[Row]:
    """E2: per-stage latency breakdown for 3 clusters of 4 nodes (Fig. 4a)."""
    duration = duration if duration is not None else default_duration(3.0)
    setups = {
        "1 region": ["asia-south1", "asia-south1", "asia-south1"],
        "2 regions": ["europe-west3", "asia-south1", "asia-south1"],
        "3 regions": ["europe-west3", "asia-south1", "us-west1"],
    }
    rows: List[Row] = []
    for label, regions in setups.items():
        deployment = build_deployment(
            [(4, region) for region in regions],
            engine=engine,
            seed=seed,
            config=_fast_config(engine),
            client_threads=client_threads,
        )
        metrics = deployment.run(duration=duration, warmup=warmup)
        breakdown = metrics.stage_breakdown()
        rows.append(
            {
                "setup": label,
                "engine": engine,
                "intra_cluster_ms": breakdown["stage1"] * 1000,
                "inter_cluster_ms": breakdown["stage2"] * 1000,
                "execution_ms": breakdown["stage3"] * 1000,
                "read_latency_ms": metrics.mean_latency(op="read") * 1000,
                "write_latency_ms": metrics.mean_latency(op="write") * 1000,
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# E3: heterogeneity setups
# ---------------------------------------------------------------------- #
def heterogeneity_setups(scale: int) -> Dict[str, Tuple[List[Tuple[int, str]], Dict[str, str]]]:
    """The paper's three E3 setups at a given scale factor.

    There are ``9·s`` nodes in Asia and ``5·s`` in EU.  Setup 1 (homogeneous
    clusters) is forced to build two equal clusters, so one cluster spans the
    two regions (``2s`` Asia + ``5s`` EU members).  Setup 2 (heterogeneous)
    aligns clusters with regions.  Setup 3 further splits the large Asian
    group into two co-located clusters.

    Returns ``{setup_name: (cluster_specs, region_overrides)}``.
    """
    asia = "asia-south1"
    europe = "europe-west3"
    setup1_specs = [(7 * scale, asia), (7 * scale, europe)]
    # Setup 1's second cluster has 2·s members in Asia and 5·s in EU.
    setup1_overrides = {f"c1/r{i}": asia for i in range(2 * scale)}
    return {
        "setup1": (setup1_specs, setup1_overrides),
        "setup2": ([(9 * scale, asia), (5 * scale, europe)], {}),
        "setup3": ([(5 * scale, asia), (4 * scale, asia), (5 * scale, europe)], {}),
    }


def run_e3(
    engines: Sequence[str] = ("hotstuff", "bftsmart"),
    scales: Sequence[int] = (1, 2, 3),
    duration: Optional[float] = None,
    warmup: float = 0.5,
    client_threads: int = 16,
    seed: int = 3,
) -> List[Row]:
    """E3: impact of heterogeneity on throughput and latency (Fig. 4b–4e)."""
    duration = duration if duration is not None else default_duration(2.5)
    rows: List[Row] = []
    for engine in engines:
        for scale in scales:
            for setup_name, (clusters, overrides) in heterogeneity_setups(scale).items():
                spec = DeploymentSpec(
                    clusters=clusters,
                    config=_fast_config(engine),
                    seed=seed,
                    client_threads=client_threads,
                    region_overrides=overrides,
                )
                deployment = Deployment(spec)
                summary = _measure(deployment, duration, warmup)
                rows.append(
                    {
                        "engine": engine,
                        "scale": scale,
                        "setup": setup_name,
                        "throughput": summary["throughput_total"],
                        "latency_mean": summary["latency_mean"],
                        "latency_write": summary["latency_mean_write"],
                    }
                )
    return rows


# ---------------------------------------------------------------------- #
# E4: failures
# ---------------------------------------------------------------------- #
def _failure_deployment(engine: str, seed: int, client_threads: int, nodes_per_cluster: int = 10) -> Deployment:
    config = HamavaConfig().with_engine(engine).with_timeouts(
        remote_timeout=3.0, instance_timeout=3.0, brd_timeout=3.0
    )
    config.retry_timeout = 3.0
    return build_deployment(
        [(nodes_per_cluster, "us-west1"), (nodes_per_cluster, "us-west1")],
        engine=engine,
        seed=seed,
        config=config,
        client_threads=client_threads,
    )


def run_e4(
    scenario: str,
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    fault_time: float = 4.0,
    client_threads: int = 16,
    seed: int = 4,
    nodes_per_cluster: int = 10,
) -> List[Row]:
    """E4: throughput over time under failures (Fig. 4f/4g/4h).

    Args:
        scenario: ``"non_leader"`` (E4.1), ``"leader"`` (E4.2), or
            ``"byzantine_leader"`` (E4.3).
    """
    duration = duration if duration is not None else default_duration(12.0)
    deployment = _failure_deployment(engine, seed, client_threads, nodes_per_cluster)
    injector = FaultInjector(deployment)
    if scenario == "non_leader":
        for cluster_id in (0, 1):
            injector.crash_non_leaders(cluster_id, at_time=fault_time)
    elif scenario == "leader":
        injector.crash_leader(0, at_time=fault_time)
    elif scenario == "byzantine_leader":
        injector.silence_leader_inter_broadcast(0, at_time=fault_time)
    else:
        raise ValueError(f"unknown E4 scenario {scenario!r}")
    metrics = deployment.run(duration=duration, warmup=0.0)
    series = metrics.throughput_timeseries(bucket=1.0, until=duration)
    return [
        {
            "scenario": scenario,
            "engine": engine,
            "time_s": start,
            "throughput": value,
            "fault_time": fault_time,
        }
        for start, value in series
    ]


# ---------------------------------------------------------------------- #
# E5: reconfiguration
# ---------------------------------------------------------------------- #
def run_e5_join_leave(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    client_threads: int = 16,
    seed: int = 5,
    joins: int = 3,
    leaves: int = 3,
) -> Dict[str, object]:
    """E5.1: join and leave bursts against two 7-node clusters (Fig. 5a)."""
    duration = duration if duration is not None else default_duration(12.0)
    config = _fast_config(engine)
    deployment = build_deployment(
        [(7, "us-west1"), (7, "us-west1")],
        engine=engine,
        seed=seed,
        config=config,
        client_threads=client_threads,
    )
    join_time = duration * 0.25
    leave_time = duration * 0.6
    joiners = []
    for cluster_id in (0, 1):
        for index in range(joins):
            joiners.append(
                deployment.add_joiner(cluster_id, at_time=join_time + 0.2 * index,
                                      replica_id=f"new{cluster_id}.{index}")
            )
        for index in range(leaves):
            deployment.schedule_leave(f"c{cluster_id}/r{6 - index}", at_time=leave_time + 0.2 * index)
    metrics = deployment.run(duration=duration, warmup=0.0)
    series = metrics.throughput_timeseries(bucket=1.0, until=duration)
    return {
        "engine": engine,
        "series": series,
        "join_time": join_time,
        "leave_time": leave_time,
        "joins_completed": len(metrics.joins_completed),
        "reconfigs_applied": len(metrics.reconfigs),
        "throughput_before": _window_mean(series, 1.0, join_time),
        # "After" means after the churn has settled: the last two seconds of
        # the run, once clients have failed over away from departed replicas.
        "throughput_after": _window_mean(series, duration - 2.0, duration),
    }


def _window_mean(series: List[Tuple[float, float]], start: float, end: float) -> float:
    values = [value for t, value in series if start <= t < end]
    return sum(values) / len(values) if values else 0.0


def run_e5_workflows(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    client_threads: int = 16,
    seed: int = 6,
    churn_period: float = 1.0,
) -> List[Row]:
    """E5.2: parallel reconfiguration workflow vs single workflow (Fig. 5b)."""
    duration = duration if duration is not None else default_duration(10.0)
    rows: List[Row] = []
    for variant in ("parallel", "single"):
        config = _fast_config(engine)
        if variant == "parallel":
            deployment = build_deployment(
                [(10, "us-west1"), (8, "us-west1")],
                engine=engine,
                seed=seed,
                config=config,
                client_threads=client_threads,
            )
        else:
            deployment = build_single_workflow_deployment(
                [(10, "us-west1"), (8, "us-west1")],
                engine=engine,
                seed=seed,
                config=config,
                client_threads=client_threads,
            )
        start = duration * 0.3
        churn_index = 0
        t = start
        while t < duration - 1.0:
            deployment.add_joiner(0, at_time=t, replica_id=f"churn{churn_index}")
            churn_index += 1
            t += churn_period
        metrics = deployment.run(duration=duration, warmup=0.5)
        rows.append(
            {
                "engine": engine,
                "variant": variant,
                "throughput": metrics.throughput(),
                "latency_write": metrics.mean_latency(op="write"),
                "reconfigs_applied": len(metrics.reconfigs),
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# E6: comparison with GeoBFT
# ---------------------------------------------------------------------- #
def run_e6(
    cluster_counts: Sequence[int] = (2, 3, 4, 6, 8, 12),
    total_nodes: Optional[int] = None,
    multi_region: bool = False,
    duration: Optional[float] = None,
    warmup: float = 0.5,
    client_threads: int = 24,
    seed: int = 7,
) -> List[Row]:
    """E6: AVA-HOTSTUFF vs GeoBFT across cluster counts (Fig. 6a/6b)."""
    total_nodes = total_nodes if total_nodes is not None else default_nodes(48)
    duration = duration if duration is not None else default_duration(2.5)
    rows: List[Row] = []
    for clusters in cluster_counts:
        sizes = _split_nodes(total_nodes, clusters)
        if multi_region:
            specs = [(size, PAPER_REGIONS[index % len(PAPER_REGIONS)]) for index, size in enumerate(sizes)]
        else:
            specs = [(size, "us-west1") for size in sizes]
        ava = build_deployment(
            specs, engine="hotstuff", seed=seed, config=_fast_config("hotstuff"),
            client_threads=client_threads,
        )
        ava_summary = _measure(ava, duration, warmup)
        geo = build_geobft_deployment(
            specs, seed=seed, client_threads=client_threads, config=_fast_config("bftsmart"),
        )
        geo_summary = _measure(geo, duration, warmup)
        rows.append(
            {
                "clusters": clusters,
                "regions": 3 if multi_region else 1,
                "ava_hotstuff_throughput": ava_summary["throughput_total"],
                "geobft_throughput": geo_summary["throughput_total"],
                "ava_hotstuff_latency": ava_summary["latency_mean"],
                "geobft_latency": geo_summary["latency_mean"],
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# E7: reconfiguration frequency
# ---------------------------------------------------------------------- #
def run_e7(
    engines: Sequence[str] = ("hotstuff", "bftsmart"),
    duration: Optional[float] = None,
    client_threads: int = 16,
    seed: int = 8,
) -> List[Row]:
    """E7: impact of reconfiguration frequency on performance (Fig. 7)."""
    duration = duration if duration is not None else default_duration(10.0)
    frequencies = {"none": None, "periodic": 2.0, "continuous": 0.5}
    rows: List[Row] = []
    for engine in engines:
        for label, period in frequencies.items():
            config = _fast_config(engine)
            deployment = build_deployment(
                [(10, "us-west1"), (10, "us-west1")],
                engine=engine,
                seed=seed,
                config=config,
                client_threads=client_threads,
            )
            if period is not None:
                start = duration * 0.3
                index = 0
                t = start
                while t < duration - 1.0:
                    deployment.add_joiner(index % 2, at_time=t, replica_id=f"freq{engine}.{index}")
                    index += 1
                    t += period
            metrics = deployment.run(duration=duration, warmup=duration * 0.35)
            rows.append(
                {
                    "engine": engine,
                    "reconfig_frequency": label,
                    "throughput": metrics.throughput(),
                    "latency_write": metrics.mean_latency(op="write"),
                    "reconfigs_applied": len(metrics.reconfigs),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# E8: network latency during reconfiguration
# ---------------------------------------------------------------------- #
def run_e8(
    engines: Sequence[str] = ("hotstuff", "bftsmart"),
    duration: Optional[float] = None,
    client_threads: int = 16,
    seed: int = 9,
    churn_period: float = 1.0,
) -> List[Row]:
    """E8: impact of inter-cluster latency during reconfiguration (Fig. 8)."""
    duration = duration if duration is not None else default_duration(8.0)
    remote_sites = {
        "us-east5": 52.0,
        "asia-northeast1": 91.0,
        "europe-west3": 142.0,
        "asia-south1": 219.0,
    }
    rows: List[Row] = []
    for engine in engines:
        for region, rtt in remote_sites.items():
            config = _fast_config(engine)
            deployment = build_deployment(
                [(10, "us-west1"), (10, region)],
                engine=engine,
                seed=seed,
                config=config,
                client_threads=client_threads,
            )
            deployment.latency_model.set_rtt("us-west1", region, rtt)
            start = duration * 0.3
            index = 0
            t = start
            while t < duration - 1.0:
                deployment.add_joiner(index % 2, at_time=t, replica_id=f"e8{engine}.{region}.{index}")
                index += 1
                t += churn_period
            metrics = deployment.run(duration=duration, warmup=duration * 0.35)
            rows.append(
                {
                    "engine": engine,
                    "second_cluster_region": region,
                    "rtt_ms": rtt,
                    "throughput": metrics.throughput(),
                    "latency_write": metrics.mean_latency(op="write"),
                    "reconfigs_applied": len(metrics.reconfigs),
                }
            )
    return rows


__all__ = [
    "PAPER_REGIONS",
    "default_duration",
    "default_nodes",
    "full_scale",
    "heterogeneity_setups",
    "print_rows",
    "run_cluster_sweep",
    "run_e0",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5_join_leave",
    "run_e5_workflows",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_table1",
    "run_table2",
]
