"""Runners for the paper's evaluation (E0–E8, Tables I/II) plus the E9 chaos pack.

Each ``run_*`` function declares the scenarios for one figure/table with the
fluent :class:`~repro.harness.builder.Scenario` builder, executes them
through a :class:`~repro.harness.runner.ScenarioRunner`, and returns a list
of result rows (dictionaries) that mirror the series the paper plots.  The
benchmark suite and the examples are thin wrappers around these runners.
Runners that execute a grid of scenarios accept ``workers`` to fan the grid
out over a process pool (the single-scenario runners ``run_e4`` and
``run_e5_join_leave`` have nothing to parallelize).

Scale notes: the paper runs 96-node deployments for three minutes of wall
time on Google Cloud.  The runners default to smaller node counts and a few
seconds of *virtual* time so the whole suite completes quickly; pass
``total_nodes``/``duration`` explicitly (or set the ``REPRO_FULL_SCALE``
environment variable) to run at paper scale.  Shapes — who wins, how curves
trend — are preserved at the reduced scale; absolute numbers are not
comparable to the paper's testbed either way.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.complexity import complexity_table
from repro.harness.builder import Scenario
from repro.harness.runner import ResultRow, ScenarioRunner
from repro.net.latency import paper_rtt_matrix

#: Region rotation used when spreading clusters across the paper's 3 regions.
PAPER_REGIONS = ("us-west1", "europe-west3", "asia-south1")

Row = Dict[str, object]


def full_scale() -> bool:
    """Whether paper-scale parameters were requested via the environment."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "False")


def default_duration(fallback: float) -> float:
    """Simulated seconds per data point (env override: ``REPRO_DURATION``)."""
    value = os.environ.get("REPRO_DURATION")
    if value:
        return float(value)
    return 180.0 if full_scale() else fallback


def default_nodes(fallback: int) -> int:
    """Total nodes for the cluster-sweep experiments."""
    value = os.environ.get("REPRO_TOTAL_NODES")
    if value:
        return int(value)
    return 96 if full_scale() else fallback


def print_rows(rows: Sequence[Row], title: str = "") -> None:
    """Print result rows as an aligned text table."""
    if title:
        print(f"\n== {title} ==")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    print("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


#: Fault-detection/retry overrides sized for short simulated runs.  Clients
#: must fail over quickly when churn or faults remove the replica they were
#: talking to; the paper's 3-minute runs can afford long retries, seconds-long
#: simulations cannot.
FAST_TIMEOUTS: Dict[str, object] = {
    "remote_timeout": 5.0,
    "instance_timeout": 5.0,
    "brd_timeout": 5.0,
    "retry_timeout": 2.0,
}


def _split_nodes(total: int, clusters: int) -> List[int]:
    """Split ``total`` nodes into ``clusters`` groups as evenly as possible."""
    base = total // clusters
    remainder = total % clusters
    return [base + (1 if index < remainder else 0) for index in range(clusters)]


def _sweep_shapes(total_nodes: int, clusters: int, multi_region: bool) -> List[Tuple[int, str]]:
    sizes = _split_nodes(total_nodes, clusters)
    if multi_region:
        return [(size, PAPER_REGIONS[index % len(PAPER_REGIONS)]) for index, size in enumerate(sizes)]
    return [(size, "us-west1") for size in sizes]


def _run_all(scenarios: Sequence[Scenario], workers: int) -> List[ResultRow]:
    return ScenarioRunner(workers=workers).run(scenarios)


# ---------------------------------------------------------------------- #
# Tables I and II
# ---------------------------------------------------------------------- #
def run_table1(z: int = 4, n: int = 24) -> List[Row]:
    """Table I: best-case complexity of the protocols."""
    return [dict(row) for row in complexity_table(z=z, n=n)]


def run_table2() -> List[Row]:
    """Table II: inter-region round-trip latency matrix."""
    matrix = paper_rtt_matrix()
    rows: List[Row] = []
    for origin, destinations in matrix.items():
        row: Row = {"region": origin}
        row.update(destinations)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------- #
# E0 / E1: throughput and latency vs number of clusters
# ---------------------------------------------------------------------- #
def run_cluster_sweep(
    engines: Sequence[str] = ("hotstuff", "bftsmart"),
    cluster_counts: Sequence[int] = (2, 3, 4, 6, 8, 12),
    total_nodes: Optional[int] = None,
    multi_region: bool = False,
    duration: Optional[float] = None,
    warmup: float = 0.5,
    client_threads: int = 24,
    seed: int = 1,
    workers: int = 1,
) -> List[Row]:
    """Shared sweep behind E0 (single region) and E1 (three regions)."""
    total_nodes = total_nodes if total_nodes is not None else default_nodes(48)
    duration = duration if duration is not None else default_duration(2.5)
    scenarios = [
        Scenario(f"sweep/{engine}/z{clusters}")
        .clusters(*_sweep_shapes(total_nodes, clusters, multi_region))
        .engine(engine)
        .config(**FAST_TIMEOUTS)
        .threads(client_threads)
        .duration(duration, warmup=warmup)
        .seed(seed)
        .label(
            engine=engine,
            clusters=clusters,
            nodes=total_nodes,
            regions=3 if multi_region else 1,
        )
        for engine in engines
        for clusters in cluster_counts
    ]
    return [
        {
            **row.labels,
            "throughput": row.throughput,
            "latency_mean": row.latency_mean,
            "latency_write": row.latency_write,
            "rounds": row.rounds,
        }
        for row in _run_all(scenarios, workers)
    ]


def run_e0(**kwargs) -> List[Row]:
    """E0: multi-cluster, single region (Fig. 3 left)."""
    kwargs.setdefault("multi_region", False)
    return run_cluster_sweep(**kwargs)


def run_e1(**kwargs) -> List[Row]:
    """E1: multi-cluster, three regions (Fig. 3 right)."""
    kwargs.setdefault("multi_region", True)
    return run_cluster_sweep(**kwargs)


# ---------------------------------------------------------------------- #
# E2: latency breakdown per stage
# ---------------------------------------------------------------------- #
def run_e2(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    warmup: float = 0.5,
    client_threads: int = 12,
    seed: int = 2,
    workers: int = 1,
) -> List[Row]:
    """E2: per-stage latency breakdown for 3 clusters of 4 nodes (Fig. 4a)."""
    duration = duration if duration is not None else default_duration(3.0)
    setups = {
        "1 region": ["asia-south1", "asia-south1", "asia-south1"],
        "2 regions": ["europe-west3", "asia-south1", "asia-south1"],
        "3 regions": ["europe-west3", "asia-south1", "us-west1"],
    }
    scenarios = [
        Scenario(f"e2/{label}")
        .clusters(*[(4, region) for region in regions])
        .engine(engine)
        .config(**FAST_TIMEOUTS)
        .threads(client_threads)
        .duration(duration, warmup=warmup)
        .seed(seed)
        .stages()
        .label(setup=label, engine=engine)
        for label, regions in setups.items()
    ]
    return [
        {
            **row.labels,
            "intra_cluster_ms": row.stages["stage1"] * 1000,
            "inter_cluster_ms": row.stages["stage2"] * 1000,
            "execution_ms": row.stages["stage3"] * 1000,
            "read_latency_ms": row.latency_read * 1000,
            "write_latency_ms": row.latency_write * 1000,
            # Mean per-link wire latency; self-deliveries are excluded from
            # the aggregate by construction (0 ms loop-back never touches
            # the latency model), so this isolates the geo component.
            "link_latency_ms": (row.network or {}).get("link_latency_mean_ms", 0.0),
        }
        for row in _run_all(scenarios, workers)
    ]


# ---------------------------------------------------------------------- #
# E3: heterogeneity setups
# ---------------------------------------------------------------------- #
def heterogeneity_setups(scale: int) -> Dict[str, Tuple[List[Tuple[int, str]], Dict[str, str]]]:
    """The paper's three E3 setups at a given scale factor.

    There are ``9·s`` nodes in Asia and ``5·s`` in EU.  Setup 1 (homogeneous
    clusters) is forced to build two equal clusters, so one cluster spans the
    two regions (``2s`` Asia + ``5s`` EU members).  Setup 2 (heterogeneous)
    aligns clusters with regions.  Setup 3 further splits the large Asian
    group into two co-located clusters.

    Returns ``{setup_name: (cluster_specs, region_overrides)}``.
    """
    asia = "asia-south1"
    europe = "europe-west3"
    setup1_specs = [(7 * scale, asia), (7 * scale, europe)]
    # Setup 1's second cluster has 2·s members in Asia and 5·s in EU.
    setup1_overrides = {f"c1/r{i}": asia for i in range(2 * scale)}
    return {
        "setup1": (setup1_specs, setup1_overrides),
        "setup2": ([(9 * scale, asia), (5 * scale, europe)], {}),
        "setup3": ([(5 * scale, asia), (4 * scale, asia), (5 * scale, europe)], {}),
    }


def run_e3(
    engines: Sequence[str] = ("hotstuff", "bftsmart"),
    scales: Sequence[int] = (1, 2, 3),
    duration: Optional[float] = None,
    warmup: float = 0.5,
    client_threads: int = 16,
    seed: int = 3,
    workers: int = 1,
) -> List[Row]:
    """E3: impact of heterogeneity on throughput and latency (Fig. 4b–4e)."""
    duration = duration if duration is not None else default_duration(2.5)
    scenarios = [
        Scenario(f"e3/{engine}/s{scale}/{setup_name}")
        .clusters(*clusters)
        .engine(engine)
        .config(**FAST_TIMEOUTS)
        .place_many(overrides)
        .threads(client_threads)
        .duration(duration, warmup=warmup)
        .seed(seed)
        .label(engine=engine, scale=scale, setup=setup_name)
        for engine in engines
        for scale in scales
        for setup_name, (clusters, overrides) in heterogeneity_setups(scale).items()
    ]
    return [
        {
            **row.labels,
            "throughput": row.throughput,
            "latency_mean": row.latency_mean,
            "latency_write": row.latency_write,
        }
        for row in _run_all(scenarios, workers)
    ]


# ---------------------------------------------------------------------- #
# E4: failures
# ---------------------------------------------------------------------- #
def run_e4(
    scenario: str,
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    fault_time: float = 4.0,
    client_threads: int = 16,
    seed: int = 4,
    nodes_per_cluster: int = 10,
) -> List[Row]:
    """E4: throughput over time under failures (Fig. 4f/4g/4h).

    Args:
        scenario: ``"non_leader"`` (E4.1), ``"leader"`` (E4.2), or
            ``"byzantine_leader"`` (E4.3).
    """
    duration = duration if duration is not None else default_duration(12.0)
    builder = (
        Scenario(f"e4/{scenario}")
        .clusters(nodes_per_cluster, nodes_per_cluster)
        .engine(engine)
        .timeouts(3.0)
        .config(retry_timeout=3.0)
        .threads(client_threads)
        .duration(duration)
        .seed(seed)
        .timeseries(bucket=1.0)
    )
    if scenario == "non_leader":
        for cluster_id in (0, 1):
            builder.crash_non_leaders(cluster_id, at=fault_time)
    elif scenario == "leader":
        builder.crash_leader(0, at=fault_time)
    elif scenario == "byzantine_leader":
        builder.byzantine_leader(0, at=fault_time)
    else:
        raise ValueError(f"unknown E4 scenario {scenario!r}")
    row = builder.run_one()
    return [
        {
            "scenario": scenario,
            "engine": engine,
            "time_s": start,
            "throughput": value,
            "fault_time": fault_time,
        }
        for start, value in row.series
    ]


# ---------------------------------------------------------------------- #
# E5: reconfiguration
# ---------------------------------------------------------------------- #
def run_e5_join_leave(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    client_threads: int = 16,
    seed: int = 5,
    joins: int = 3,
    leaves: int = 3,
) -> Dict[str, object]:
    """E5.1: join and leave bursts against two 7-node clusters (Fig. 5a)."""
    duration = duration if duration is not None else default_duration(12.0)
    join_time = duration * 0.25
    leave_time = duration * 0.6
    builder = (
        Scenario("e5/join_leave")
        .clusters(7, 7)
        .engine(engine)
        .config(**FAST_TIMEOUTS)
        .threads(client_threads)
        .duration(duration)
        .seed(seed)
        .timeseries(bucket=1.0)
    )
    for cluster_id in (0, 1):
        for index in range(joins):
            builder.join(cluster_id, at=join_time + 0.2 * index, replica_id=f"new{cluster_id}.{index}")
        for index in range(leaves):
            builder.leave(f"c{cluster_id}/r{6 - index}", at=leave_time + 0.2 * index)
    row = builder.run_one()
    series = [(start, value) for start, value in row.series]
    return {
        "engine": engine,
        "series": series,
        "join_time": join_time,
        "leave_time": leave_time,
        "joins_completed": row.joins_completed,
        "reconfigs_applied": row.reconfigs_applied,
        "throughput_before": _window_mean(series, 1.0, join_time),
        # "After" means after the churn has settled: the last two seconds of
        # the run, once clients have failed over away from departed replicas.
        "throughput_after": _window_mean(series, duration - 2.0, duration),
    }


def _window_mean(series: Sequence[Tuple[float, float]], start: float, end: float) -> float:
    values = [value for t, value in series if start <= t < end]
    return sum(values) / len(values) if values else 0.0


def run_e5_workflows(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    client_threads: int = 16,
    seed: int = 6,
    churn_period: float = 1.0,
    workers: int = 1,
) -> List[Row]:
    """E5.2: parallel reconfiguration workflow vs single workflow (Fig. 5b)."""
    duration = duration if duration is not None else default_duration(10.0)
    scenarios = [
        Scenario(f"e5/workflows/{variant}")
        .clusters(10, 8)
        .engine(engine)
        .preset("hamava" if variant == "parallel" else "single_workflow")
        .config(**FAST_TIMEOUTS)
        .threads(client_threads)
        .duration(duration, warmup=0.5)
        .seed(seed)
        .churn(start=duration * 0.3, period=churn_period, clusters=(0,), prefix="churn")
        .label(engine=engine, variant=variant)
        for variant in ("parallel", "single")
    ]
    return [
        {
            **row.labels,
            "throughput": row.throughput,
            "latency_write": row.latency_write,
            "reconfigs_applied": row.reconfigs_applied,
        }
        for row in _run_all(scenarios, workers)
    ]


# ---------------------------------------------------------------------- #
# E6: comparison with GeoBFT
# ---------------------------------------------------------------------- #
def run_e6(
    cluster_counts: Sequence[int] = (2, 3, 4, 6, 8, 12),
    total_nodes: Optional[int] = None,
    multi_region: bool = False,
    duration: Optional[float] = None,
    warmup: float = 0.5,
    client_threads: int = 24,
    seed: int = 7,
    workers: int = 1,
) -> List[Row]:
    """E6: AVA-HOTSTUFF vs GeoBFT across cluster counts (Fig. 6a/6b)."""
    total_nodes = total_nodes if total_nodes is not None else default_nodes(48)
    duration = duration if duration is not None else default_duration(2.5)
    scenarios: List[Scenario] = []
    for clusters in cluster_counts:
        shapes = _sweep_shapes(total_nodes, clusters, multi_region)
        for preset in ("hamava", "geobft"):
            scenarios.append(
                Scenario(f"e6/{preset}/z{clusters}")
                .clusters(*shapes)
                .engine("hotstuff" if preset == "hamava" else "bftsmart")
                .preset(preset)
                .config(**FAST_TIMEOUTS)
                .threads(client_threads)
                .duration(duration, warmup=warmup)
                .seed(seed)
                .label(clusters=clusters)
            )
    results = _run_all(scenarios, workers)
    by_cell = {(row.preset, row.labels["clusters"]): row for row in results}
    rows: List[Row] = []
    for clusters in cluster_counts:
        ava = by_cell[("hamava", clusters)]
        geo = by_cell[("geobft", clusters)]
        rows.append(
            {
                "clusters": clusters,
                "regions": 3 if multi_region else 1,
                "ava_hotstuff_throughput": ava.throughput,
                "geobft_throughput": geo.throughput,
                "ava_hotstuff_latency": ava.latency_mean,
                "geobft_latency": geo.latency_mean,
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# E7: reconfiguration frequency
# ---------------------------------------------------------------------- #
def run_e7(
    engines: Sequence[str] = ("hotstuff", "bftsmart"),
    duration: Optional[float] = None,
    client_threads: int = 16,
    seed: int = 8,
    workers: int = 1,
) -> List[Row]:
    """E7: impact of reconfiguration frequency on performance (Fig. 7)."""
    duration = duration if duration is not None else default_duration(10.0)
    frequencies = {"none": None, "periodic": 2.0, "continuous": 0.5}
    scenarios: List[Scenario] = []
    for engine in engines:
        for label, period in frequencies.items():
            builder = (
                Scenario(f"e7/{engine}/{label}")
                .clusters(10, 10)
                .engine(engine)
                .config(**FAST_TIMEOUTS)
                .threads(client_threads)
                .duration(duration, warmup=duration * 0.35)
                .seed(seed)
                .label(engine=engine, reconfig_frequency=label)
            )
            if period is not None:
                builder.churn(
                    start=duration * 0.3, period=period, clusters=(0, 1), prefix=f"freq{engine}."
                )
            scenarios.append(builder)
    return [
        {
            **row.labels,
            "throughput": row.throughput,
            "latency_write": row.latency_write,
            "reconfigs_applied": row.reconfigs_applied,
        }
        for row in _run_all(scenarios, workers)
    ]


# ---------------------------------------------------------------------- #
# E8: network latency during reconfiguration
# ---------------------------------------------------------------------- #
def run_e8(
    engines: Sequence[str] = ("hotstuff", "bftsmart"),
    duration: Optional[float] = None,
    client_threads: int = 16,
    seed: int = 9,
    churn_period: float = 1.0,
    workers: int = 1,
) -> List[Row]:
    """E8: impact of inter-cluster latency during reconfiguration (Fig. 8)."""
    duration = duration if duration is not None else default_duration(8.0)
    remote_sites = {
        "us-east5": 52.0,
        "asia-northeast1": 91.0,
        "europe-west3": 142.0,
        "asia-south1": 219.0,
    }
    scenarios = [
        Scenario(f"e8/{engine}/{region}")
        .clusters((10, "us-west1"), (10, region))
        .engine(engine)
        .config(**FAST_TIMEOUTS)
        .rtt("us-west1", region, rtt)
        .threads(client_threads)
        .duration(duration, warmup=duration * 0.35)
        .seed(seed)
        .churn(
            start=duration * 0.3,
            period=churn_period,
            clusters=(0, 1),
            prefix=f"e8{engine}.{region}.",
        )
        .label(engine=engine, second_cluster_region=region, rtt_ms=rtt)
        for engine in engines
        for region, rtt in remote_sites.items()
    ]
    return [
        {
            **row.labels,
            "throughput": row.throughput,
            "latency_write": row.latency_write,
            "reconfigs_applied": row.reconfigs_applied,
        }
        for row in _run_all(scenarios, workers)
    ]


# ---------------------------------------------------------------------- #
# E9: adversarial network & gray failures (chaos scenario pack)
# ---------------------------------------------------------------------- #
def _e9_run(make_builder, parity_shards: Sequence[int] = (2,)) -> Tuple[ResultRow, bool]:
    """Run an E9 scenario serially and re-run sharded for byte parity.

    ``make_builder`` must return a *fresh* builder per call; the serial row
    and every sharded re-run must serialize identically (the PR-7 parity
    contract extended to adversity scenarios).
    """
    from repro.harness.runner import run_scenario

    row = run_scenario(make_builder().spec())
    parity = all(
        run_scenario(make_builder().shards(shards).spec()).to_json() == row.to_json()
        for shards in parity_shards
    )
    return row, parity


def _e9_row(experiment: str, assertions: Dict[str, bool], **extra: object) -> Row:
    return {
        "experiment": experiment,
        "passed": all(assertions.values()),
        "assertions": assertions,
        **extra,
    }


def run_e9_gray_leader(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    seed: int = 9,
    client_threads: int = 4,
    factor: float = 400.0,
) -> Row:
    """E9.1: a gray (slow, not dead) leader is detected and replaced.

    The cluster-0 leader's CPU degrades by ``factor`` a quarter into the
    run.  It keeps answering — late — so only timeout-based detection can
    catch it; the pinned assertion is that leadership moves off the initial
    leader and the deployment keeps committing afterwards.
    """
    duration = duration if duration is not None else default_duration(6.0)
    fault_time = duration * 0.25

    def make_builder() -> Scenario:
        return (
            Scenario("e9/gray_leader")
            .clusters((4, "us-west1"), (4, "europe-west3"))
            .engine(engine)
            .timeouts(1.0)
            .config(retry_timeout=1.0)
            .threads(client_threads)
            .duration(duration)
            .seed(seed)
            .timeseries(bucket=1.0)
            .gray_leader(0, at=fault_time, factor=factor)
        )

    row, parity = _e9_run(make_builder)
    spec = make_builder().spec()
    deployment = spec.build()
    deployment.run(duration=spec.duration, warmup=spec.warmup)
    initial_leader = sorted(deployment.system_config.members(0))[0]
    new_leader = deployment.leader_of(0).process_id
    series = [(start, value) for start, value in (row.series or [])]
    tail = _window_mean(series, duration - 2.0, duration)
    assertions = {
        "leader_changed": new_leader != initial_leader,
        "progress_after_fault": tail > 0.0,
        "sharded_parity": parity,
    }
    return _e9_row(
        "gray_leader",
        assertions,
        engine=engine,
        fault_time=fault_time,
        initial_leader=initial_leader,
        new_leader=new_leader,
        throughput=row.throughput,
    )


def run_e9_clock_skew(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    seed: int = 9,
    client_threads: int = 4,
    rate: float = 0.02,
) -> Row:
    """E9.2: fast local clocks cause *spurious* leader changes.

    Two followers of cluster 0 get clocks running ``1/rate`` times fast, so
    their complaint timers expire long before the healthy leader is actually
    late.  Pinned assertions: the skewed run records a leader change with no
    real fault present, and a skew-free control run under the same seed does
    not.
    """
    duration = duration if duration is not None else default_duration(6.0)
    fault_time = duration * 0.25

    def make_builder(skewed: bool = True) -> Scenario:
        builder = (
            Scenario("e9/clock_skew" if skewed else "e9/clock_skew_control")
            .clusters((4, "us-west1"), (4, "europe-west3"))
            .engine(engine)
            .timeouts(1.0)
            .config(retry_timeout=1.0)
            .threads(client_threads)
            .duration(duration)
            .seed(seed)
        )
        if skewed:
            builder.clock_skew("r0.1", at=fault_time, rate=rate)
            builder.clock_skew("r0.2", at=fault_time, rate=rate)
        return builder

    _, parity = _e9_run(make_builder)
    spec = make_builder().spec()
    deployment = spec.build()
    deployment.run(duration=spec.duration, warmup=spec.warmup)
    skew_changes = max(replica.last_leader_change for replica in deployment.cluster_replicas(0))
    control_spec = make_builder(skewed=False).spec()
    control = control_spec.build()
    control.run(duration=control_spec.duration, warmup=control_spec.warmup)
    control_changes = max(replica.last_leader_change for replica in control.cluster_replicas(0))
    assertions = {
        "spurious_leader_change": skew_changes > 0.0,
        "control_is_stable": control_changes == 0.0,
        "sharded_parity": parity,
    }
    return _e9_row(
        "clock_skew",
        assertions,
        engine=engine,
        rate=rate,
        skew_leader_change_at=skew_changes,
    )


def run_e9_flapping_partition(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    seed: int = 9,
    client_threads: int = 4,
    period: float = 0.5,
    duty: float = 0.5,
    cycles: int = 3,
) -> Row:
    """E9.3: a flapping inter-cluster link drops traffic but heals cleanly.

    The cluster 0 <-> 1 link is duty-cycled starting a quarter into the run.
    Pinned assertions: drops actually happen, and goodput over the final two
    seconds (well after the last flap) recovers to at least half the
    pre-fault level.  Flapping keeps stalling rounds just as the previous
    timeout recovery completes, so detection timeouts must be shorter than
    the recovery runway — hence the aggressive 1-second timeouts here.
    """
    duration = duration if duration is not None else default_duration(6.0)
    fault_time = duration * 0.25

    def make_builder() -> Scenario:
        return (
            Scenario("e9/flapping_partition")
            .clusters((4, "us-west1"), (4, "europe-west3"))
            .engine(engine)
            .timeouts(1.0)
            .config(retry_timeout=1.0)
            .threads(client_threads)
            .duration(duration)
            .seed(seed)
            .timeseries(bucket=1.0)
            .flapping_partition(0, 1, at=fault_time, period=period, duty=duty, cycles=cycles)
        )

    row, parity = _e9_run(make_builder)
    series = [(start, value) for start, value in (row.series or [])]
    before = _window_mean(series, 0.0, fault_time)
    after = _window_mean(series, duration - 2.0, duration)
    dropped = int((row.network or {}).get("messages_dropped", 0))
    assertions = {
        "messages_dropped": dropped > 0,
        "goodput_recovered": after >= 0.5 * before,
        "sharded_parity": parity,
    }
    return _e9_row(
        "flapping_partition",
        assertions,
        engine=engine,
        dropped=dropped,
        goodput_before=before,
        goodput_after=after,
    )


def run_e9_region_outage(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    seed: int = 9,
    client_threads: int = 4,
) -> Row:
    """E9.4: a whole region loses its WAN uplink, then heals.

    Three single-cluster regions; the third region goes dark for 15% of the
    run.  Pinned assertions: correlated drops occur, and goodput over the
    final two seconds recovers to at least half the pre-fault level.
    """
    duration = duration if duration is not None else default_duration(6.0)
    fault_time = duration * 0.25
    outage = duration * 0.15

    def make_builder() -> Scenario:
        return (
            Scenario("e9/region_outage")
            .clusters(*((4, region) for region in PAPER_REGIONS))
            .engine(engine)
            .timeouts(1.0)
            .config(retry_timeout=1.0)
            .threads(client_threads)
            .duration(duration)
            .seed(seed)
            .timeseries(bucket=1.0)
            .region_outage(PAPER_REGIONS[-1], at=fault_time, duration=outage)
        )

    row, parity = _e9_run(make_builder)
    series = [(start, value) for start, value in (row.series or [])]
    before = _window_mean(series, 0.0, fault_time)
    after = _window_mean(series, duration - 2.0, duration)
    dropped = int((row.network or {}).get("messages_dropped", 0))
    assertions = {
        "messages_dropped": dropped > 0,
        "goodput_recovered": after >= 0.5 * before,
        "sharded_parity": parity,
    }
    return _e9_row(
        "region_outage",
        assertions,
        engine=engine,
        dropped=dropped,
        goodput_before=before,
        goodput_after=after,
    )


def run_e9_congestion(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    seed: int = 9,
    client_threads: int = 4,
    background_rate: float = 1.1e8,
) -> Row:
    """E9.5: background cross-traffic congests the WAN link.

    The us-west1 -> europe-west3 link carries an injected background stream
    near its modelled capacity for the middle half of the run.  Pinned
    assertions: the mean wire latency rises above an uncongested control run
    of the same seed, and the system keeps committing throughout.
    """
    duration = duration if duration is not None else default_duration(6.0)

    def make_builder(congested: bool = True) -> Scenario:
        builder = (
            Scenario("e9/congestion" if congested else "e9/congestion_control")
            .clusters((4, "us-west1"), (4, "europe-west3"))
            .engine(engine)
            .config(**FAST_TIMEOUTS)
            .threads(client_threads)
            .duration(duration)
            .seed(seed)
        )
        if congested:
            builder.congestion()
            builder.cross_traffic(
                "us-west1",
                "europe-west3",
                background_rate,
                start=duration * 0.25,
                stop=duration * 0.75,
            )
        return builder

    row, parity = _e9_run(make_builder)
    control_row, _ = _e9_run(lambda: make_builder(congested=False), parity_shards=())
    congested_ms = float((row.network or {}).get("link_latency_mean_ms", 0.0))
    control_ms = float((control_row.network or {}).get("link_latency_mean_ms", 0.0))
    assertions = {
        "latency_inflated": congested_ms > control_ms,
        "still_committing": row.operations > 0,
        "sharded_parity": parity,
    }
    return _e9_row(
        "congestion",
        assertions,
        engine=engine,
        link_latency_ms=congested_ms,
        control_latency_ms=control_ms,
        throughput=row.throughput,
    )


def run_e9_rtt_trace(
    engine: str = "hotstuff",
    duration: Optional[float] = None,
    seed: int = 9,
    client_threads: int = 4,
) -> Row:
    """E9.6: trace-driven RTTs (wander + spikes) with dynamic lookahead.

    A synthetic cloud-pair trace drives the us-west1 <-> europe-west3 RTT
    through wander and congestion spikes.  Pinned assertions: the trace
    actually changes the run (vs the static matrix), results stay
    byte-identical serial-vs-sharded even though the lookahead floor now
    moves between trace segments, and the system keeps committing.
    """
    from repro.net.adversity import RttTrace

    duration = duration if duration is not None else default_duration(6.0)
    trace = RttTrace.synthetic(
        pairs=[("us-west1", "europe-west3", 148.0)], duration=duration, seed=seed
    )

    def make_builder(traced: bool = True) -> Scenario:
        builder = (
            Scenario("e9/rtt_trace" if traced else "e9/rtt_trace_control")
            .clusters((4, "us-west1"), (4, "europe-west3"))
            .engine(engine)
            .config(**FAST_TIMEOUTS)
            .threads(client_threads)
            .duration(duration)
            .seed(seed)
        )
        if traced:
            builder.rtt_trace(trace.copy())
        return builder

    row, parity = _e9_run(make_builder, parity_shards=(2, 4))
    control_row, _ = _e9_run(lambda: make_builder(traced=False), parity_shards=())
    assertions = {
        "trace_changes_run": row.to_json() != control_row.to_json(),
        "still_committing": row.operations > 0,
        "sharded_parity": parity,
    }
    return _e9_row(
        "rtt_trace",
        assertions,
        engine=engine,
        throughput=row.throughput,
        control_throughput=control_row.throughput,
    )


def run_e9_all(duration: Optional[float] = None) -> List[Row]:
    """Run the whole E9 chaos pack; each row carries its pinned assertions."""
    return [
        run_e9_gray_leader(duration=duration),
        run_e9_clock_skew(duration=duration),
        run_e9_flapping_partition(duration=duration),
        run_e9_region_outage(duration=duration),
        run_e9_congestion(duration=duration),
        run_e9_rtt_trace(duration=duration),
    ]


__all__ = [
    "FAST_TIMEOUTS",
    "PAPER_REGIONS",
    "default_duration",
    "default_nodes",
    "full_scale",
    "heterogeneity_setups",
    "print_rows",
    "run_cluster_sweep",
    "run_e0",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5_join_leave",
    "run_e5_workflows",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9_all",
    "run_e9_clock_skew",
    "run_e9_congestion",
    "run_e9_flapping_partition",
    "run_e9_gray_leader",
    "run_e9_region_outage",
    "run_e9_rtt_trace",
    "run_table1",
    "run_table2",
]
