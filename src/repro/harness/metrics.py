"""Metrics collection: the numbers the paper's figures report.

The collector is a passive sink that replicas and clients call into:

* clients record per-transaction latency and completion time,
* one reporter replica per cluster records per-round stage timings,
* replicas record applied reconfigurations and completed joins.

Queries then reproduce the paper's measurements: throughput (txns/s) over a
measurement window, mean/percentile latency split by read/write, the E2
stage breakdown, and throughput time series for the failure and
reconfiguration experiments.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Tuple


@dataclass
class TransactionRecord:
    """One completed client operation."""

    txn_id: str
    op: str
    latency: float
    completed_at: float
    client_id: str


@dataclass
class RoundRecord:
    """Stage timings of one executed round at one cluster."""

    cluster_id: int
    round_number: int
    started_at: float
    stage1_done_at: float
    stage2_done_at: float
    ended_at: float
    transactions: int
    reconfigs: int

    @property
    def stage1_duration(self) -> float:
        """Intra-cluster replication time."""
        return max(0.0, self.stage1_done_at - self.started_at)

    @property
    def stage2_duration(self) -> float:
        """Inter-cluster communication time."""
        return max(0.0, self.stage2_done_at - self.stage1_done_at)

    @property
    def stage3_duration(self) -> float:
        """Execution time."""
        return max(0.0, self.ended_at - self.stage2_done_at)


@dataclass
class ReconfigRecord:
    """One applied reconfiguration."""

    kind: str
    process_id: str
    cluster_id: int
    round_number: int
    applied_at: float


class MetricsCollector:
    """Collects and summarizes measurements from one deployment run."""

    def __init__(self) -> None:
        self.transactions: List[TransactionRecord] = []
        self.rounds: List[RoundRecord] = []
        self.reconfigs: List[ReconfigRecord] = []
        self.joins_completed: List[Tuple[str, int, float]] = []
        self._completion_times: List[float] = []
        self.window: Tuple[float, Optional[float]] = (0.0, None)
        # Open-loop counters (populations and read leases).  Kept out of
        # ``summary()`` — its keys are pinned byte-for-byte by the
        # determinism goldens — and surfaced via ``open_loop_summary()``.
        self.offered = 0
        self.lease_hits = 0
        self.lease_misses = 0

    # ------------------------------------------------------------------ #
    # Recording hooks (called by clients and replicas)
    # ------------------------------------------------------------------ #
    def record_transaction(
        self, txn_id: str, op: str, latency: float, completed_at: float, client_id: str
    ) -> None:
        """Record a completed client operation."""
        self.transactions.append(
            TransactionRecord(
                txn_id=txn_id, op=op, latency=latency, completed_at=completed_at, client_id=client_id
            )
        )
        self._completion_times.append(completed_at)

    def record_round(
        self,
        cluster_id: int,
        round_number: int,
        started_at: float,
        stage1_done_at: float,
        stage2_done_at: float,
        ended_at: float,
        transactions: int,
        reconfigs: int,
    ) -> None:
        """Record one executed round's stage timings (reporter replicas only)."""
        self.rounds.append(
            RoundRecord(
                cluster_id=cluster_id,
                round_number=round_number,
                started_at=started_at,
                stage1_done_at=stage1_done_at,
                stage2_done_at=stage2_done_at,
                ended_at=ended_at,
                transactions=transactions,
                reconfigs=reconfigs,
            )
        )

    def record_reconfig(
        self, kind: str, process_id: str, cluster_id: int, round_number: int, applied_at: float
    ) -> None:
        """Record an applied join/leave."""
        self.reconfigs.append(
            ReconfigRecord(
                kind=kind,
                process_id=process_id,
                cluster_id=cluster_id,
                round_number=round_number,
                applied_at=applied_at,
            )
        )

    def record_join_completed(self, process_id: str, cluster_id: int, at: float) -> None:
        """Record that a joining replica finished its state transfer."""
        self.joins_completed.append((process_id, cluster_id, at))

    def record_offered(self, count: int) -> None:
        """Record operations *offered* by an open-loop arrival stream.

        Offered load is counted at arrival, not completion — the divergence
        between offered and goodput is exactly the overload signal the
        open-loop model exists to measure.
        """
        self.offered += count

    def record_lease_reads(self, hits: int, misses: int) -> None:
        """Record lease-covered reads served locally vs forwarded misses."""
        self.lease_hits += hits
        self.lease_misses += misses

    # ------------------------------------------------------------------ #
    # Canonical ordering and sharded merging
    # ------------------------------------------------------------------ #
    def canonicalize(self) -> None:
        """Sort every record list into its canonical (virtual-time) order.

        Float folds over these lists (mean latency, stage sums) are
        order-sensitive, so byte-identical serial-vs-sharded results require
        one canonical order imposed on *both*.  Each key is a total order:
        ``(client_id, txn_id)`` is unique per transaction, ``(cluster_id,
        round_number)`` per round.  The harness calls this once per run,
        after the clock stops.
        """
        self.transactions.sort(key=lambda r: (r.completed_at, r.client_id, r.txn_id))
        self._completion_times = [r.completed_at for r in self.transactions]
        self.rounds.sort(key=lambda r: (r.started_at, r.cluster_id, r.round_number))
        self.reconfigs.sort(
            key=lambda r: (r.applied_at, r.cluster_id, r.round_number, r.kind, r.process_id)
        )
        self.joins_completed.sort(key=lambda entry: (entry[2], entry[0], entry[1]))

    def merge_from(self, others: "List[MetricsCollector]") -> None:
        """Fold per-shard collectors into this one (then canonicalise).

        Record lists concatenate and re-sort; the open-loop counters are
        plain ints, so summation is order-free.  The result is identical to
        what a single collector would have recorded serially.
        """
        for other in others:
            self.transactions.extend(other.transactions)
            self.rounds.extend(other.rounds)
            self.reconfigs.extend(other.reconfigs)
            self.joins_completed.extend(other.joins_completed)
            self.offered += other.offered
            self.lease_hits += other.lease_hits
            self.lease_misses += other.lease_misses
        self.canonicalize()

    # ------------------------------------------------------------------ #
    # Measurement window
    # ------------------------------------------------------------------ #
    def set_window(self, start: float, end: Optional[float] = None) -> None:
        """Restrict queries to completions within ``[start, end]``.

        The paper runs for 3 minutes and reports the last minute; the window
        plays that role.
        """
        self.window = (start, end)

    def _in_window(self, record: TransactionRecord) -> bool:
        start, end = self.window
        if record.completed_at < start:
            return False
        return end is None or record.completed_at <= end

    def _windowed(self, op: Optional[str] = None) -> List[TransactionRecord]:
        return [
            record
            for record in self.transactions
            if self._in_window(record) and (op is None or record.op == op)
        ]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def committed_count(self, op: Optional[str] = None) -> int:
        """Number of completed operations in the window."""
        return len(self._windowed(op))

    def throughput(self, duration: Optional[float] = None, op: Optional[str] = None) -> float:
        """Operations per second over the measurement window."""
        records = self._windowed(op)
        if not records:
            return 0.0
        start, end = self.window
        if duration is None:
            effective_end = end if end is not None else max(r.completed_at for r in records)
            duration = max(effective_end - start, 1e-9)
        return len(records) / duration

    def mean_latency(self, op: Optional[str] = None) -> float:
        """Average latency (seconds) of completed operations in the window."""
        records = self._windowed(op)
        if not records:
            return 0.0
        return sum(r.latency for r in records) / len(records)

    def latency_percentile(self, percentile: float, op: Optional[str] = None) -> float:
        """Latency percentile (e.g. 0.5 for the median, 0.99 for p99).

        Nearest-rank: the smallest sample such that at least ``percentile``
        of the data is at or below it (``int(p * n)`` would be biased one
        rank high — the p50 of two samples must be the smaller one).
        """
        records = sorted(r.latency for r in self._windowed(op))
        if not records:
            return 0.0
        index = min(len(records) - 1, max(0, ceil(percentile * len(records)) - 1))
        return records[index]

    def throughput_timeseries(self, bucket: float = 1.0, until: Optional[float] = None) -> List[Tuple[float, float]]:
        """Throughput per time bucket: ``[(bucket_start, ops_per_second), ...]``."""
        if not self.transactions and until is None:
            return []
        times = sorted(self._completion_times)
        horizon = until if until is not None else (times[-1] if times else 0.0)
        series: List[Tuple[float, float]] = []
        start = 0.0
        while start < horizon:
            end = start + bucket
            # Half-open buckets [start, end): bisect_left on both bounds keeps
            # a completion landing exactly on a bucket boundary in the later
            # bucket instead of dropping it.  When ``until`` truncates the
            # final bucket, normalise by the covered width — dividing a
            # fractional bucket's count by the full width under-reported its
            # rate (a 0.5 s tail at a steady 100 ops/s printed 50 ops/s).
            width = bucket if end <= horizon else horizon - start
            count = bisect_left(times, end) - bisect_left(times, start)
            series.append((start, count / width))
            start = end
        return series

    def stage_breakdown(self) -> Dict[str, float]:
        """Average per-stage durations (seconds) over recorded rounds."""
        if not self.rounds:
            return {"stage1": 0.0, "stage2": 0.0, "stage3": 0.0}
        count = len(self.rounds)
        return {
            "stage1": sum(r.stage1_duration for r in self.rounds) / count,
            "stage2": sum(r.stage2_duration for r in self.rounds) / count,
            "stage3": sum(r.stage3_duration for r in self.rounds) / count,
        }

    def rounds_executed(self) -> int:
        """Number of recorded rounds (reporter replicas only)."""
        return len(self.rounds)

    def summary(self) -> Dict[str, float]:
        """A flat summary of the headline numbers."""
        return {
            "throughput_total": self.throughput(),
            "throughput_writes": self.throughput(op="write"),
            "throughput_reads": self.throughput(op="read"),
            "latency_mean": self.mean_latency(),
            "latency_mean_read": self.mean_latency(op="read"),
            "latency_mean_write": self.mean_latency(op="write"),
            "latency_p99": self.latency_percentile(0.99),
            "operations": float(self.committed_count()),
            "rounds": float(self.rounds_executed()),
            "reconfigs_applied": float(len(self.reconfigs)),
        }

    def lease_hit_rate(self) -> float:
        """Fraction of lease-eligible reads served without leader contact."""
        total = self.lease_hits + self.lease_misses
        if not total:
            return 0.0
        return self.lease_hits / total

    def open_loop_summary(self) -> Dict[str, float]:
        """Open-loop headline numbers (offered load vs goodput, leases).

        Separate from :meth:`summary` on purpose: the closed-loop summary's
        keys are pinned by the determinism goldens, while these counters
        only move when a scenario opts into populations or read leases.
        """
        goodput = self.throughput()
        start, end = self.window
        duration = None
        if end is not None:
            duration = max(end - start, 1e-9)
        elif self._completion_times:
            duration = max(max(self._completion_times) - start, 1e-9)
        offered_rate = self.offered / duration if duration else 0.0
        return {
            "offered": float(self.offered),
            "offered_rate": offered_rate,
            "goodput": goodput,
            "lease_hits": float(self.lease_hits),
            "lease_misses": float(self.lease_misses),
            "lease_hit_rate": self.lease_hit_rate(),
        }


__all__ = ["MetricsCollector", "ReconfigRecord", "RoundRecord", "TransactionRecord"]
