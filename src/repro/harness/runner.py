"""Scenario execution: multi-seed grids, parallel fan-out, typed results.

:class:`ScenarioRunner` executes a list of scenarios (specs or fluent
builders) across seeds and returns one :class:`ResultRow` per (scenario,
seed) pair, in submission order.  With ``workers > 1`` the grid fans out
over a :mod:`multiprocessing` pool; every run is driven entirely by its
scenario seed, so parallel execution produces rows byte-identical to serial
execution.  Rows persist to JSON (:meth:`ScenarioRunner.save` /
:meth:`ScenarioRunner.load`) so benchmark results can be archived and
re-plotted without re-simulating.
"""

from __future__ import annotations

import json
import multiprocessing
import traceback
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.harness.scenario import ScenarioSpec


@dataclass
class ResultRow:
    """The measurements of one (scenario, seed) data point.

    The flat fields mirror :meth:`MetricsCollector.summary`; ``stages`` and
    ``series`` are filled only when the scenario asked for them
    (``collect_stages`` / ``timeseries_bucket``); ``labels`` carries the
    scenario's free-form tags (sweep coordinates, variant names, ...).
    ``network`` is the run's :meth:`NetworkStats.snapshot` plus the mean
    wire link latency in milliseconds (``link_latency_mean_ms``, which
    excludes 0 ms self-deliveries by construction — they never traverse the
    latency model).

    ``error`` is ``None`` for successful runs; when a scenario crashes
    (build or simulation), the runner returns a zeroed row carrying the
    seed and the worker traceback here instead of hanging the grid or
    silently dropping the data point.
    """

    scenario: str
    seed: int
    engine: str
    preset: str
    throughput: float
    throughput_reads: float
    throughput_writes: float
    latency_mean: float
    latency_read: float
    latency_write: float
    latency_p99: float
    operations: int
    rounds: int
    reconfigs_applied: int
    joins_completed: int
    labels: Dict[str, object] = field(default_factory=dict)
    stages: Optional[Dict[str, float]] = None
    series: Optional[List[List[float]]] = None
    network: Optional[Dict[str, float]] = None
    population: Optional[Dict[str, float]] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable description of this row (covers every field)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ResultRow":
        """Rebuild a row from :meth:`to_dict` output."""
        data = dict(payload)
        series = data.get("series")
        data["series"] = None if series is None else [list(point) for point in series]
        return cls(**data)

    def to_json(self) -> str:
        """Serialize to a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)


def run_scenario(spec: ScenarioSpec) -> ResultRow:
    """Build, execute, and summarize one scenario spec.

    ``shard_parallel`` specs run their shards in worker processes; the
    resulting row is byte-identical to the in-process (serial or sharded)
    execution of the same spec.
    """
    if spec.shard_parallel and spec.shards > 1:
        from repro.harness.parallel import run_sharded_parallel

        outcome = run_sharded_parallel(spec)
        return _build_row(
            spec, outcome.metrics, outcome.network_stats, outcome.population_stats, outcome.engine
        )
    deployment = spec.build()
    metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
    return _build_row(
        spec,
        metrics,
        deployment.network.stats,
        [population.stats() for population in deployment.populations],
        deployment.spec.config.engine,
    )


def _build_row(
    spec: ScenarioSpec,
    metrics,
    network_stats,
    population_stats: List[Dict[str, float]],
    engine: str,
) -> ResultRow:
    summary = metrics.summary()
    population: Optional[Dict[str, float]] = None
    if population_stats:
        # Open-loop extras: per-population counters summed across regions,
        # plus the collector's offered-vs-goodput and lease numbers.
        population = dict(metrics.open_loop_summary())
        totals: Dict[str, float] = {}
        for stats in population_stats:
            for key, value in stats.items():
                totals[key] = totals.get(key, 0.0) + value
        count = len(population_stats)
        totals["queueing_delay_mean"] = totals.get("queueing_delay_mean", 0.0) / count
        population.update(totals)
    series: Optional[List[List[float]]] = None
    if spec.timeseries_bucket is not None:
        series = [
            [start, value]
            for start, value in metrics.throughput_timeseries(
                bucket=spec.timeseries_bucket, until=spec.duration
            )
        ]
    return ResultRow(
        scenario=spec.name,
        seed=spec.seed,
        engine=engine,
        preset=spec.preset,
        throughput=summary["throughput_total"],
        throughput_reads=summary["throughput_reads"],
        throughput_writes=summary["throughput_writes"],
        latency_mean=summary["latency_mean"],
        latency_read=summary["latency_mean_read"],
        latency_write=summary["latency_mean_write"],
        latency_p99=summary["latency_p99"],
        operations=int(summary["operations"]),
        rounds=int(summary["rounds"]),
        reconfigs_applied=len(metrics.reconfigs),
        joins_completed=len(metrics.joins_completed),
        labels=dict(spec.labels),
        stages=metrics.stage_breakdown() if spec.collect_stages else None,
        series=series,
        network={
            **network_stats.snapshot(),
            "link_latency_mean_ms": network_stats.mean_link_latency() * 1000.0,
        },
        population=population,
    )


def failed_row(spec: ScenarioSpec, error: str) -> ResultRow:
    """A zeroed row reporting a crashed (scenario, seed) data point."""
    return ResultRow(
        scenario=spec.name,
        seed=spec.seed,
        engine=spec.engine,
        preset=spec.preset,
        throughput=0.0,
        throughput_reads=0.0,
        throughput_writes=0.0,
        latency_mean=0.0,
        latency_read=0.0,
        latency_write=0.0,
        latency_p99=0.0,
        operations=0,
        rounds=0,
        reconfigs_applied=0,
        joins_completed=0,
        labels=dict(spec.labels),
        error=error,
    )


def run_scenario_safe(spec: ScenarioSpec) -> ResultRow:
    """Run one spec; a crash becomes a :func:`failed_row` instead of raising.

    Used by the grid paths (serial and pool) so one bad (scenario, seed)
    pair cannot take down — or silently vanish from — a whole sweep, and so
    the parallel and serial paths stay row-for-row identical.
    """
    try:
        return run_scenario(spec)
    except Exception:  # noqa: BLE001 - the traceback is the payload
        return failed_row(
            spec,
            f"seed {spec.seed}: worker raised\n{traceback.format_exc()}",
        )


def _run_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Pool worker: rebuild the spec from plain data, run, return plain data.

    Exceptions are captured *inside* the worker: an exception propagating
    out of ``Pool.map`` aborts every other seed in the batch, and losing
    the traceback to a pickling error can hang the pool teardown.
    """
    try:
        spec = ScenarioSpec.from_dict(payload)
    except Exception:  # noqa: BLE001
        stub = ScenarioSpec(
            name=str(payload.get("name", "<unparseable>")),
            clusters=[(1, "us-west1")],
            seed=int(payload.get("seed", 0) or 0),
        )
        return failed_row(stub, f"spec rebuild failed\n{traceback.format_exc()}").to_dict()
    return run_scenario_safe(spec).to_dict()


ScenarioLike = Union[ScenarioSpec, "Scenario"]  # noqa: F821 - builder import is lazy


# ---------------------------------------------------------------------- #
# Multi-seed aggregation
# ---------------------------------------------------------------------- #
#: ResultRow fields aggregated across seeds.
AGGREGATE_METRICS = (
    "throughput",
    "throughput_reads",
    "throughput_writes",
    "latency_mean",
    "latency_read",
    "latency_write",
    "latency_p99",
    "operations",
    "rounds",
)

#: Two-sided 95% Student-t critical values by degrees of freedom (n - 1).
#: Seed grids are small (2-10 seeds), where the normal z=1.96 understates
#: the interval badly; beyond the table the normal approximation is fine.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
    30: 2.042,
}


def _t_critical(dof: int) -> float:
    if dof <= 0:
        return 0.0
    if dof in _T_95:
        return _T_95[dof]
    for bound in (15, 20, 30):
        if dof <= bound:
            return _T_95[bound]
    return 1.960


def _mean_std(values: List[float]) -> tuple:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, variance ** 0.5


@dataclass
class AggregateRow:
    """Per-scenario statistics across seeds: mean, stddev, and 95% CI.

    ``mean``/``std``/``ci95`` map each :data:`AGGREGATE_METRICS` field to
    its across-seed mean, sample standard deviation (n−1), and 95%
    confidence half-width (Student t, so 2-5 seed grids are honest about
    their uncertainty instead of quoting a bare point estimate).
    """

    scenario: str
    seeds: List[int]
    mean: Dict[str, float]
    std: Dict[str, float]
    ci95: Dict[str, float]
    failed_seeds: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable description of this aggregate."""
        return asdict(self)

    def format_metric(self, metric: str, precision: int = 1) -> str:
        """Render one metric as ``mean ± ci95`` for reports."""
        return f"{self.mean[metric]:.{precision}f} ± {self.ci95[metric]:.{precision}f}"


def aggregate_rows(rows: Iterable[ResultRow]) -> List[AggregateRow]:
    """Group rows by scenario name and aggregate each metric across seeds.

    Failed rows are excluded from the statistics (their zeros would poison
    every mean) but reported in ``failed_seeds`` so a crash cannot silently
    narrow a confidence interval.
    """
    grouped: Dict[str, List[ResultRow]] = {}
    order: List[str] = []
    for row in rows:
        if row.scenario not in grouped:
            grouped[row.scenario] = []
            order.append(row.scenario)
        grouped[row.scenario].append(row)
    aggregates: List[AggregateRow] = []
    for name in order:
        group = grouped[name]
        good = [row for row in group if row.error is None]
        failed = [row.seed for row in group if row.error is not None]
        mean: Dict[str, float] = {}
        std: Dict[str, float] = {}
        ci95: Dict[str, float] = {}
        if good:
            t = _t_critical(len(good) - 1)
            for metric in AGGREGATE_METRICS:
                values = [float(getattr(row, metric)) for row in good]
                m, s = _mean_std(values)
                mean[metric] = m
                std[metric] = s
                ci95[metric] = t * s / (len(values) ** 0.5) if len(values) > 1 else 0.0
        aggregates.append(
            AggregateRow(
                scenario=name,
                seeds=[row.seed for row in good],
                mean=mean,
                std=std,
                ci95=ci95,
                failed_seeds=failed,
            )
        )
    return aggregates


class ScenarioRunner:
    """Executes scenario grids, serially or across a process pool.

    Args:
        workers: Process-pool size; ``1`` (default) runs in-process.
        mp_context: Optional :mod:`multiprocessing` start method
            (``"fork"``/``"spawn"``); the platform default otherwise.
    """

    def __init__(self, workers: int = 1, mp_context: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.mp_context = mp_context

    # ------------------------------------------------------------------ #
    # Grid expansion
    # ------------------------------------------------------------------ #
    def expand(
        self,
        scenarios: Union[ScenarioLike, Iterable[ScenarioLike]],
        seeds: Optional[Iterable[int]] = None,
    ) -> List[ScenarioSpec]:
        """Flatten builders/specs × seeds into an ordered list of specs."""
        from repro.harness.builder import Scenario

        if isinstance(scenarios, (ScenarioSpec, Scenario)):
            scenarios = [scenarios]
        if seeds is not None:
            seeds = list(seeds)  # a one-shot iterable must expand every scenario
        specs: List[ScenarioSpec] = []
        for scenario in scenarios:
            if isinstance(scenario, Scenario):
                # With explicit seeds the builder's own seed list is moot;
                # compile a single spec instead of expanding and discarding.
                expanded = [scenario.spec()] if seeds is not None else scenario.specs()
            elif isinstance(scenario, ScenarioSpec):
                expanded = [scenario]
            else:
                raise TypeError(f"expected ScenarioSpec or Scenario builder, got {type(scenario)!r}")
            if seeds is not None:
                base = expanded[0]
                expanded = [base.with_seed(seed) for seed in seeds]
            specs.extend(expanded)
        return specs

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        scenarios: Union[ScenarioLike, Iterable[ScenarioLike]],
        seeds: Optional[Iterable[int]] = None,
    ) -> List[ResultRow]:
        """Execute every (scenario, seed) pair; rows come back in order.

        Args:
            scenarios: One or many specs/builders.
            seeds: Optional seed list applied to *every* scenario,
                overriding per-scenario seeds.
        """
        specs = self.expand(scenarios, seeds=seeds)
        return self._run_specs(specs)

    def _run_specs(self, specs: List[ScenarioSpec]) -> List[ResultRow]:
        if self.workers == 1 or len(specs) <= 1:
            # Run the original specs directly: no serialization detour, so
            # e.g. non-importable replica classes work in-process.  Rows are
            # still byte-identical to the pool path because ResultRow
            # survives to_dict()/from_dict() losslessly — including failed
            # rows, which surface the crash per seed on both paths.
            return [run_scenario_safe(spec) for spec in specs]
        # Shard-parallel specs fork their own per-shard worker processes;
        # daemonic pool workers cannot fork children, so those specs run in
        # this (parent) process while the rest of the grid uses the pool.
        pooled = [
            (index, spec)
            for index, spec in enumerate(specs)
            if not (spec.shard_parallel and spec.shards > 1)
        ]
        results: List[Optional[ResultRow]] = [None] * len(specs)
        if pooled:
            payloads = [spec.to_dict() for _, spec in pooled]
            context = multiprocessing.get_context(self.mp_context)
            with context.Pool(processes=min(self.workers, len(payloads))) as pool:
                # chunksize=1 schedules every (scenario, seed) cell as its
                # own task: the default chunking hands each worker a
                # contiguous block up front, so one slow scenario serialises
                # its whole block behind it while other workers sit idle.
                mapped = pool.map(_run_payload, payloads, chunksize=1)
            for (index, _), result in zip(pooled, mapped):
                results[index] = ResultRow.from_dict(result)
        for index, spec in enumerate(specs):
            if results[index] is None:
                results[index] = run_scenario_safe(spec)
        return results

    def aggregate(
        self,
        scenarios: Union[ScenarioLike, Iterable[ScenarioLike]],
        seeds: Optional[Iterable[int]] = None,
    ) -> List[AggregateRow]:
        """Execute a grid and report per-scenario mean, stddev, and 95% CI.

        One :class:`AggregateRow` per scenario name, aggregating every
        :data:`AGGREGATE_METRICS` field across that scenario's seeds —
        replaces bare point estimates for any claim built on a seed grid.
        """
        return aggregate_rows(self.run(scenarios, seeds=seeds))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @staticmethod
    def save(rows: Iterable[ResultRow], path: str, indent: int = 2) -> None:
        """Write rows to ``path`` as a JSON list (stable key order)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump([row.to_dict() for row in rows], handle, indent=indent, sort_keys=True)
            handle.write("\n")

    @staticmethod
    def load(path: str) -> List[ResultRow]:
        """Reload rows previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return [ResultRow.from_dict(payload) for payload in json.load(handle)]


__all__ = [
    "AGGREGATE_METRICS",
    "AggregateRow",
    "ResultRow",
    "ScenarioRunner",
    "aggregate_rows",
    "failed_row",
    "run_scenario",
    "run_scenario_safe",
]
