"""Experiment harness: scenarios, deployments, metrics, faults, experiments.

The experiment-facing entry point is the declarative scenario API: the
fluent :class:`Scenario` builder compiles to serializable
:class:`ScenarioSpec` objects, and the :class:`ScenarioRunner` executes
spec lists across seeds (optionally over a process pool) into typed
:class:`ResultRow` results.  Underneath, a :class:`Deployment` assembles
simulator + network + replicas + clients, and the
:class:`MetricsCollector` answers the questions the paper's figures plot.
Runners for every experiment in the evaluation (E0–E8) live in
:mod:`repro.harness.experiments`.
"""

from repro.harness.builder import DeploymentBuilder, Scenario
from repro.harness.deployment import Deployment, DeploymentSpec, build_deployment
from repro.harness.faults import FaultInjector
from repro.harness.metrics import MetricsCollector
from repro.harness.runner import ResultRow, ScenarioRunner, run_scenario
from repro.harness.scenario import (
    ByzantineEvent,
    ChurnLoop,
    CrashEvent,
    JoinEvent,
    LeaveEvent,
    PartitionEvent,
    ScenarioSpec,
    register_preset,
)

__all__ = [
    "ByzantineEvent",
    "ChurnLoop",
    "CrashEvent",
    "Deployment",
    "DeploymentBuilder",
    "DeploymentSpec",
    "FaultInjector",
    "JoinEvent",
    "LeaveEvent",
    "MetricsCollector",
    "PartitionEvent",
    "ResultRow",
    "Scenario",
    "ScenarioRunner",
    "ScenarioSpec",
    "build_deployment",
    "register_preset",
    "run_scenario",
]
