"""Experiment harness: deployments, metrics, fault injection, experiments.

The harness assembles simulator + network + replicas + clients into a
runnable deployment, collects the metrics the paper reports (throughput,
latency, per-stage breakdown, throughput time series), and provides runners
for every experiment in the paper's evaluation (E0–E8).
"""

from repro.harness.deployment import Deployment, DeploymentSpec
from repro.harness.faults import FaultInjector
from repro.harness.metrics import MetricsCollector

__all__ = ["Deployment", "DeploymentSpec", "FaultInjector", "MetricsCollector"]
