"""Fault injection for the failure and adversity experiments (E4, E9).

The crash/Byzantine faults match the paper's E4 scenarios:

* crash of up to ``f`` non-leader replicas per cluster,
* crash of a cluster leader (detected by the local leader-change path),
* a Byzantine leader that behaves correctly inside its cluster but never
  sends the inter-cluster broadcast (detected by the remote leader change).

The gray-failure pack extends them with conditions that degrade rather
than stop: slow (gray) replicas, skewed clocks, duty-cycled flapping
partitions, and correlated whole-region outages.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import failure_threshold
from repro.core.replica import MODE_ACTIVE, MODE_IDLE
from repro.errors import ConfigurationError
from repro.harness.deployment import Deployment
from repro.net.latency import canonical_region


class FaultInjector:
    """Schedules faults against a deployment before (or while) it runs.

    Cluster-scoped faults (leader crashes, non-leader crashes, Byzantine
    leader switches) resolve membership and leadership **when the fault
    fires**, not when it is scheduled: a leader elected — or a replica that
    joined — between scheduling and ``at_time`` is targeted like any seed
    member.  The returned replica ids are the best-known candidates at
    scheduling time (they coincide with the fire-time resolution unless the
    cluster reconfigures in between), kept for assertion convenience.
    """

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self.injected: List[str] = []

    # ------------------------------------------------------------------ #
    # Live resolution helpers
    # ------------------------------------------------------------------ #
    def _cluster_state(self, cluster_id: int):
        """Current ``(members, leader)`` of a cluster, resolved live.

        Reads the lowest-id live member's view — the same source replicas
        use — so joiners count and departed replicas do not; falls back to
        the initial configuration while no member is up (pre-start).
        """
        deployment = self.deployment
        candidates = sorted(
            (
                replica
                for replica in deployment.replicas.values()
                if replica.cluster_id == cluster_id
                and replica.mode == MODE_ACTIVE
                and not replica.crashed
            ),
            key=lambda replica: replica.process_id,
        )
        if candidates:
            reporter = candidates[0]
            members = sorted(reporter.view.get(cluster_id, ()))
            if members:
                return members, reporter.leader
        members = sorted(deployment.system_config.members(cluster_id))
        return members, members[0]

    # ------------------------------------------------------------------ #
    # Crash faults
    # ------------------------------------------------------------------ #
    def _cluster_simulator(self, cluster_id: int):
        """The kernel owning a cluster — cluster-scoped faults fire there."""
        return self.deployment.shard_of_cluster(cluster_id).simulator

    def _schedule_replica_fault(
        self, replica_id: str, at_time: float, label: str, effect: Callable
    ) -> None:
        """Owner-routed, fire-time-resolved scheduling shared by replica faults.

        The fault is scheduled on the kernel of the shard that *owns* the
        replica (the owner map covers joiners and, in multiprocess workers,
        replicas built by other workers), so in a shard worker only the
        owning worker installs it — the rest no-op instead of silently
        dropping a fault they cannot see.  The target is resolved again when
        the fault fires; ids that name no known process raise everywhere.
        """
        deployment = self.deployment
        if deployment.local_shard is not None:
            owner = deployment._owners.get(replica_id)
            if owner is None:
                raise ConfigurationError(f"unknown replica {replica_id!r}")
            if deployment.shard_of_cluster(owner).index != deployment.local_shard:
                return  # another shard's worker owns it and schedules the fault
        deployment.replica(replica_id)  # unknown (and client) ids raise here
        simulator = deployment.simulator_for(replica_id)

        def _fire() -> None:
            replica = deployment.replicas.get(replica_id)
            if replica is not None:
                effect(replica, simulator)

        simulator.schedule_at(at_time, _fire, label=label)

    def crash_replica(self, replica_id: str, at_time: float) -> None:
        """Crash-stop one replica at the given virtual time."""
        self._schedule_replica_fault(
            replica_id,
            at_time,
            f"fault:crash:{replica_id}",
            lambda replica, simulator: replica.crash(),
        )
        self.injected.append(f"crash {replica_id} @ {at_time}")

    def _pick_non_leaders(self, cluster_id: int, count: Optional[int]) -> List[str]:
        members, leader = self._cluster_state(cluster_id)
        faults = failure_threshold(len(members))
        count = faults if count is None else min(count, faults)
        return [m for m in members if m != leader][-count:] if count else []

    def crash_non_leaders(self, cluster_id: int, at_time: float, count: Optional[int] = None) -> List[str]:
        """Crash up to ``f`` non-leader replicas of a cluster (E4.1)."""

        def _crash_current() -> None:
            for victim in self._pick_non_leaders(cluster_id, count):
                replica = self.deployment.replicas.get(victim)
                if replica is not None:
                    replica.crash()

        self._cluster_simulator(cluster_id).schedule_at(
            at_time, _crash_current, label=f"fault:crash-followers:c{cluster_id}"
        )
        victims = self._pick_non_leaders(cluster_id, count)
        self.injected.append(f"crash-followers c{cluster_id} ({victims}) @ {at_time}")
        return victims

    def crash_leader(self, cluster_id: int, at_time: float) -> str:
        """Crash the replica leading the cluster *at the fault time* (E4.2)."""

        def _crash_current() -> None:
            _, leader = self._cluster_state(cluster_id)
            replica = self.deployment.replicas.get(leader)
            if replica is not None:
                replica.crash()

        self._cluster_simulator(cluster_id).schedule_at(
            at_time, _crash_current, label=f"fault:crash-leader:c{cluster_id}"
        )
        _, leader = self._cluster_state(cluster_id)
        self.injected.append(f"crash-leader c{cluster_id} ({leader}) @ {at_time}")
        return leader

    # ------------------------------------------------------------------ #
    # Byzantine faults
    # ------------------------------------------------------------------ #
    def silence_leader_inter_broadcast(self, cluster_id: int, at_time: float) -> str:
        """Make the cluster leader stop sending inter-cluster messages (E4.3).

        The leader keeps participating correctly in local ordering, so only
        remote clusters can detect the fault — exactly the scenario the
        heterogeneous remote leader change protocol exists for.  The switch
        is flipped on whichever replica leads the cluster at ``at_time``.
        """

        def _silence_current() -> None:
            _, leader = self._cluster_state(cluster_id)
            replica = self.deployment.replicas.get(leader)
            if replica is not None:
                replica.byzantine.silent_inter_after = at_time

        self._cluster_simulator(cluster_id).schedule_at(
            at_time, _silence_current, label=f"fault:silent-inter:c{cluster_id}"
        )
        _, leader_id = self._cluster_state(cluster_id)
        self.injected.append(f"silent-inter c{cluster_id} ({leader_id}) @ {at_time}")
        return leader_id

    def partition_clusters(self, cluster_a: int, cluster_b: int, at_time: float, duration: float) -> None:
        """Temporarily drop all traffic between two clusters.

        Membership is resolved per envelope while the partition is live, not
        snapshotted when the fault is scheduled: a replica that joins either
        cluster before — or even during — the partition window is cut off
        like any seed member.
        """
        deployment = self.deployment
        replicas = deployment.replicas

        def cluster_side(process_id: str):
            replica = replicas.get(process_id)
            if replica is None or replica.mode == MODE_IDLE:
                return None  # clients and not-yet-joined replicas sit outside
            return replica.cluster_id

        def rule(sender, destination, payload) -> bool:
            sender_side = cluster_side(sender)
            if sender_side == cluster_a:
                return cluster_side(destination) == cluster_b
            if sender_side == cluster_b:
                return cluster_side(destination) == cluster_a
            return False

        # Install (and heal) on every shard at that shard's *own* virtual
        # time: drop decisions are made sender-side, and a shard may be up
        # to one lookahead window ahead of or behind its peers in wall
        # order, so a single global install event would misclassify the
        # other shards' sends near the boundary.
        def _schedule_on(shard) -> None:
            network = shard.network
            simulator = shard.simulator

            def _install() -> None:
                network.add_drop_rule(rule)
                simulator.schedule(
                    duration, lambda: network.remove_drop_rule(rule), label="fault:heal"
                )

            simulator.schedule_at(at_time, _install, label="fault:partition")

        for shard in deployment.shards:
            _schedule_on(shard)
        self.injected.append(f"partition c{cluster_a}/c{cluster_b} @ {at_time} for {duration}")

    # ------------------------------------------------------------------ #
    # Gray failures (degrade, don't stop)
    # ------------------------------------------------------------------ #
    def degrade_replica(
        self, replica_id: str, at_time: float, factor: float, duration: Optional[float] = None
    ) -> None:
        """Slow one replica's CPU by ``factor`` (gray failure: late, not dead).

        ``duration`` restores full speed afterwards; ``None`` is permanent.
        """

        def _effect(replica, simulator) -> None:
            replica.set_cpu_factor(factor)
            if duration is not None:
                simulator.schedule(duration, lambda: replica.set_cpu_factor(1.0), label="fault:heal")

        self._schedule_replica_fault(replica_id, at_time, f"fault:gray:{replica_id}", _effect)
        self.injected.append(f"gray {replica_id} x{factor} @ {at_time}")

    def degrade_leader(
        self, cluster_id: int, at_time: float, factor: float, duration: Optional[float] = None
    ) -> str:
        """Slow whichever replica leads the cluster *at the fault time*."""
        simulator = self._cluster_simulator(cluster_id)

        def _fire() -> None:
            _, leader = self._cluster_state(cluster_id)
            replica = self.deployment.replicas.get(leader)
            if replica is not None:
                replica.set_cpu_factor(factor)
                if duration is not None:
                    simulator.schedule(
                        duration, lambda: replica.set_cpu_factor(1.0), label="fault:heal"
                    )

        simulator.schedule_at(at_time, _fire, label=f"fault:gray-leader:c{cluster_id}")
        _, leader = self._cluster_state(cluster_id)
        self.injected.append(f"gray-leader c{cluster_id} ({leader}) x{factor} @ {at_time}")
        return leader

    def skew_clock(
        self, replica_id: str, at_time: float, rate: float, duration: Optional[float] = None
    ) -> None:
        """Skew one replica's timer clock (``rate < 1``: timeouts fire early)."""

        def _effect(replica, simulator) -> None:
            replica.set_timer_rate(rate)
            if duration is not None:
                simulator.schedule(duration, lambda: replica.set_timer_rate(1.0), label="fault:heal")

        self._schedule_replica_fault(replica_id, at_time, f"fault:skew:{replica_id}", _effect)
        self.injected.append(f"clock-skew {replica_id} x{rate} @ {at_time}")

    def skew_leader_clock(
        self, cluster_id: int, at_time: float, rate: float, duration: Optional[float] = None
    ) -> str:
        """Skew the clock of whichever replica leads the cluster at fire time."""
        simulator = self._cluster_simulator(cluster_id)

        def _fire() -> None:
            _, leader = self._cluster_state(cluster_id)
            replica = self.deployment.replicas.get(leader)
            if replica is not None:
                replica.set_timer_rate(rate)
                if duration is not None:
                    simulator.schedule(
                        duration, lambda: replica.set_timer_rate(1.0), label="fault:heal"
                    )

        simulator.schedule_at(at_time, _fire, label=f"fault:skew-leader:c{cluster_id}")
        _, leader = self._cluster_state(cluster_id)
        self.injected.append(f"clock-skew-leader c{cluster_id} ({leader}) x{rate} @ {at_time}")
        return leader

    # ------------------------------------------------------------------ #
    # Network adversity
    # ------------------------------------------------------------------ #
    def flapping_partition(
        self,
        cluster_a: int,
        cluster_b: int,
        at_time: float,
        period: float,
        duty: float = 0.5,
        cycles: int = 5,
        direction: str = "both",
    ) -> None:
        """A duty-cycled, optionally asymmetric partition between two clusters.

        From ``at_time`` on, the link is cut for ``duty * period`` seconds
        out of every ``period``, ``cycles`` times.  ``direction`` limits the
        cut to one way (``"a_to_b"`` / ``"b_to_a"``) — gray links are often
        asymmetric.  Membership is resolved per envelope like
        :meth:`partition_clusters`, so mid-flap joiners are covered.
        """
        deployment = self.deployment
        replicas = deployment.replicas

        def cluster_side(process_id: str):
            replica = replicas.get(process_id)
            if replica is None or replica.mode == MODE_IDLE:
                return None
            return replica.cluster_id

        def rule(sender, destination, payload) -> bool:
            sender_side = cluster_side(sender)
            if direction != "b_to_a" and sender_side == cluster_a:
                return cluster_side(destination) == cluster_b
            if direction != "a_to_b" and sender_side == cluster_b:
                return cluster_side(destination) == cluster_a
            return False

        cut = duty * period

        def _schedule_on(shard) -> None:
            network = shard.network
            simulator = shard.simulator

            def _install() -> None:
                network.add_drop_rule(rule)
                simulator.schedule(cut, lambda: network.remove_drop_rule(rule), label="fault:heal")

            for cycle in range(cycles):
                simulator.schedule_at(at_time + cycle * period, _install, label="fault:flap")

        for shard in deployment.shards:
            _schedule_on(shard)
        self.injected.append(
            f"flapping-partition c{cluster_a}/c{cluster_b} ({direction}) "
            f"@ {at_time} period={period} duty={duty} x{cycles}"
        )

    def region_outage(self, region: str, at_time: float, duration: float) -> None:
        """Cut a whole region off the WAN for ``duration`` seconds.

        Every message with exactly one endpoint placed in the dark region is
        dropped; traffic between two processes *inside* the region still
        flows (the region lost its uplink, not its LAN).  Placement-based,
        so it correlates across all clusters — and all shards — in the
        region at once.
        """
        deployment = self.deployment
        region_of = deployment.latency_model.region_of
        dark = canonical_region(region)

        def rule(sender, destination, payload) -> bool:
            return (region_of(sender) == dark) != (region_of(destination) == dark)

        def _schedule_on(shard) -> None:
            network = shard.network
            simulator = shard.simulator

            def _install() -> None:
                network.add_drop_rule(rule)
                simulator.schedule(
                    duration, lambda: network.remove_drop_rule(rule), label="fault:heal"
                )

            simulator.schedule_at(at_time, _install, label="fault:region-outage")

        for shard in deployment.shards:
            _schedule_on(shard)
        self.injected.append(f"region-outage {dark} @ {at_time} for {duration}")


__all__ = ["FaultInjector"]
