"""Fault injection for the failure experiments (E4.1–E4.3).

Three fault types match the paper's scenarios:

* crash of up to ``f`` non-leader replicas per cluster,
* crash of a cluster leader (detected by the local leader-change path),
* a Byzantine leader that behaves correctly inside its cluster but never
  sends the inter-cluster broadcast (detected by the remote leader change).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import failure_threshold
from repro.core.replica import MODE_IDLE
from repro.harness.deployment import Deployment


class FaultInjector:
    """Schedules faults against a deployment before (or while) it runs."""

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self.injected: List[str] = []

    # ------------------------------------------------------------------ #
    # Crash faults
    # ------------------------------------------------------------------ #
    def crash_replica(self, replica_id: str, at_time: float) -> None:
        """Crash-stop one replica at the given virtual time."""
        replica = self.deployment.replica(replica_id)
        self.deployment.simulator.schedule_at(
            at_time, replica.crash, label=f"fault:crash:{replica_id}"
        )
        self.injected.append(f"crash {replica_id} @ {at_time}")

    def crash_non_leaders(self, cluster_id: int, at_time: float, count: Optional[int] = None) -> List[str]:
        """Crash up to ``f`` non-leader replicas of a cluster (E4.1)."""
        members = sorted(self.deployment.system_config.members(cluster_id))
        faults = failure_threshold(len(members))
        count = faults if count is None else min(count, faults)
        leader = self.deployment.replicas[members[0]].leader
        victims = [m for m in members if m != leader][-count:] if count else []
        for victim in victims:
            self.crash_replica(victim, at_time)
        return victims

    def crash_leader(self, cluster_id: int, at_time: float) -> str:
        """Crash the current leader of a cluster (E4.2)."""
        members = sorted(self.deployment.system_config.members(cluster_id))
        leader = self.deployment.replicas[members[0]].leader
        self.crash_replica(leader, at_time)
        return leader

    # ------------------------------------------------------------------ #
    # Byzantine faults
    # ------------------------------------------------------------------ #
    def silence_leader_inter_broadcast(self, cluster_id: int, at_time: float) -> str:
        """Make the cluster leader stop sending inter-cluster messages (E4.3).

        The leader keeps participating correctly in local ordering, so only
        remote clusters can detect the fault — exactly the scenario the
        heterogeneous remote leader change protocol exists for.
        """
        members = sorted(self.deployment.system_config.members(cluster_id))
        leader_id = self.deployment.replicas[members[0]].leader
        leader = self.deployment.replica(leader_id)
        leader.byzantine.silent_inter_after = at_time
        self.injected.append(f"silent-inter {leader_id} @ {at_time}")
        return leader_id

    def partition_clusters(self, cluster_a: int, cluster_b: int, at_time: float, duration: float) -> None:
        """Temporarily drop all traffic between two clusters.

        Membership is resolved per envelope while the partition is live, not
        snapshotted when the fault is scheduled: a replica that joins either
        cluster before — or even during — the partition window is cut off
        like any seed member.
        """
        deployment = self.deployment
        replicas = deployment.replicas

        def cluster_side(process_id: str):
            replica = replicas.get(process_id)
            if replica is None or replica.mode == MODE_IDLE:
                return None  # clients and not-yet-joined replicas sit outside
            return replica.cluster_id

        def rule(sender, destination, payload) -> bool:
            sender_side = cluster_side(sender)
            if sender_side == cluster_a:
                return cluster_side(destination) == cluster_b
            if sender_side == cluster_b:
                return cluster_side(destination) == cluster_a
            return False

        def _install() -> None:
            deployment.network.add_drop_rule(rule)
            deployment.simulator.schedule(
                duration, lambda: deployment.network.remove_drop_rule(rule), label="fault:heal"
            )

        deployment.simulator.schedule_at(at_time, _install, label="fault:partition")
        self.injected.append(f"partition c{cluster_a}/c{cluster_b} @ {at_time} for {duration}")


__all__ = ["FaultInjector"]
