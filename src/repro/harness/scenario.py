"""Declarative scenarios: one serializable spec per experimental data point.

The paper's evaluation is a grid of *scenarios* — cluster shapes × engines ×
fault/churn schedules × workloads.  :class:`ScenarioSpec` captures one cell
of that grid as plain data: the clusters, the protocol configuration, the
workload and latency models, and a unified ``schedule`` of typed events
(:class:`JoinEvent`, :class:`LeaveEvent`, :class:`CrashEvent`,
:class:`ByzantineEvent`, :class:`PartitionEvent`, :class:`GrayReplicaEvent`,
:class:`ClockSkewEvent`, :class:`FlappingPartitionEvent`,
:class:`RegionOutageEvent`, :class:`ChurnLoop`) that replaces the imperative
``add_joiner`` / ``schedule_leave`` / ``FaultInjector`` mutation calls.

A spec round-trips through JSON (:meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict`), compiles to a runnable
:class:`~repro.harness.deployment.Deployment` (:meth:`ScenarioSpec.build`),
and executes to a typed result row (:meth:`ScenarioSpec.run`).  Baselines
plug in through named *presets* (``"hamava"``, ``"geobft"``,
``"single_workflow"``) that transform the protocol configuration and may
swap the replica class.

Most callers never instantiate a spec directly: the fluent
:class:`~repro.harness.builder.Scenario` builder compiles to specs, and the
:class:`~repro.harness.runner.ScenarioRunner` executes lists of them across
seeds, optionally in parallel.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.consensus.interface import ConsensusConfig
from repro.core.config import HamavaConfig
from repro.core.replica import HamavaReplica
from repro.errors import ConfigurationError
from repro.net.adversity import CongestionConfig, RttTrace
from repro.net.latency import LatencyParameters
from repro.net.network import NetworkConfig
from repro.workload.population import (
    PopulationConfig,
    population_from_dict,
    population_to_dict,
)
from repro.workload.ycsb import YcsbConfig

#: Region used when a scenario does not say otherwise.
DEFAULT_REGION = "us-west1"


# ---------------------------------------------------------------------- #
# Schedule events
# ---------------------------------------------------------------------- #
@dataclass
class JoinEvent:
    """A new replica requests to join ``cluster`` at virtual time ``at``."""

    kind: ClassVar[str] = "join"

    cluster: int
    at: float
    replica_id: Optional[str] = None
    region: Optional[str] = None


@dataclass
class LeaveEvent:
    """An existing replica requests to leave at virtual time ``at``."""

    kind: ClassVar[str] = "leave"

    replica: str
    at: float


@dataclass
class CrashEvent:
    """Crash-stop one replica, a cluster's leader, or its non-leaders.

    Attributes:
        at: Virtual time of the crash.
        replica: Replica id, required when ``scope == "replica"``.
        cluster: Cluster id, required for the ``"leader"`` and
            ``"non_leaders"`` scopes.
        scope: ``"replica"`` (default), ``"leader"`` (E4.2), or
            ``"non_leaders"`` (E4.1: up to ``f`` followers).
        count: Optional cap on how many non-leaders to crash.
    """

    kind: ClassVar[str] = "crash"

    at: float
    replica: Optional[str] = None
    cluster: Optional[int] = None
    scope: str = "replica"
    count: Optional[int] = None


@dataclass
class ByzantineEvent:
    """Turn a cluster's leader Byzantine at virtual time ``at``.

    The only modelled behaviour is the paper's E4.3 attack
    (``"silent_inter"``): the leader keeps ordering correctly inside its
    cluster but stops sending the inter-cluster broadcast.
    """

    kind: ClassVar[str] = "byzantine"

    cluster: int
    at: float
    behavior: str = "silent_inter"


@dataclass
class PartitionEvent:
    """Drop all traffic between two clusters for ``duration`` seconds."""

    kind: ClassVar[str] = "partition"

    cluster_a: int
    cluster_b: int
    at: float
    duration: float


@dataclass
class GrayReplicaEvent:
    """Gray failure: a replica keeps running but its CPU slows by ``factor``.

    The replica is never declared crashed — it answers, just late.  With
    ``scope == "leader"`` the target is resolved *live* at fire time (the
    cluster's current leader, which an earlier event may have changed).
    ``duration`` restores full speed afterwards; ``None`` degrades forever.
    """

    kind: ClassVar[str] = "gray"

    at: float
    factor: float = 8.0
    replica: Optional[str] = None
    cluster: Optional[int] = None
    scope: str = "replica"
    duration: Optional[float] = None


@dataclass
class ClockSkewEvent:
    """Skew one replica's timer clock by ``rate`` (1.0 is a true clock).

    ``rate < 1`` is a fast local clock — timeouts fire early, which is the
    classic cause of spurious leader complaints; ``rate > 1`` is a slow
    clock that reacts sluggishly to real failures.  Scoping and live
    resolution follow :class:`GrayReplicaEvent`.
    """

    kind: ClassVar[str] = "clock_skew"

    at: float
    rate: float = 0.5
    replica: Optional[str] = None
    cluster: Optional[int] = None
    scope: str = "replica"
    duration: Optional[float] = None


@dataclass
class FlappingPartitionEvent:
    """A duty-cycled, optionally asymmetric partition between two clusters.

    Starting at ``at``, the link is cut for ``duty * period`` seconds out
    of every ``period``, for ``cycles`` repetitions.  ``direction`` selects
    which way traffic is dropped: ``"both"`` (default), ``"a_to_b"``, or
    ``"b_to_a"`` (gray links are often asymmetric).  Membership is resolved
    live on every send, so replicas joining mid-flap are covered.
    """

    kind: ClassVar[str] = "flapping_partition"

    cluster_a: int
    cluster_b: int
    at: float
    period: float
    duty: float = 0.5
    cycles: int = 5
    direction: str = "both"


@dataclass
class RegionOutageEvent:
    """Correlated outage: a whole region drops off the WAN for ``duration``.

    Every message with exactly one endpoint placed in ``region`` is dropped
    (traffic *inside* the dark region still flows — the region lost its
    uplink, not its LAN), affecting all clusters there at once.
    """

    kind: ClassVar[str] = "region_outage"

    region: str
    at: float
    duration: float


@dataclass
class ChurnLoop:
    """Periodic churn: one join every ``period`` seconds (E5.2/E7/E8 style).

    Joins rotate round-robin over ``clusters`` and are named
    ``f"{prefix}{index}"``.  ``stop`` defaults to one second before the
    scenario's duration, matching the paper's churn windows.
    """

    kind: ClassVar[str] = "churn"

    start: float
    period: float
    stop: Optional[float] = None
    clusters: Tuple[int, ...] = (0,)
    prefix: str = "churn"
    region: Optional[str] = None


ScenarioEvent = Union[
    JoinEvent,
    LeaveEvent,
    CrashEvent,
    ByzantineEvent,
    PartitionEvent,
    GrayReplicaEvent,
    ClockSkewEvent,
    FlappingPartitionEvent,
    RegionOutageEvent,
    ChurnLoop,
]

EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        JoinEvent,
        LeaveEvent,
        CrashEvent,
        ByzantineEvent,
        PartitionEvent,
        GrayReplicaEvent,
        ClockSkewEvent,
        FlappingPartitionEvent,
        RegionOutageEvent,
        ChurnLoop,
    )
}


def event_to_dict(event: ScenarioEvent) -> Dict[str, object]:
    """Serialize one schedule event (the ``kind`` tag selects the type)."""
    payload: Dict[str, object] = {"kind": event.kind}
    data = asdict(event)
    if isinstance(event, ChurnLoop):
        data["clusters"] = list(event.clusters)
    payload.update(data)
    return payload


def event_from_dict(payload: Dict[str, object]) -> ScenarioEvent:
    """Deserialize one schedule event from its tagged dictionary."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind not in EVENT_TYPES:
        raise ConfigurationError(f"unknown schedule event kind {kind!r}")
    if kind == "churn" and "clusters" in data:
        data["clusters"] = tuple(data["clusters"])
    return EVENT_TYPES[kind](**data)


# ---------------------------------------------------------------------- #
# Presets (baseline systems plug in here)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Preset:
    """A named system variant: a config transform plus a replica class."""

    name: str
    transform: Callable[[HamavaConfig], HamavaConfig]
    replica_class: Type[HamavaReplica] = HamavaReplica


PRESETS: Dict[str, Preset] = {}


def register_preset(
    name: str,
    transform: Callable[[HamavaConfig], HamavaConfig],
    replica_class: Type[HamavaReplica] = HamavaReplica,
) -> None:
    """Register a scenario preset under ``name`` (case-insensitive)."""
    PRESETS[name.lower()] = Preset(name=name.lower(), transform=transform, replica_class=replica_class)


register_preset("hamava", lambda config: config)


def resolve_preset(name: str) -> Preset:
    """Look up a preset, importing the baselines to self-register if needed."""
    key = name.lower()
    if key not in PRESETS:
        # Baseline modules register their presets on import.
        importlib.import_module("repro.baselines")
    if key not in PRESETS:
        raise ConfigurationError(f"unknown scenario preset {name!r}; available: {sorted(PRESETS)}")
    return PRESETS[key]


def _class_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_class(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    if not qualname:
        raise ConfigurationError(f"replica class path {path!r} must look like 'module:Class'")
    try:
        obj: object = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise ConfigurationError(
            f"cannot resolve replica class {path!r} (classes must be importable "
            f"by name to cross process boundaries): {exc}"
        ) from exc
    return obj  # type: ignore[return-value]


# ---------------------------------------------------------------------- #
# Configuration overrides
# ---------------------------------------------------------------------- #
#: Override keys that live on the nested ConsensusConfig.
_CONSENSUS_KEYS = ("instance_timeout", "payload_byte_size", "chained_decide_grace")


def apply_config_overrides(config: HamavaConfig, overrides: Dict[str, object]) -> HamavaConfig:
    """Return a copy of ``config`` with flat overrides applied.

    Keys name :class:`HamavaConfig` fields; ``instance_timeout`` and
    ``payload_byte_size`` are routed to the nested consensus configuration.
    """
    config = replace(config, consensus=replace(config.consensus))
    for key, value in overrides.items():
        if key in _CONSENSUS_KEYS:
            setattr(config.consensus, key, value)
        elif key == "consensus":
            raise ConfigurationError("override consensus fields individually (e.g. instance_timeout)")
        elif hasattr(config, key):
            setattr(config, key, value)
        else:
            raise ConfigurationError(f"unknown config override {key!r}")
    return config


def _config_to_dict(config: HamavaConfig) -> Dict[str, object]:
    return asdict(config)


def _config_from_dict(payload: Dict[str, object]) -> HamavaConfig:
    data = dict(payload)
    consensus = ConsensusConfig(**data.pop("consensus", {}))
    return HamavaConfig(consensus=consensus, **data)


# ---------------------------------------------------------------------- #
# The scenario spec
# ---------------------------------------------------------------------- #
@dataclass
class ScenarioSpec:
    """A declarative description of one experimental data point.

    Attributes:
        name: Scenario label; carried into result rows.
        clusters: ``[(size, region), ...]`` — one entry per cluster.
        engine: Local ordering engine (presets may force a different one).
        preset: System variant: ``"hamava"``, ``"geobft"``,
            ``"single_workflow"`` (baselines register their own).
        seed: Scenario seed; same seed ⇒ same run, bit for bit.
        duration: Virtual seconds to simulate.
        warmup: Completions before this time are excluded from metrics.
        client_threads: Closed-loop threads per workload client.
        clients_per_cluster: Workload clients per cluster.
        workload: YCSB parameters.
        workload_model: ``"closed"`` (per-thread YCSB clients, the paper's
            evaluation setup) or ``"open"`` (one aggregate
            :class:`~repro.workload.population.ClientPopulation` per
            cluster, driven by an arrival rate or load shape).
        population: Open-loop population parameters; required context when
            ``workload_model == "open"`` (defaults applied when ``None``).
        latency: Latency-model constants.
        network: Network processing-cost constants.
        config: Optional base protocol configuration (defaults applied
            otherwise); ``engine``/preset/overrides are layered on top.
        config_overrides: Flat :class:`HamavaConfig` field overrides
            (``instance_timeout`` reaches the consensus sub-config).
        region_overrides: Per-replica region placement.
        rtt_overrides: ``[(region_a, region_b, rtt_ms), ...]`` overrides of
            the inter-region RTT matrix (the E8 sweep).
        churn_client_region: Region churn clients are registered in;
            defaults to the first cluster's region.
        schedule: Unified list of timed events (joins, leaves, crashes,
            Byzantine switches, partitions, churn loops).
        timeseries_bucket: When set, the result row carries a throughput
            time series with this bucket width (failure/churn figures).
        collect_stages: When ``True`` the result row carries the E2
            per-stage latency breakdown.
        labels: Free-form tags copied into the result row (e.g. the sweep
            coordinates a figure plots against).
        replica_class: Replica implementation: a class, a ``"module:Class"``
            path, or ``None`` to use the preset's class.
        shards: Simulation shards clusters are packed onto (clamped to the
            cluster count).  Results are byte-identical for every value;
            more shards only changes wall-clock behaviour.
        shard_parallel: Run shards in worker *processes* (true parallelism)
            instead of interleaving them in-process.  Requires
            ``shards > 1``; results remain byte-identical.
        strict_streams: Enable the RNG stream-ownership audit (draws from a
            foreign shard's streams raise ``StreamOwnershipError``).
        rtt_trace: Optional trace-driven RTT schedule (piecewise-linear
            ``(time, rtt)`` segments per region pair); traced pairs are
            re-sampled every send instead of using the static matrix.
        congestion: Optional load-dependent link-latency model with
            injectable background cross-traffic streams.
    """

    name: str = "scenario"
    clusters: List[Tuple[int, str]] = field(default_factory=lambda: [(4, DEFAULT_REGION)])
    engine: str = "hotstuff"
    preset: str = "hamava"
    seed: int = 1
    duration: float = 5.0
    warmup: float = 0.0
    client_threads: int = 16
    clients_per_cluster: int = 1
    workload: YcsbConfig = field(default_factory=YcsbConfig)
    workload_model: str = "closed"
    population: Optional[PopulationConfig] = None
    latency: LatencyParameters = field(default_factory=LatencyParameters)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    config: Optional[HamavaConfig] = None
    config_overrides: Dict[str, object] = field(default_factory=dict)
    region_overrides: Dict[str, str] = field(default_factory=dict)
    rtt_overrides: List[Tuple[str, str, float]] = field(default_factory=list)
    churn_client_region: Optional[str] = None
    schedule: List[ScenarioEvent] = field(default_factory=list)
    timeseries_bucket: Optional[float] = None
    collect_stages: bool = False
    labels: Dict[str, object] = field(default_factory=dict)
    replica_class: Union[None, str, type] = None
    shards: int = 1
    shard_parallel: bool = False
    strict_streams: bool = False
    rtt_trace: Optional[RttTrace] = None
    congestion: Optional[CongestionConfig] = None

    # ------------------------------------------------------------------ #
    # Derivations
    # ------------------------------------------------------------------ #
    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy of this spec running under a different seed."""
        return replace(
            self,
            seed=seed,
            clusters=[tuple(c) for c in self.clusters],
            workload=replace(self.workload),
            population=None if self.population is None else self.population.copy(),
            latency=replace(self.latency),
            network=replace(self.network),
            config=None if self.config is None else replace(self.config, consensus=replace(self.config.consensus)),
            config_overrides=dict(self.config_overrides),
            region_overrides=dict(self.region_overrides),
            rtt_overrides=[tuple(r) for r in self.rtt_overrides],
            schedule=list(self.schedule),
            labels=dict(self.labels),
            rtt_trace=None if self.rtt_trace is None else self.rtt_trace.copy(),
            congestion=None if self.congestion is None else self.congestion.copy(),
        )

    def compiled_config(self) -> HamavaConfig:
        """The effective protocol configuration: base → engine → preset → overrides."""
        config = self.config if self.config is not None else HamavaConfig()
        config = config.with_engine(self.engine)
        config = resolve_preset(self.preset).transform(config)
        return apply_config_overrides(config, self.config_overrides)

    def compiled_replica_class(self) -> type:
        """The effective replica implementation for this scenario."""
        if self.replica_class is None:
            return resolve_preset(self.preset).replica_class
        if isinstance(self.replica_class, str):
            return _resolve_class(self.replica_class)
        return self.replica_class

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on an unusable spec."""
        if not self.clusters:
            raise ConfigurationError(f"scenario {self.name!r} has no clusters")
        if self.workload_model not in ("closed", "open"):
            raise ConfigurationError(
                f"scenario {self.name!r}: workload_model must be 'closed' or "
                f"'open', not {self.workload_model!r}"
            )
        if self.population is not None:
            self.population.validate()
        if self.shards < 1:
            raise ConfigurationError(f"scenario {self.name!r}: shards must be >= 1, not {self.shards}")
        if self.rtt_trace is not None:
            self.rtt_trace.validate()
        if self.congestion is not None:
            self.congestion.validate()
        cluster_count = len(self.clusters)
        for event in self.schedule:
            clusters: Sequence[int] = ()
            if isinstance(event, (JoinEvent, ByzantineEvent)):
                clusters = (event.cluster,)
            elif isinstance(event, (GrayReplicaEvent, ClockSkewEvent)):
                if event.scope == "replica":
                    if not event.replica:
                        raise ConfigurationError(
                            f"{type(event).__name__} with scope='replica' needs a replica id"
                        )
                elif event.scope == "leader":
                    if event.cluster is None:
                        raise ConfigurationError(f"{type(event).__name__} scope='leader' needs a cluster")
                    clusters = (event.cluster,)
                else:
                    raise ConfigurationError(f"unknown {type(event).__name__} scope {event.scope!r}")
                if isinstance(event, GrayReplicaEvent) and event.factor <= 0:
                    raise ConfigurationError("GrayReplicaEvent factor must be positive")
                if isinstance(event, ClockSkewEvent) and event.rate <= 0:
                    raise ConfigurationError("ClockSkewEvent rate must be positive")
                if event.duration is not None and event.duration <= 0:
                    raise ConfigurationError(
                        f"{type(event).__name__} duration must be positive (or None)"
                    )
            elif isinstance(event, FlappingPartitionEvent):
                clusters = (event.cluster_a, event.cluster_b)
                if event.period <= 0:
                    raise ConfigurationError("FlappingPartitionEvent period must be positive")
                if not 0.0 < event.duty <= 1.0:
                    raise ConfigurationError("FlappingPartitionEvent duty must be in (0, 1]")
                if event.cycles < 1:
                    raise ConfigurationError("FlappingPartitionEvent needs at least one cycle")
                if event.direction not in ("both", "a_to_b", "b_to_a"):
                    raise ConfigurationError(
                        f"unknown FlappingPartitionEvent direction {event.direction!r}"
                    )
            elif isinstance(event, RegionOutageEvent):
                if event.duration <= 0:
                    raise ConfigurationError("RegionOutageEvent duration must be positive")
            elif isinstance(event, CrashEvent):
                if event.scope == "replica":
                    if not event.replica:
                        raise ConfigurationError("CrashEvent with scope='replica' needs a replica id")
                elif event.scope in ("leader", "non_leaders"):
                    if event.cluster is None:
                        raise ConfigurationError(f"CrashEvent scope={event.scope!r} needs a cluster")
                    clusters = (event.cluster,)
                else:
                    raise ConfigurationError(f"unknown CrashEvent scope {event.scope!r}")
            elif isinstance(event, PartitionEvent):
                clusters = (event.cluster_a, event.cluster_b)
            elif isinstance(event, ChurnLoop):
                clusters = event.clusters
                if event.period <= 0:
                    raise ConfigurationError("ChurnLoop period must be positive")
                if not event.clusters:
                    raise ConfigurationError("ChurnLoop needs at least one target cluster")
            for cluster_id in clusters:
                if not 0 <= cluster_id < cluster_count:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: event {event!r} targets cluster "
                        f"{cluster_id}, but only {cluster_count} clusters exist"
                    )

    # ------------------------------------------------------------------ #
    # Compilation and execution
    # ------------------------------------------------------------------ #
    def build(self, local_shard: Optional[int] = None):
        """Compile this spec into a runnable :class:`Deployment`.

        ``local_shard`` restricts construction to one shard's processes
        (multiprocess shard workers rebuild the same spec per worker).
        """
        from repro.harness.deployment import Deployment, DeploymentSpec

        self.validate()
        deployment_spec = DeploymentSpec(
            clusters=[tuple(c) for c in self.clusters],
            config=self.compiled_config(),
            seed=self.seed,
            client_threads=self.client_threads,
            workload=replace(self.workload),
            latency=replace(self.latency),
            network=replace(self.network),
            clients_per_cluster=self.clients_per_cluster,
            workload_model=self.workload_model,
            population=None if self.population is None else self.population.copy(),
            replica_class=self.compiled_replica_class(),
            region_overrides=dict(self.region_overrides),
            reconfig_client_region=self.churn_client_region,
            shards=self.shards,
            strict_streams=self.strict_streams,
            rtt_trace=None if self.rtt_trace is None else self.rtt_trace.copy(),
            congestion=None if self.congestion is None else self.congestion.copy(),
        )
        deployment = Deployment(deployment_spec, local_shard=local_shard)
        for region_a, region_b, rtt_ms in self.rtt_overrides:
            deployment.latency_model.set_rtt(region_a, region_b, rtt_ms)
        apply_schedule(deployment, self)
        return deployment

    def run(self):
        """Build and execute this scenario, returning a typed result row."""
        from repro.harness.runner import run_scenario

        return run_scenario(self)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable description of this spec."""
        replica_class: Optional[str]
        if self.replica_class is None:
            replica_class = None
        elif isinstance(self.replica_class, str):
            replica_class = self.replica_class
        else:
            replica_class = _class_path(self.replica_class)
        return {
            "name": self.name,
            "clusters": [[size, region] for size, region in self.clusters],
            "engine": self.engine,
            "preset": self.preset,
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "client_threads": self.client_threads,
            "clients_per_cluster": self.clients_per_cluster,
            "workload": asdict(self.workload),
            "workload_model": self.workload_model,
            "population": None if self.population is None else population_to_dict(self.population),
            "latency": asdict(self.latency),
            "network": asdict(self.network),
            "config": None if self.config is None else _config_to_dict(self.config),
            "config_overrides": dict(self.config_overrides),
            "region_overrides": dict(self.region_overrides),
            "rtt_overrides": [[a, b, rtt] for a, b, rtt in self.rtt_overrides],
            "churn_client_region": self.churn_client_region,
            "schedule": [event_to_dict(event) for event in self.schedule],
            "timeseries_bucket": self.timeseries_bucket,
            "collect_stages": self.collect_stages,
            "labels": dict(self.labels),
            "replica_class": replica_class,
            "shards": self.shards,
            "shard_parallel": self.shard_parallel,
            "strict_streams": self.strict_streams,
            "rtt_trace": None if self.rtt_trace is None else self.rtt_trace.to_dict(),
            "congestion": None if self.congestion is None else self.congestion.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(payload)
        data["clusters"] = [(int(size), str(region)) for size, region in data.get("clusters", [])]
        data["workload"] = YcsbConfig(**data.get("workload", {}))
        population = data.get("population")
        data["population"] = None if population is None else population_from_dict(population)
        data["latency"] = LatencyParameters(**data.get("latency", {}))
        data["network"] = NetworkConfig(**data.get("network", {}))
        config = data.get("config")
        data["config"] = None if config is None else _config_from_dict(config)
        data["rtt_overrides"] = [(a, b, float(rtt)) for a, b, rtt in data.get("rtt_overrides", [])]
        data["schedule"] = [event_from_dict(event) for event in data.get("schedule", [])]
        rtt_trace = data.get("rtt_trace")
        data["rtt_trace"] = None if rtt_trace is None else RttTrace.from_dict(rtt_trace)
        congestion = data.get("congestion")
        data["congestion"] = None if congestion is None else CongestionConfig.from_dict(congestion)
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------- #
# Schedule compilation
# ---------------------------------------------------------------------- #
def apply_schedule(deployment, spec: ScenarioSpec) -> None:
    """Install every schedule event of ``spec`` on a built deployment.

    Events are applied in list order, which keeps default joiner naming and
    RNG consumption identical to the equivalent imperative call sequence.
    """
    from repro.harness.faults import FaultInjector

    injector = FaultInjector(deployment)
    for event in spec.schedule:
        if isinstance(event, JoinEvent):
            deployment.add_joiner(
                event.cluster, at_time=event.at, replica_id=event.replica_id, region=event.region
            )
        elif isinstance(event, LeaveEvent):
            deployment.schedule_leave(event.replica, at_time=event.at)
        elif isinstance(event, CrashEvent):
            if event.scope == "replica":
                injector.crash_replica(event.replica, at_time=event.at)
            elif event.scope == "leader":
                injector.crash_leader(event.cluster, at_time=event.at)
            else:
                injector.crash_non_leaders(event.cluster, at_time=event.at, count=event.count)
        elif isinstance(event, ByzantineEvent):
            if event.behavior != "silent_inter":
                raise ConfigurationError(f"unknown Byzantine behavior {event.behavior!r}")
            injector.silence_leader_inter_broadcast(event.cluster, at_time=event.at)
        elif isinstance(event, PartitionEvent):
            injector.partition_clusters(
                event.cluster_a, event.cluster_b, at_time=event.at, duration=event.duration
            )
        elif isinstance(event, GrayReplicaEvent):
            if event.scope == "leader":
                injector.degrade_leader(
                    event.cluster, at_time=event.at, factor=event.factor, duration=event.duration
                )
            else:
                injector.degrade_replica(
                    event.replica, at_time=event.at, factor=event.factor, duration=event.duration
                )
        elif isinstance(event, ClockSkewEvent):
            if event.scope == "leader":
                injector.skew_leader_clock(
                    event.cluster, at_time=event.at, rate=event.rate, duration=event.duration
                )
            else:
                injector.skew_clock(
                    event.replica, at_time=event.at, rate=event.rate, duration=event.duration
                )
        elif isinstance(event, FlappingPartitionEvent):
            injector.flapping_partition(
                event.cluster_a,
                event.cluster_b,
                at_time=event.at,
                period=event.period,
                duty=event.duty,
                cycles=event.cycles,
                direction=event.direction,
            )
        elif isinstance(event, RegionOutageEvent):
            injector.region_outage(event.region, at_time=event.at, duration=event.duration)
        elif isinstance(event, ChurnLoop):
            stop = event.stop if event.stop is not None else max(spec.duration - 1.0, event.start)
            at = event.start
            index = 0
            while at < stop:
                cluster = event.clusters[index % len(event.clusters)]
                deployment.add_joiner(
                    cluster,
                    at_time=at,
                    replica_id=f"{event.prefix}{index}",
                    region=event.region,
                )
                index += 1
                at += event.period
        else:  # pragma: no cover - the Union above is exhaustive
            raise ConfigurationError(f"unknown schedule event {event!r}")


__all__ = [
    "ByzantineEvent",
    "ChurnLoop",
    "ClockSkewEvent",
    "CrashEvent",
    "DEFAULT_REGION",
    "EVENT_TYPES",
    "FlappingPartitionEvent",
    "GrayReplicaEvent",
    "JoinEvent",
    "LeaveEvent",
    "PartitionEvent",
    "RegionOutageEvent",
    "Preset",
    "ScenarioEvent",
    "ScenarioSpec",
    "apply_config_overrides",
    "apply_schedule",
    "event_from_dict",
    "event_to_dict",
    "register_preset",
    "resolve_preset",
]
