"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brd import canonical_recs
from repro.core.config import failure_threshold
from repro.core.statemachine import KeyValueStore
from repro.core.types import Transaction, join_request, leave_request, merge_reconfigs
from repro.net.crypto import Certificate, KeyRegistry
from repro.sim.events import EventQueue
from repro.sim.rng import SeededRng
from repro.workload.zipf import ZipfianGenerator

requests = st.builds(
    lambda kind, pid, cid: join_request(pid, cid) if kind else leave_request(pid, cid),
    st.booleans(),
    st.text(alphabet="abcdef", min_size=1, max_size=4),
    st.integers(min_value=0, max_value=3),
)


class TestThresholdProperties:
    @given(st.integers(min_value=1, max_value=500))
    def test_failure_threshold_safety_bound(self, size):
        """f < size/3 always holds, and 2f+1 <= size (quorums exist)."""
        f = failure_threshold(size)
        assert 3 * f < size or size < 4
        assert 2 * f + 1 <= size

    @given(st.integers(min_value=1, max_value=160))
    def test_two_quorums_intersect_in_a_correct_replica(self, f):
        """For the paper's canonical cluster size n = 3f+1, two 2f+1 quorums
        overlap in at least f+1 replicas, hence in a correct one."""
        size = 3 * f + 1
        assert failure_threshold(size) == f
        quorum = 2 * f + 1
        assert 2 * quorum - size >= f + 1


class TestReconfigSetProperties:
    @given(st.lists(st.lists(requests, max_size=5), max_size=5))
    def test_merge_is_order_insensitive_and_deduplicating(self, groups):
        merged = merge_reconfigs(groups)
        assert list(merged) == sorted(set(merged))
        reversed_merge = merge_reconfigs(list(reversed(groups)))
        assert merged == reversed_merge

    @given(st.lists(requests, max_size=10))
    def test_canonical_recs_idempotent(self, items):
        once = canonical_recs(items)
        assert canonical_recs(once) == once

    @given(st.lists(requests, max_size=8), st.lists(requests, max_size=8))
    def test_merge_contains_every_input(self, a, b):
        merged = set(merge_reconfigs([a, b]))
        assert set(a) <= merged and set(b) <= merged


class TestCertificateProperties:
    @given(st.sets(st.sampled_from([f"p{i}" for i in range(12)]), max_size=12),
           st.integers(min_value=1, max_value=9))
    def test_certificate_valid_iff_threshold_met(self, signers, threshold):
        registry = KeyRegistry(seed=1)
        members = [f"p{i}" for i in range(12)]
        for member in members:
            registry.register(member)
        cert = Certificate("digest")
        for signer in signers:
            cert.add(registry.sign(signer, "digest"))
        assert registry.certificate_valid(cert, members, threshold) == (len(signers) >= threshold)


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=60))
    def test_events_pop_in_nondecreasing_time_order(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, lambda: None)
        popped = []
        while (event := queue.pop()) is not None:
            popped.append(event.time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)


class TestWorkloadProperties:
    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=300), st.floats(min_value=0.0, max_value=1.5))
    def test_zipf_draws_stay_in_range(self, item_count, theta):
        zipf = ZipfianGenerator(item_count, theta, SeededRng(9))
        for _ in range(50):
            assert 0 <= zipf.next() < item_count

    @given(st.integers(min_value=0, max_value=2**31))
    def test_rng_streams_reproducible(self, seed):
        a = SeededRng(seed, "x")
        b = SeededRng(seed, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


class TestStateMachineProperties:
    @given(st.lists(st.tuples(st.sampled_from("abcde"), st.text(max_size=4)), max_size=40))
    def test_replay_determinism(self, writes):
        """Applying the same transaction sequence yields the same state."""
        first, second = KeyValueStore(), KeyValueStore()
        for index, (key, value) in enumerate(writes):
            txn = Transaction(
                txn_id=f"t{index}", client_id="c", origin_replica="r",
                op="write", key=key, value=value,
            )
            first.apply(txn)
            second.apply(txn)
        assert first.data == second.data
        assert first.fingerprint() == second.fingerprint()
