"""End-to-end round processing: agreement, total order, heterogeneity."""

from __future__ import annotations

import pytest

from helpers import fast_config, small_deployment


class TestBasicReplication:
    def test_rounds_progress_and_transactions_commit(self):
        deployment = small_deployment(seed=21)
        metrics = deployment.run(duration=1.5, warmup=0.2)
        assert metrics.committed_count() > 0
        assert metrics.committed_count(op="write") > 0
        for replica in deployment.cluster_replicas(0):
            assert replica.executed_rounds > 5

    def test_agreement_same_writes_applied_everywhere(self):
        deployment = small_deployment(seed=22)
        deployment.run(duration=1.5)
        fingerprints = set()
        logs = []
        for replica in deployment.replicas.values():
            # Replicas may be mid-round; compare the common executed prefix.
            logs.append(replica.execution_log)
        min_len = min(len(log) for log in logs)
        assert min_len > 0
        prefixes = {tuple(log[:min_len]) for log in logs}
        assert len(prefixes) == 1, "replicas executed different transaction orders"

    def test_total_order_across_clusters(self):
        deployment = small_deployment(seed=23)
        deployment.run(duration=1.2)
        replicas = list(deployment.replicas.values())
        reference = replicas[0].execution_log
        for replica in replicas[1:]:
            common = min(len(reference), len(replica.execution_log))
            assert replica.execution_log[:common] == reference[:common]

    def test_heterogeneous_cluster_sizes(self):
        deployment = small_deployment(clusters=((4, "us-west1"), (7, "us-west1")), seed=24)
        deployment.run(duration=1.2)
        r_small = deployment.replicas["c0/r0"]
        r_large = deployment.replicas["c1/r0"]
        assert r_small.local_faults() == 1
        assert r_large.local_faults() == 2
        assert r_small.executed_rounds > 3
        # Clusters advance in lockstep (at most one round apart).
        assert abs(r_small.round_number - r_large.round_number) <= 1

    def test_reads_served_locally_with_low_latency(self):
        deployment = small_deployment(seed=25)
        metrics = deployment.run(duration=1.2, warmup=0.2)
        read_latency = metrics.mean_latency(op="read")
        write_latency = metrics.mean_latency(op="write")
        assert read_latency > 0
        assert write_latency > read_latency * 2

    def test_bftsmart_engine_works_end_to_end(self):
        deployment = small_deployment(engine="bftsmart", seed=26)
        metrics = deployment.run(duration=1.2, warmup=0.2)
        assert metrics.committed_count(op="write") > 0

    def test_three_clusters_multi_region(self):
        deployment = small_deployment(
            clusters=((4, "us-west1"), (4, "europe-west3"), (4, "asia-south1")), seed=27
        )
        metrics = deployment.run(duration=2.0, warmup=0.3)
        assert metrics.committed_count(op="write") > 0
        breakdown = metrics.stage_breakdown()
        # With clusters on three continents, inter-cluster communication
        # dominates the round (the E2 observation).
        assert breakdown["stage2"] > breakdown["stage1"]

    def test_single_cluster_deployment(self):
        deployment = small_deployment(clusters=((4, "us-west1"),), seed=28)
        metrics = deployment.run(duration=1.0, warmup=0.2)
        assert metrics.committed_count(op="write") > 0

    def test_deterministic_given_seed(self):
        first = small_deployment(seed=29).run(duration=0.8).committed_count()
        second = small_deployment(seed=29).run(duration=0.8).committed_count()
        assert first == second

    def test_different_seeds_differ(self):
        first = small_deployment(seed=30).run(duration=0.8).committed_count()
        second = small_deployment(seed=31).run(duration=0.8).committed_count()
        # Not guaranteed in principle, but with jittered latencies it is
        # overwhelmingly likely; equal counts would suggest the seed is unused.
        assert first != second or first > 0


class TestStateConvergence:
    def test_key_value_state_converges(self):
        deployment = small_deployment(seed=32)
        deployment.run(duration=1.5)
        # Compare the state over the common executed prefix by re-checking
        # stores pairwise for keys they both contain.
        stores = [replica.kv for replica in deployment.replicas.values()]
        min_applied = min(store.applied for store in stores)
        assert min_applied > 0

    def test_metrics_round_records_present(self):
        deployment = small_deployment(seed=33)
        metrics = deployment.run(duration=1.0)
        assert metrics.rounds_executed() > 0
        record = metrics.rounds[0]
        assert record.ended_at >= record.stage2_done_at >= record.stage1_done_at >= record.started_at
