"""Tests for the deployment harness, experiment runners, and baselines."""

from __future__ import annotations

import pytest

from helpers import fast_config, small_deployment
from repro.analysis.complexity import complexity_table, format_table, messages_per_decision, protocol
from repro.baselines.geobft import build_geobft_deployment, geobft_config
from repro.baselines.pbft_global import build_global_pbft_deployment
from repro.baselines.single_workflow import single_workflow_config
from repro.errors import ConfigurationError
from repro.harness import experiments
from repro.harness.deployment import DeploymentSpec, Deployment, build_deployment


class TestDeployment:
    def test_build_registers_all_replicas_and_clients(self):
        deployment = small_deployment(seed=81)
        assert len(deployment.replicas) == 8
        assert len(deployment.clients) == 2
        assert deployment.system_config.total_replicas() == 8

    def test_one_reporter_per_cluster(self):
        deployment = small_deployment(seed=82)
        reporters = [r for r in deployment.replicas.values() if r.is_reporter]
        assert len(reporters) == 2
        assert {r.cluster_id for r in reporters} == {0, 1}

    def test_unknown_replica_lookup_raises(self):
        deployment = small_deployment(seed=83)
        with pytest.raises(ConfigurationError):
            deployment.replica("ghost")

    def test_region_overrides_apply(self):
        deployment = build_deployment(
            [(4, "us-west1")],
            seed=84,
            config=fast_config(),
            region_overrides={"c0/r3": "asia-south1"},
        )
        assert deployment.latency_model.region_of("c0/r3") == "asia-south1"
        assert deployment.latency_model.region_of("c0/r0") == "us-west1"

    def test_run_sets_measurement_window(self):
        deployment = small_deployment(seed=85)
        metrics = deployment.run(duration=1.0, warmup=0.4)
        assert metrics.window[0] == 0.4
        assert metrics.window[1] == pytest.approx(1.0, abs=0.2)

    def test_leader_of_and_active_view(self):
        deployment = small_deployment(seed=86)
        deployment.run(duration=0.5)
        leader = deployment.leader_of(0)
        assert leader.process_id in deployment.active_view(0)


class TestExperimentRunners:
    def test_table1_rows(self):
        rows = experiments.run_table1(z=4, n=24)
        names = [row["protocol"] for row in rows]
        assert names == ["Ava-HotStuff", "Ava-BftSmart", "GeoBFT", "Steward", "PBFT", "Zyzzyva"]
        ava = rows[0]
        assert ava["decentralized"] is True
        assert ava["decisions"] == 4

    def test_table2_matches_paper(self):
        rows = experiments.run_table2()
        by_region = {row["region"]: row for row in rows}
        assert by_region["US"]["Asia"] == 214.0
        assert by_region["EU"]["Asia"] == 134.0
        assert by_region["US"]["US"] == 0.0

    def test_cluster_sweep_runs_tiny(self):
        rows = experiments.run_cluster_sweep(
            engines=("hotstuff",),
            cluster_counts=(2,),
            total_nodes=8,
            duration=0.6,
            client_threads=4,
        )
        assert len(rows) == 1
        assert rows[0]["throughput"] > 0

    def test_heterogeneity_setups_shapes(self):
        setups = experiments.heterogeneity_setups(scale=1)
        assert set(setups) == {"setup1", "setup2", "setup3"}
        specs2, overrides2 = setups["setup2"]
        assert [size for size, _ in specs2] == [9, 5]
        assert overrides2 == {}
        specs1, overrides1 = setups["setup1"]
        assert len(overrides1) == 2  # two of C2's members sit in Asia

    def test_e4_scenario_validation(self):
        with pytest.raises(ValueError):
            experiments.run_e4("meteor-strike", duration=0.5)

    def test_split_nodes_even(self):
        assert experiments._split_nodes(96, 4) == [24, 24, 24, 24]
        assert experiments._split_nodes(10, 3) == [4, 3, 3]
        assert sum(experiments._split_nodes(96, 12)) == 96

    def test_print_rows_smoke(self, capsys):
        experiments.print_rows([{"a": 1, "b": 2.5}], title="demo")
        output = capsys.readouterr().out
        assert "demo" in output and "2.5" in output


class TestComplexityModel:
    def test_hotstuff_local_is_linear_in_n(self):
        ava = protocol("Ava-HotStuff")
        assert ava.local(4, 10, 3) * 2 == ava.local(4, 20, 6)

    def test_bftsmart_local_is_quadratic_in_n(self):
        ava = protocol("Ava-BftSmart")
        assert ava.local(4, 20, 6) == 4 * ava.local(4, 10, 3)

    def test_pbft_has_no_parallel_decisions(self):
        assert protocol("PBFT").decisions(8) == 1
        assert protocol("Ava-HotStuff").decisions(8) == 8

    def test_clustered_beats_global_pbft_per_decision(self):
        z, n = 8, 12
        clustered = messages_per_decision(protocol("Ava-HotStuff"), z, n)
        global_pbft = messages_per_decision(protocol("PBFT"), z, n)
        assert clustered < global_pbft

    def test_format_table_contains_all_protocols(self):
        text = format_table(complexity_table(4, 16))
        for name in ("Ava-HotStuff", "GeoBFT", "Zyzzyva"):
            assert name in text

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            protocol("Tendermint")


class TestBaselines:
    def test_geobft_config_properties(self):
        config = geobft_config()
        assert config.engine == "bftsmart"
        assert config.pipeline_local_ordering is True
        assert config.parallel_reconfig is False

    def test_geobft_deployment_commits(self):
        deployment = build_geobft_deployment(
            [(4, "us-west1"), (4, "us-west1")], seed=87, client_threads=4, config=fast_config()
        )
        metrics = deployment.run(duration=1.2, warmup=0.2)
        assert metrics.committed_count(op="write") > 0

    def test_global_pbft_spans_regions(self):
        deployment = build_global_pbft_deployment(
            6, regions=["us-west1", "europe-west3", "asia-south1"], seed=88,
            client_threads=4, config=fast_config("bftsmart"),
        )
        regions = {deployment.latency_model.region_of(f"c0/r{i}") for i in range(6)}
        assert regions == {"us-west1", "europe-west3", "asia-south1"}
        metrics = deployment.run(duration=2.5, warmup=0.5)
        assert metrics.committed_count() > 0

    def test_single_workflow_config(self):
        config = single_workflow_config()
        assert config.parallel_reconfig is False
