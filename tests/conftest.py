"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import HamavaConfig
from repro.harness.deployment import Deployment, DeploymentSpec
from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.simulator import Simulator


def fast_config(engine: str = "hotstuff", **overrides) -> HamavaConfig:
    """A Hamava configuration with short fault-detection timeouts for tests."""
    config = HamavaConfig().with_engine(engine).with_timeouts(
        remote_timeout=2.0, instance_timeout=2.0, brd_timeout=2.0
    )
    config.batch_timeout = 0.01
    config.retry_timeout = 2.0
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def small_deployment(
    clusters=((4, "us-west1"), (4, "us-west1")),
    engine: str = "hotstuff",
    seed: int = 11,
    client_threads: int = 4,
    config: HamavaConfig | None = None,
    **spec_kwargs,
) -> Deployment:
    """Build a small two-cluster deployment suitable for integration tests."""
    spec = DeploymentSpec(
        clusters=list(clusters),
        config=config or fast_config(engine),
        seed=seed,
        client_threads=client_threads,
        **spec_kwargs,
    )
    return Deployment(spec)


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def network(simulator) -> Network:
    """A network over the fixture simulator with CPU modelling disabled."""
    registry = KeyRegistry(seed=42)
    latency = LatencyModel(simulator.rng)
    return Network(simulator, latency, registry, NetworkConfig(cpu_model=False))


@pytest.fixture
def registry() -> KeyRegistry:
    """A standalone key registry."""
    return KeyRegistry(seed=7)
