"""Shared fixtures for the test suite (helpers live in ``helpers.py``)."""

from __future__ import annotations

import pytest

from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.simulator import Simulator


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def network(simulator) -> Network:
    """A network over the fixture simulator with CPU modelling disabled."""
    registry = KeyRegistry(seed=42)
    latency = LatencyModel(simulator.rng)
    return Network(simulator, latency, registry, NetworkConfig(cpu_model=False))


@pytest.fixture
def registry() -> KeyRegistry:
    """A standalone key registry."""
    return KeyRegistry(seed=7)
