"""Tests for the local ordering engines (HotStuff-like and BFT-SMaRt-like)."""

from __future__ import annotations

import pytest

from repro.consensus.bftsmart import BftSmartEngine
from repro.consensus.hotstuff import HotStuffEngine
from repro.consensus.hotstuff_chained import ChainedHotStuffEngine
from repro.consensus.interface import ConsensusConfig, commit_digest
from repro.consensus.leader_election import ElectionComplaint, LeaderElection
from repro.consensus.registry import ENGINES, make_engine
from repro.errors import ConfigurationError
from repro.net.crypto import KeyRegistry
from tests import helpers
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class EngineHost(Process):
    """A process hosting one consensus engine instance."""

    def __init__(self, process_id, simulator, network, members, engine_cls, timeout=1.0):
        super().__init__(process_id, simulator)
        self.members = members
        self.decisions = []
        self.complaints = []
        network.register(self, "us-west1")
        faults = (len(members) - 1) // 3
        self.engine = engine_cls(
            process_id,
            0,
            helpers.members_fn(members),
            lambda: faults,
            network,
            simulator,
            ConsensusConfig(instance_timeout=timeout),
            on_deliver=self.decisions.append,
            on_complain=self.complaints.append,
            fetch_value=lambda seq: [f"fallback-{seq}"],
        )

    def on_message(self, sender, envelope):
        self.engine.on_message(sender, envelope)


def build_cluster(engine_cls, size=4, seed=3, timeout=1.0):
    simulator = Simulator(seed=seed)
    registry = KeyRegistry(seed=seed)
    network = Network(
        simulator, LatencyModel(simulator.rng), registry, NetworkConfig(cpu_model=False)
    )
    members = [f"p{i}" for i in range(size)]
    hosts = [EngineHost(m, simulator, network, members, engine_cls, timeout) for m in members]
    return simulator, network, hosts


@pytest.mark.parametrize("engine_cls", [HotStuffEngine, ChainedHotStuffEngine, BftSmartEngine])
class TestEngines:
    def test_all_replicas_deliver_leaders_proposal(self, engine_cls):
        simulator, _, hosts = build_cluster(engine_cls)
        value = ["tx1", "tx2", "tx3"]
        hosts[0].engine.propose(1, value)
        simulator.run(until=5.0)
        for host in hosts:
            assert len(host.decisions) == 1
            assert host.decisions[0].value == value
            assert host.decisions[0].sequence == 1

    def test_certificate_has_quorum_of_valid_commit_signatures(self, engine_cls):
        simulator, network, hosts = build_cluster(engine_cls)
        value = ["tx"]
        hosts[0].engine.propose(1, value)
        simulator.run(until=5.0)
        decision = hosts[1].decisions[0]
        members = [h.process_id for h in hosts]
        assert network.registry.certificate_valid(
            decision.certificate, members, threshold=3, digest=commit_digest(0, 1, value)
        )

    def test_non_leader_proposal_is_ignored(self, engine_cls):
        simulator, _, hosts = build_cluster(engine_cls)
        hosts[2].engine.propose(1, ["rogue"])
        simulator.run(until=3.0)
        assert all(not host.decisions for host in hosts)

    def test_consecutive_sequences_deliver_independently(self, engine_cls):
        simulator, _, hosts = build_cluster(engine_cls)
        hosts[0].engine.propose(1, ["a"])
        hosts[0].engine.propose(2, ["b"])
        simulator.run(until=5.0)
        for host in hosts:
            values = {d.sequence: d.value for d in host.decisions}
            assert values == {1: ["a"], 2: ["b"]}

    def test_timeout_raises_complaint_when_leader_silent(self, engine_cls):
        simulator, _, hosts = build_cluster(engine_cls, timeout=0.5)
        for host in hosts[1:]:
            host.engine.start_instance(1)
        simulator.run(until=2.0)
        assert all(host.complaints for host in hosts[1:])

    def test_leader_change_reproposes_and_delivers(self, engine_cls):
        simulator, _, hosts = build_cluster(engine_cls, timeout=0.5)
        # The initial leader (p0) is crashed before proposing.
        hosts[0].crash()
        for host in hosts[1:]:
            host.engine.start_instance(1)

        def change_leader():
            for host in hosts[1:]:
                host.engine.new_leader("p1", 1)

        simulator.schedule(1.0, change_leader)
        simulator.run(until=6.0)
        for host in hosts[1:]:
            assert len(host.decisions) == 1
            assert host.decisions[0].value == ["fallback-1"]

    def test_decisions_identical_across_replicas(self, engine_cls):
        simulator, _, hosts = build_cluster(engine_cls, size=7)
        hosts[0].engine.propose(1, ["x", "y"])
        simulator.run(until=5.0)
        digests = {repr(h.decisions[0].value) for h in hosts}
        assert len(digests) == 1


class TestRegistry:
    def test_known_engines(self):
        assert set(ENGINES) >= {"hotstuff", "hotstuff_chained", "bftsmart"}

    def test_make_engine_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_engine("raft")


class TestLeaderElection:
    def _cluster(self, size=4, seed=5):
        simulator = Simulator(seed=seed)
        registry = KeyRegistry(seed=seed)
        network = Network(
            simulator, LatencyModel(simulator.rng), registry, NetworkConfig(cpu_model=False)
        )
        members = [f"p{i}" for i in range(size)]
        elected = {m: [] for m in members}

        class Host(Process):
            def __init__(self, pid):
                super().__init__(pid, simulator)
                network.register(self, "us-west1")
                self.le = LeaderElection(
                    pid, 0, helpers.members_fn(members), lambda: (size - 1) // 3, network,
                    on_new_leader=lambda leader, ts, p=pid: elected[p].append((leader, ts)),
                )

            def on_message(self, sender, envelope):
                self.le.on_message(sender, envelope)

        hosts = [Host(m) for m in members]
        return simulator, hosts, elected

    def test_quorum_of_complaints_rotates_leader_everywhere(self):
        simulator, hosts, elected = self._cluster()
        for host in hosts[1:]:
            host.le.complain()
        simulator.run(until=2.0)
        for host in hosts:
            assert elected[host.process_id], f"{host.process_id} did not elect"
            leader, ts = elected[host.process_id][0]
            assert ts == 1
            assert leader == sorted(h.process_id for h in hosts)[1]

    def test_single_complaint_is_not_enough(self):
        simulator, hosts, elected = self._cluster()
        hosts[1].le.complain()
        simulator.run(until=2.0)
        assert all(not events for events in elected.values())

    def test_amplification_from_f_plus_one(self):
        simulator, hosts, elected = self._cluster(size=4)
        # f = 1, so two explicit complainers are enough: the rest amplify.
        hosts[1].le.complain()
        hosts[2].le.complain()
        simulator.run(until=2.0)
        assert all(elected[h.process_id] for h in hosts)

    def test_next_leader_is_local_and_immediate(self):
        simulator, hosts, elected = self._cluster()
        hosts[0].le.next_leader()
        assert elected["p0"] == [(sorted(h.process_id for h in hosts)[1], 1)]
        assert elected["p1"] == []

    def test_stale_timestamp_complaints_ignored(self):
        simulator, hosts, elected = self._cluster()
        stale = ElectionComplaint(cluster_id=0, ts=5)
        hosts[0].le.abeb.broadcast(stale)
        simulator.run(until=1.0)
        assert all(not events for events in elected.values())
