"""Tests for the declarative scenario API: spec, builder, runner, schedules."""

from __future__ import annotations

import json

import pytest

from helpers import fast_config
from repro.core.replica import MODE_ACTIVE, MODE_LEFT
from repro.errors import ConfigurationError
from repro.harness.builder import DeploymentBuilder, Scenario, normalize_replica_ref
from repro.harness.deployment import build_deployment
from repro.harness.runner import ResultRow, ScenarioRunner, run_scenario
from repro.harness.scenario import (
    ByzantineEvent,
    ChurnLoop,
    CrashEvent,
    JoinEvent,
    LeaveEvent,
    PartitionEvent,
    ScenarioSpec,
    apply_config_overrides,
    event_from_dict,
    event_to_dict,
    resolve_preset,
)
from repro.workload.clients import ReconfigurationClient

#: Timeout/retry overrides matching ``helpers.fast_config`` for short runs.
FAST = dict(remote_timeout=2.0, instance_timeout=2.0, brd_timeout=2.0, retry_timeout=2.0)


def fast_scenario(name: str, seed: int) -> Scenario:
    return Scenario(name).clusters(4, 4).engine("hotstuff").config(**FAST).threads(4).seed(seed)


class TestSerialization:
    def test_spec_round_trips_through_json(self):
        spec = (
            Scenario("rt")
            .clusters((4, "us-west1"), (7, "europe-west3"))
            .engine("bftsmart")
            .preset("geobft")
            .config(**FAST)
            .workload(read_fraction=0.5)
            .place("c1/r0", "asia-south1")
            .rtt("us-west1", "europe-west3", 99.0)
            .join(0, at=1.0, replica_id="n0")
            .leave("r1.6", at=2.0)
            .crash("r0.1", at=2.5)
            .crash_leader(0, at=3.0)
            .byzantine_leader(1, at=3.5)
            .partition(0, 1, at=4.0, duration=0.5)
            .churn(start=5.0, period=0.5, clusters=(0, 1), prefix="c")
            .timeseries(0.5)
            .label(figure="fig5")
            .seeds(3)
            .spec()
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.to_json() == spec.to_json()
        assert restored.schedule == spec.schedule
        assert restored.workload == spec.workload
        assert restored.clusters == spec.clusters

    def test_every_event_kind_round_trips(self):
        events = [
            JoinEvent(cluster=1, at=2.0, replica_id="x", region="eu"),
            LeaveEvent(replica="c0/r1", at=1.0),
            CrashEvent(at=1.5, replica="c0/r2"),
            CrashEvent(at=1.5, cluster=0, scope="leader"),
            CrashEvent(at=1.5, cluster=1, scope="non_leaders", count=2),
            ByzantineEvent(cluster=0, at=3.0),
            PartitionEvent(cluster_a=0, cluster_b=1, at=2.0, duration=1.0),
            ChurnLoop(start=1.0, period=0.5, stop=4.0, clusters=(0, 1), prefix="p"),
        ]
        for event in events:
            payload = json.loads(json.dumps(event_to_dict(event)))
            assert event_from_dict(payload) == event

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            event_from_dict({"kind": "meteor-strike", "at": 1.0})

    def test_spec_with_base_config_round_trips(self):
        spec = ScenarioSpec(name="cfg", clusters=[(4, "us-west1")], config=fast_config())
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.config == spec.config


class TestBuilder:
    def test_fluent_chain_compiles_to_spec(self):
        specs = (
            DeploymentBuilder("e4")
            .clusters(4, 4)
            .engine("hotstuff")
            .crash("r0.1", at=2.0)
            .join(cluster=1, at=3.0)
            .seeds(1, 2, 3)
            .specs()
        )
        assert [spec.seed for spec in specs] == [1, 2, 3]
        assert all(spec.clusters == [(4, "us-west1"), (4, "us-west1")] for spec in specs)
        assert specs[0].schedule == [
            CrashEvent(at=2.0, replica="c0/r1"),
            JoinEvent(cluster=1, at=3.0),
        ]

    def test_latest_of_seed_and_seeds_wins(self):
        assert [s.seed for s in Scenario("x").clusters(4).seeds(1, 2).seed(5).specs()] == [5]
        assert [s.seed for s in Scenario("x").clusters(4).seed(5).seeds(1, 2).specs()] == [1, 2]

    def test_replica_shorthand(self):
        assert normalize_replica_ref("r0.1") == "c0/r1"
        assert normalize_replica_ref("c2/r10") == "c2/r10"
        assert normalize_replica_ref("joiner1") == "joiner1"

    def test_region_applies_to_bare_clusters_only(self):
        spec = (
            Scenario("regions")
            .clusters(4, (7, "asia-south1"))
            .region("europe-west3")
            .clusters(3)
            .spec()
        )
        assert spec.clusters == [(4, "europe-west3"), (7, "asia-south1"), (3, "europe-west3")]

    def test_region_keeps_explicit_region_kwarg(self):
        spec = (
            Scenario("s")
            .clusters(4, region="europe-west3")
            .region("asia-south1")
            .clusters(3)
            .spec()
        )
        assert spec.clusters == [(4, "europe-west3"), (3, "asia-south1")]

    def test_schedule_validation_catches_bad_cluster(self):
        with pytest.raises(ConfigurationError):
            Scenario("bad").clusters(4).join(cluster=5, at=1.0).spec()

    def test_unknown_workload_field_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario("bad").workload(think_time=1.0)

    def test_empty_churn_clusters_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario("bad").clusters(4).churn(start=1.0, period=1.0, clusters=()).spec()


class TestConfigCompilation:
    def test_overrides_reach_consensus_config(self):
        spec = Scenario("cfg").clusters(4).config(remote_timeout=3.0, instance_timeout=4.0).spec()
        config = spec.compiled_config()
        assert config.remote_timeout == 3.0
        assert config.consensus.instance_timeout == 4.0

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_config_overrides(fast_config(), {"quantum_entanglement": True})

    def test_geobft_preset_transforms_config(self):
        spec = Scenario("geo").clusters(4).preset("geobft").spec()
        config = spec.compiled_config()
        assert config.engine == "bftsmart"
        assert config.pipeline_local_ordering is True
        assert config.parallel_reconfig is False

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_preset("paxos-classic")


class TestChurnScheduling:
    """Joins, leaves, and mixed schedules expressed as ScenarioSpec events."""

    def test_join_event_converges_everywhere(self):
        deployment = fast_scenario("join", seed=61).join(0, at=0.6, replica_id="newbie").build()
        deployment.run(duration=4.0)
        joiner = deployment.replicas["newbie"]
        assert joiner.mode == MODE_ACTIVE
        assert "newbie" in deployment.active_view(0), "join missing from active view"
        views = [
            set(replica.view[0])
            for replica in deployment.replicas.values()
            if replica.mode == MODE_ACTIVE
        ]
        assert all("newbie" in view for view in views)

    def test_leave_event_converges_everywhere(self):
        deployment = fast_scenario("leave", seed=65).leave("r1.3", at=0.6).build()
        deployment.run(duration=4.0)
        assert deployment.replicas["c1/r3"].mode == MODE_LEFT
        assert "c1/r3" not in deployment.active_view(1)

    def test_mixed_schedule_converges(self):
        deployment = (
            Scenario("mixed")
            .clusters(7, 7)
            .config(**FAST)
            .threads(4)
            .seed(67)
            .join(0, at=0.6, replica_id="n0")
            .leave("c0/r6", at=0.8)
            .build()
        )
        deployment.run(duration=5.0)
        view = deployment.active_view(0)
        assert "n0" in view
        assert "c0/r6" not in view

    def test_churn_loop_expands_to_periodic_joins(self):
        deployment = (
            fast_scenario("churn", seed=68)
            .duration(4.0)
            .churn(start=0.5, period=1.0, stop=2.6, clusters=(0, 1), prefix="ch")
            .build()
        )
        assert {"ch0", "ch1", "ch2"}.issubset(deployment.replicas)
        metrics = deployment.run(duration=4.0)
        assert len(metrics.reconfigs) > 0

    def test_imperative_shim_behaves_identically(self):
        """The old mutation path and the event schedule produce the same run."""
        imperative = build_deployment(
            [(4, "us-west1"), (4, "us-west1")],
            engine="hotstuff",
            seed=81,
            config=fast_config(),
            client_threads=4,
        )
        imperative.add_joiner(0, at_time=0.6, replica_id="newbie")
        imperative.schedule_leave("c1/r3", at_time=1.0)
        imperative_metrics = imperative.run(duration=4.0)

        declarative = (
            fast_scenario("shim", seed=81)
            .join(0, at=0.6, replica_id="newbie")
            .leave("r1.3", at=1.0)
            .build()
        )
        declarative_metrics = declarative.run(duration=4.0)

        assert declarative_metrics.summary() == imperative_metrics.summary()
        assert declarative.active_view(0) == imperative.active_view(0)
        assert declarative.active_view(1) == imperative.active_view(1)

    def test_crash_and_byzantine_events_schedule(self):
        deployment = (
            fast_scenario("faults", seed=82)
            .crash("r0.3", at=1.0)
            .byzantine_leader(1, at=1.5)
            .build()
        )
        deployment.run(duration=2.0)
        assert deployment.replicas["c0/r3"].crashed
        leader = deployment.replicas["c1/r0"]
        byzantine = [r for r in deployment.replicas.values() if r.byzantine.silent_inter_after]
        assert len(byzantine) == 1


class TestRunner:
    def test_parallel_rows_byte_identical_to_serial(self):
        def grid():
            return [
                fast_scenario("a", seed=1).duration(1.0).seeds(1, 2),
                fast_scenario("b", seed=1).duration(1.0).join(0, at=0.4).seeds(1, 2),
            ]

        serial = ScenarioRunner(workers=1).run(grid())
        parallel = ScenarioRunner(workers=2).run(grid())
        assert [row.to_json() for row in serial] == [row.to_json() for row in parallel]
        assert [(row.scenario, row.seed) for row in serial] == [
            ("a", 1), ("a", 2), ("b", 1), ("b", 2),
        ]

    def test_seeds_argument_overrides_scenario_seeds(self):
        specs = ScenarioRunner().expand(fast_scenario("s", seed=9), seeds=[4, 5])
        assert [spec.seed for spec in specs] == [4, 5]

    def test_one_shot_seeds_iterable_expands_every_scenario(self):
        specs = ScenarioRunner().expand(
            [fast_scenario("a", seed=1), fast_scenario("b", seed=1)], seeds=iter([1, 2])
        )
        assert [(spec.name, spec.seed) for spec in specs] == [
            ("a", 1), ("a", 2), ("b", 1), ("b", 2),
        ]

    def test_serial_run_accepts_non_importable_replica_class(self):
        from repro.core.replica import HamavaReplica

        class LocalReplica(HamavaReplica):
            pass

        rows = (
            fast_scenario("local-cls", seed=3)
            .duration(1.0)
            .replica_class(LocalReplica)
            .run(workers=1)
        )
        assert rows[0].throughput > 0

    def test_rows_persist_and_reload(self, tmp_path):
        rows = ScenarioRunner().run(fast_scenario("persist", seed=3).duration(1.0))
        path = str(tmp_path / "rows.json")
        ScenarioRunner.save(rows, path)
        reloaded = ScenarioRunner.load(path)
        assert [row.to_json() for row in reloaded] == [row.to_json() for row in rows]
        assert isinstance(reloaded[0], ResultRow)

    def test_run_scenario_collects_series_and_stages(self):
        spec = fast_scenario("collect", seed=7).duration(1.2).timeseries(0.5).stages().spec()
        row = run_scenario(spec)
        assert row.series is not None and len(row.series) >= 2
        assert set(row.stages) == {"stage1", "stage2", "stage3"}
        assert row.engine == "hotstuff"
        assert row.throughput > 0


class TestReconfigClientRegion:
    def test_default_region_follows_first_cluster(self):
        deployment = build_deployment(
            [(4, "asia-south1"), (4, "europe-west3")], config=fast_config(), client_threads=4
        )
        client = ReconfigurationClient("churn-client", deployment.simulator)
        deployment.add_reconfig_client(client)
        assert deployment.latency_model.region_of("churn-client") == "asia-south1"

    def test_explicit_region_wins(self):
        deployment = build_deployment(
            [(4, "asia-south1")], config=fast_config(), client_threads=4
        )
        client = ReconfigurationClient("churn-client", deployment.simulator)
        deployment.add_reconfig_client(client, region="europe-west3")
        assert deployment.latency_model.region_of("churn-client") == "europe-west3"

    def test_scenario_churn_region_flows_through(self):
        deployment = (
            Scenario("churn-region")
            .clusters((4, "us-west1"), (4, "europe-west3"))
            .config(**FAST)
            .threads(4)
            .churn_region("europe-west3")
            .build()
        )
        client = ReconfigurationClient("churn-client", deployment.simulator)
        deployment.add_reconfig_client(client)
        assert deployment.latency_model.region_of("churn-client") == "europe-west3"
