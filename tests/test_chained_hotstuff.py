"""Fault-path tests for the chained (pipelined) HotStuff engine.

The happy path is covered by the engine-parametrized suite in
``test_consensus_engines.py``; these tests pin the chained-specific
machinery — the decide piggyback and its grace fallback, view changes that
re-anchor the chain on the highest prepared QC, a leader crash between
chained proposals, Byzantine equivocation across chained views, and the
quiet-round BRD proof riding a chained decide.
"""

from __future__ import annotations

from repro.consensus.hotstuff_chained import ChainedHotStuffEngine, ChProposal
from repro.harness.runner import run_scenario
from repro.harness.scenario import ScenarioSpec
from tests.test_consensus_engines import build_cluster


# ---------------------------------------------------------------------- #
# Decide piggyback and the grace fallback
# ---------------------------------------------------------------------- #
class TestDecideAnnouncement:
    def test_decide_rides_the_successor_proposal(self):
        simulator, network, hosts = build_cluster(ChainedHotStuffEngine)
        hosts[0].engine.propose(1, ["a"])
        # The leader decides seq 1 at ~2.6 ms; the successor proposal lands
        # well inside the 50 ms grace window, so the chain carries seq 1's
        # decide.  Only the chain's tail (seq 2, no successor) falls back
        # to one explicit grace-triggered ChDecide broadcast.
        simulator.schedule(0.02, lambda: hosts[0].engine.propose(2, ["b"]))
        simulator.run(until=1.0)
        for host in hosts:
            assert {d.sequence: d.value for d in host.decisions} == {1: ["a"], 2: ["b"]}
        assert network.stats.by_type["ChDecide"] == 4  # the tail only, n=4
        assert network.stats.by_type["ChProposal"] == 8  # two broadcasts
        # Followers learned seq 1 from the proposal at ~20 ms, far inside
        # the 50 ms grace — proof the announcement rode the chain.
        for host in hosts[1:]:
            decided_at = {d.sequence: d.decided_at for d in host.decisions}
            assert decided_at[1] < 0.05

    def test_grace_fallback_broadcasts_an_explicit_decide(self):
        simulator, network, hosts = build_cluster(ChainedHotStuffEngine)
        hosts[0].engine.propose(1, ["solo"])
        simulator.run(until=1.0)
        for host in hosts:
            assert [d.value for d in host.decisions] == [["solo"]]
        # No successor proposal ever arrived: the grace timer must have
        # announced the decision explicitly, exactly once.
        assert network.stats.by_type["ChDecide"] == 4  # one broadcast, n=4
        leader_decided = hosts[0].decisions[0].decided_at
        for host in hosts[1:]:
            lag = host.decisions[0].decided_at - leader_decided
            assert lag >= 0.05, "followers must not learn before the grace fires"
            assert lag < 0.1


# ---------------------------------------------------------------------- #
# View change mid-chain: re-anchor on the highest prepared QC
# ---------------------------------------------------------------------- #
class TestViewChangeMidChain:
    def test_locked_value_survives_the_view_change(self):
        simulator, _, hosts = build_cluster(ChainedHotStuffEngine, timeout=5.0)
        leader = hosts[0].engine
        original_on_vote = leader._on_vote

        def drop_commit_votes(sender, vote):
            if vote.phase == "commit":
                return
            original_on_vote(sender, vote)

        # The leader broadcasts the prepare QC (so every replica locks on
        # ["locked"]) but never assembles the commit quorum: the chain
        # stalls mid-instance with locks installed.
        leader._on_vote = drop_commit_votes
        hosts[0].engine.propose(1, ["locked"])
        simulator.run(until=1.0)
        assert all(not host.decisions for host in hosts)
        for host in hosts[1:]:
            assert host.engine._locked.get(1) is not None

        for host in hosts[1:]:
            host.engine.new_leader("p1", 1)
        simulator.run(until=6.0)
        # The new leader collected the ChNewView reports, adopted the
        # highest verified prepared certificate, and re-proposed the locked
        # value — not its fetch_value fallback.
        for host in hosts[1:]:
            assert [d.value for d in host.decisions] == [["locked"]]

    def test_leader_crash_between_chained_proposals(self):
        simulator, _, hosts = build_cluster(ChainedHotStuffEngine, timeout=5.0)
        leader_host = hosts[0]
        record = leader_host.decisions.append

        def decide_then_crash(decision):
            record(decision)
            leader_host.crash()

        # The leader dies the instant it decides seq 1 locally — after the
        # commit quorum, before the piggyback or grace announcement — the
        # worst spot in the chain: it alone knows the decision.
        leader_host.engine.on_deliver = decide_then_crash
        leader_host.engine.propose(1, ["survives"])
        simulator.run(until=1.0)
        assert [d.value for d in leader_host.decisions] == [["survives"]]
        assert all(not host.decisions for host in hosts[1:])

        for host in hosts[1:]:
            host.engine.new_leader("p1", 1)
        simulator.run(until=6.0)
        # Survivors were locked on the decided value (the commit quorum
        # implies 2f+1 locks), so the new view must re-decide exactly it.
        for host in hosts[1:]:
            assert [d.value for d in host.decisions] == [["survives"]]


# ---------------------------------------------------------------------- #
# Byzantine equivocation across chained views
# ---------------------------------------------------------------------- #
class TestEquivocation:
    def test_equivocating_proposals_never_yield_conflicting_decisions(self):
        simulator, _, hosts = build_cluster(ChainedHotStuffEngine, timeout=1.0)
        rogue = hosts[0].engine

        def equivocate():
            # p0 shows ["beta"] to p2 and p3 before its real proposal
            # reaches anyone: they prepare-vote beta at view 0 (vote-once),
            # p1 prepare-votes the real ["alpha"], and no value can gather
            # a prepare quorum in view 0.
            fake = ChProposal(cluster_id=0, sequence=1, view=rogue.view_ts, value=["beta"])
            rogue.apl.send("p2", fake)
            rogue.apl.send("p3", fake)

        simulator.schedule(0.0, equivocate)
        simulator.schedule(0.005, lambda: rogue.propose(1, ["alpha"]))
        simulator.run(until=1.4)
        assert all(not host.decisions for host in hosts)

        for host in hosts:
            host.engine.new_leader("p1", 1)
        simulator.run(until=8.0)
        # Nobody locked in view 0, so the new leader is free to re-propose;
        # whatever it picks, every replica that decides seq 1 must decide
        # the same value — equivocation must not split the cluster.
        decided = {repr(d.value) for host in hosts for d in host.decisions if d.sequence == 1}
        assert len(decided) == 1
        for host in hosts[1:]:
            assert len(host.decisions) == 1


# ---------------------------------------------------------------------- #
# Quiet-round BRD proofs on the chained decide path (integration)
# ---------------------------------------------------------------------- #
def _chained_spec(**overrides):
    return ScenarioSpec(
        name="chained-quiet",
        clusters=[(4, "us-west1"), (4, "us-west1")],
        engine="hotstuff_chained",
        seed=9,
        duration=1.0,
        warmup=0.2,
        client_threads=4,
        config_overrides=overrides,
    )


class TestQuietRoundsOnTheChain:
    def test_quiet_proof_rides_the_chained_decide(self):
        spec = _chained_spec()
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        assert metrics.committed_count() > 0
        census = deployment.network.stats.by_type
        # Reconfig-free rounds must take BRD's quiet path end to end: the
        # proof rides the chained decide (taken at local-decide time, before
        # the replica's own aggregation flush), so the full aggregate
        # broadcast never fires.
        assert census.get("BrdQuietDeliver", 0) > 0
        assert census.get("BrdAgg", 0) == 0
        assert census.get("BrdEcho", 0) == 0
        assert census.get("ChDecide", 0) > 0

    def test_piggyback_engages_when_brd_is_not_gating(self):
        # Without the parallel reconfig stage nothing time-critical rides
        # the decide, so the chain is allowed to carry it: some decides must
        # travel inside successor proposals instead of explicit broadcasts.
        spec = _chained_spec(parallel_reconfig=False)
        row = run_scenario(spec)
        assert row.error is None
        assert row.operations > 0
        deployment = spec.build()
        deployment.run(duration=spec.duration, warmup=spec.warmup)
        census = deployment.network.stats.by_type
        assert census.get("ChDecide", 0) < census["ChProposal"]
