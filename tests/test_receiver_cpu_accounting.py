"""Receiver-side CPU accounting for deduplicated LocalShares.

LocalShares ship at envelope-only send cost (``LocalShare.verification_cost``
is 1): the certificate verifications are charged in-handler, via
:meth:`Network.charge_verification`, by the one receiver copy that actually
performs them.  These tests pin the charged-CPU delta so a regression in
either direction — duplicates paying full certificate price again, or the
surviving copy paying nothing — fails loudly.
"""

from __future__ import annotations

from repro.consensus.interface import commit_digest
from repro.core.brd import ready_digest
from repro.core.messages import LocalShare
from repro.core.types import OperationsBundle
from repro.harness.scenario import ScenarioSpec
from repro.net.crypto import Certificate, KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Sink(Process):
    def on_message(self, sender, envelope):
        pass


def build_network(cpu_model=True):
    simulator = Simulator(seed=3)
    registry = KeyRegistry(seed=3)
    network = Network(
        simulator, LatencyModel(simulator.rng), registry, NetworkConfig(cpu_model=cpu_model)
    )
    return simulator, network


# ---------------------------------------------------------------------- #
# The charging primitive itself
# ---------------------------------------------------------------------- #
class TestChargeVerification:
    def test_charge_advances_the_receive_watermark_per_signature(self):
        simulator, network = build_network()
        network.register(Sink("a", simulator), "us-west1")
        port = network.pipeline.ports["a"]
        cost = network.config.signature_verify_cost
        network.charge_verification("a", 5)
        assert port.recv_free == 5 * cost
        network.charge_verification("a", 2)
        assert port.recv_free == 7 * cost

    def test_charge_scales_with_the_cpu_factor(self):
        simulator, network = build_network()
        network.register(Sink("a", simulator), "us-west1")
        network.pipeline.ports["a"].cpu_factor = 3.0
        network.charge_verification("a", 4)
        expected = 4 * network.config.signature_verify_cost * 3.0
        assert network.pipeline.ports["a"].recv_free == expected

    def test_idle_cpu_is_charged_from_now_not_from_zero(self):
        simulator, network = build_network()
        network.register(Sink("a", simulator), "us-west1")
        simulator.schedule(2.0, lambda: network.charge_verification("a", 1))
        simulator.run()
        assert network.pipeline.ports["a"].recv_free == (
            2.0 + network.config.signature_verify_cost
        )

    def test_zero_signatures_unknown_port_and_no_cpu_model_are_noops(self):
        simulator, network = build_network()
        network.register(Sink("a", simulator), "us-west1")
        network.charge_verification("a", 0)
        network.charge_verification("ghost", 3)
        assert network.pipeline.ports["a"].recv_free == 0.0
        _, uncosted = build_network(cpu_model=False)
        uncosted.register(Sink("a", Simulator(seed=3)), "us-west1")
        uncosted.charge_verification("a", 10)
        assert uncosted.pipeline.ports["a"].recv_free == 0.0


# ---------------------------------------------------------------------- #
# The LocalShare handler: who pays, and exactly once
# ---------------------------------------------------------------------- #
def _deployment():
    spec = ScenarioSpec(
        name="cpu-accounting", clusters=[(4, "us-west1"), (4, "us-west1")], seed=5
    )
    return spec.build()


def _remote_bundle(deployment, replica, remote_cluster=1):
    """A validly certified empty bundle from ``remote_cluster``."""
    registry = deployment.network.registry
    members = replica.members(remote_cluster)
    round_number = replica.round_number
    txn_cert = Certificate(commit_digest(remote_cluster, round_number, []))
    ready_cert = Certificate(
        ready_digest(remote_cluster, round_number, ()), kind="ready"
    )
    for member in members[:3]:  # 2f+1 of 4
        txn_cert.add(registry.sign(member, txn_cert.digest))
        ready_cert.add(registry.sign(member, ready_cert.digest))
    return OperationsBundle(
        cluster_id=remote_cluster,
        round_number=round_number,
        transactions=[],
        reconfigs=(),
        txn_certificate=txn_cert,
        recs_ready_certificate=ready_cert,
    )


class TestLocalShareCharging:
    def test_first_validated_share_pays_both_certificates(self):
        deployment = _deployment()
        replica = deployment.replicas["c0/r1"]
        bundle = _remote_bundle(deployment, replica)
        share = LocalShare(
            round_number=replica.round_number, cluster_id=1, bundle=bundle
        )
        port = deployment.network.pipeline.ports[replica.process_id]
        before = port.recv_free
        replica._on_local_share("c0/r2", share)
        assert 1 in replica.operations
        charged = port.recv_free - before
        signatures = len(bundle.txn_certificate) + len(bundle.recs_ready_certificate)
        assert signatures == 6
        assert charged == signatures * deployment.network.config.signature_verify_cost

    def test_duplicate_share_is_deduped_before_any_charge(self):
        deployment = _deployment()
        replica = deployment.replicas["c0/r1"]
        bundle = _remote_bundle(deployment, replica)
        share = LocalShare(
            round_number=replica.round_number, cluster_id=1, bundle=bundle
        )
        port = deployment.network.pipeline.ports[replica.process_id]
        replica._on_local_share("c0/r2", share)
        after_first = port.recv_free
        replica._on_local_share("c0/r3", share)  # one copy per Inter target
        assert port.recv_free == after_first

    def test_self_share_is_exempt(self):
        # An Inter receiver validated the bundle in ``_on_inter`` (where the
        # Inter's own verification_cost covered it) before sharing to
        # itself; the 0 ms loop-back must not bill the certificates twice.
        deployment = _deployment()
        replica = deployment.replicas["c0/r1"]
        bundle = _remote_bundle(deployment, replica)
        share = LocalShare(
            round_number=replica.round_number, cluster_id=1, bundle=bundle
        )
        port = deployment.network.pipeline.ports[replica.process_id]
        before = port.recv_free
        replica._on_local_share(replica.process_id, share)
        assert 1 in replica.operations
        assert port.recv_free == before

    def test_share_send_cost_is_envelope_only(self):
        deployment = _deployment()
        replica = deployment.replicas["c0/r1"]
        bundle = _remote_bundle(deployment, replica)
        share = LocalShare(
            round_number=replica.round_number, cluster_id=1, bundle=bundle
        )
        assert share.verification_cost() == 1
