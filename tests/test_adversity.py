"""Adversarial network & gray-failure pack (PR 8).

Unit coverage for the dynamic-adversity layer: trace-driven RTTs,
load-dependent congestion, the triangle-inequality RTT fallback, gray
(slow-CPU) and clock-skew knobs, the new declarative fault events, and the
fault-routing regressions the pack fixed (replica-scoped faults owned by a
non-zero shard, partition healing overlapping reconfiguration).
"""

from __future__ import annotations

import os
import types
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.harness.builder import Scenario
from repro.harness.runner import run_scenario
from repro.harness.scenario import (
    ClockSkewEvent,
    FlappingPartitionEvent,
    GrayReplicaEvent,
    RegionOutageEvent,
    ScenarioSpec,
)
from repro.net import latency as latency_module
from repro.net.adversity import (
    CongestionConfig,
    CongestionModel,
    CrossTrafficStream,
    RttTrace,
)
from repro.net.latency import region_rtt_ms


# --------------------------------------------------------------------------- #
# RttTrace
# --------------------------------------------------------------------------- #
class TestRttTrace:
    PAIR = ("us-west1", "europe-west3")

    def _trace(self):
        return RttTrace.from_points(
            {self.PAIR: [(0.0, 100.0), (1.0, 200.0), (2.0, 150.0)]}
        )

    def test_interpolates_linearly_between_breakpoints(self):
        trace = self._trace()
        assert trace.rtt_at(*self.PAIR, 0.0) == 100.0
        assert trace.rtt_at(*self.PAIR, 0.5) == 150.0
        assert trace.rtt_at(*self.PAIR, 1.0) == 200.0
        assert trace.rtt_at(*self.PAIR, 1.5) == 175.0

    def test_extends_as_constant_outside_the_trace(self):
        trace = self._trace()
        assert trace.rtt_at(*self.PAIR, -5.0) == 100.0
        assert trace.rtt_at(*self.PAIR, 99.0) == 150.0

    def test_pair_key_is_unordered(self):
        trace = self._trace()
        assert trace.rtt_at("europe-west3", "us-west1", 0.5) == 150.0

    def test_untraced_pair_returns_none(self):
        assert self._trace().rtt_at("us-west1", "asia-south1", 0.5) is None

    def test_window_min_includes_interior_breakpoints(self):
        trace = RttTrace.from_points(
            {self.PAIR: [(0.0, 100.0), (1.0, 40.0), (2.0, 100.0)]}
        )
        # The dip at t=1.0 sits strictly inside the window.
        assert trace.window_min_rtt(*self.PAIR, 0.5, 1.5) == 40.0
        # Windows not containing the dip only see their edges.
        assert trace.window_min_rtt(*self.PAIR, 1.2, 1.4) == pytest.approx(52.0)

    def test_breakpoints_are_sorted_and_unique(self):
        trace = RttTrace.from_points(
            {
                self.PAIR: [(0.0, 100.0), (1.0, 120.0)],
                ("us-west1", "asia-south1"): [(0.0, 220.0), (0.5, 230.0), (1.0, 210.0)],
            }
        )
        assert trace.breakpoints() == [0.0, 0.5, 1.0]

    def test_round_trips_through_dict(self):
        trace = self._trace()
        rebuilt = RttTrace.from_dict(trace.to_dict())
        assert rebuilt.segments == trace.segments
        assert rebuilt.to_dict() == trace.to_dict()

    def test_round_trips_through_a_json_file(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "trace.json")
        trace.to_file(path)
        loaded = RttTrace.from_file(path)
        assert loaded.segments == trace.segments
        assert loaded.to_dict() == trace.to_dict()
        assert loaded.rtt_at(*self.PAIR, 0.5) == trace.rtt_at(*self.PAIR, 0.5)

    def test_from_file_rejects_bad_inputs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RttTrace.from_file(str(tmp_path / "does-not-exist.json"))
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(ConfigurationError):
            RttTrace.from_file(str(garbled))
        array = tmp_path / "array.json"
        array.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            RttTrace.from_file(str(array))
        unsorted = tmp_path / "unsorted.json"
        unsorted.write_text('{"segments": {"a|b": [[1.0, 100.0], [0.0, 100.0]]}}')
        with pytest.raises(ConfigurationError):
            RttTrace.from_file(str(unsorted))

    def test_shipped_example_trace_loads_and_validates(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        trace = RttTrace.from_file(os.path.join(root, "examples", "rtt_trace_geo.json"))
        trace.validate()
        assert ("europe-west3", "us-west1") in trace.segments
        assert trace.rtt_at("us-west1", "europe-west3", 0.0) > 0

    def test_synthetic_is_deterministic_and_covers_duration(self):
        kwargs = dict(pairs=[(*self.PAIR, 148.0)], duration=5.0, seed=13)
        first = RttTrace.synthetic(**kwargs)
        second = RttTrace.synthetic(**kwargs)
        assert first.segments == second.segments
        series = first.segments[tuple(sorted(self.PAIR))]
        assert series[0][0] == 0.0
        assert series[-1][0] >= 5.0
        assert all(rtt > 0 for _, rtt in series)

    def test_validate_rejects_bad_traces(self):
        with pytest.raises(ConfigurationError):
            RttTrace(segments={}).validate()
        with pytest.raises(ConfigurationError):
            RttTrace(segments={self.PAIR: []}).validate()
        with pytest.raises(ConfigurationError):
            RttTrace(segments={self.PAIR: [(0.0, -1.0)]}).validate()
        with pytest.raises(ConfigurationError):
            RttTrace(segments={self.PAIR: [(1.0, 100.0), (0.0, 100.0)]}).validate()


# --------------------------------------------------------------------------- #
# Congestion model
# --------------------------------------------------------------------------- #
def _regions_stub():
    def region_of(process_id: str) -> str:
        return "us-west1" if process_id.startswith("west") else "europe-west3"

    return types.SimpleNamespace(region_of=region_of)


class TestCongestionModel:
    def _model(self, **overrides):
        fields = dict(capacity_bytes_per_sec=1.0e6, window=0.25, service_time=0.01)
        fields.update(overrides)
        return CongestionModel(CongestionConfig(**fields), _regions_stub())

    def test_idle_link_pays_nothing(self):
        model = self._model()
        # First message in a window sees zero already-accounted bytes.
        assert model.surcharge("c0", "west/a", "east/b", 10_000, 0.0) == 0.0

    def test_surcharge_grows_with_accounted_load(self):
        model = self._model()
        charges = [
            model.surcharge("c0", "west/a", "east/b", 50_000, 0.01 * i) for i in range(5)
        ]
        assert charges[0] == 0.0
        assert all(later > earlier for earlier, later in zip(charges[1:], charges[2:]))
        assert all(charge >= 0.0 for charge in charges)

    def test_window_rollover_resets_the_counters(self):
        model = self._model(window=0.25)
        for i in range(5):
            model.surcharge("c0", "west/a", "east/b", 50_000, 0.01 * i)
        # Next window starts from a clean accumulator.
        assert model.surcharge("c0", "west/a", "east/b", 50_000, 0.30) == 0.0

    def test_intra_region_traffic_is_free(self):
        model = self._model()
        for i in range(5):
            assert model.surcharge("c0", "west/a", "west/b", 1_000_000, 0.01 * i) == 0.0

    def test_utilization_is_clamped(self):
        model = self._model(max_utilization=0.95)
        model.surcharge("c0", "west/a", "east/b", 10**9, 0.0)
        charge = model.surcharge("c0", "west/a", "east/b", 1, 0.001)
        assert charge == pytest.approx(0.01 * 0.95 / 0.05)

    def test_background_stream_loads_the_link_without_messages(self):
        stream = CrossTrafficStream("us-west1", "europe-west3", 5.0e5, start=1.0, stop=2.0)
        model = self._model(streams=[stream])
        # Outside the stream's window: idle link, no surcharge.
        assert model.surcharge("c0", "west/a", "east/b", 100, 0.5) == 0.0
        assert model.surcharge("c1", "west/a", "east/b", 100, 2.0) == 0.0
        # Inside it: rho = 0.5 from background alone.
        charge = model.surcharge("c2", "west/a", "east/b", 100, 1.5)
        assert charge == pytest.approx(0.01 * 0.5 / 0.5)
        # The reverse direction carries no stream.
        assert model.surcharge("c3", "east/b", "west/a", 100, 1.5) == 0.0

    def test_accounting_keys_are_independent(self):
        model = self._model()
        for i in range(5):
            model.surcharge("c0", "west/a", "east/b", 50_000, 0.01 * i)
        # A different owner cluster has its own accumulator.
        assert model.surcharge("c1", "west/z", "east/b", 50_000, 0.06) == 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CongestionConfig(capacity_bytes_per_sec=0).validate()
        with pytest.raises(ConfigurationError):
            CongestionConfig(window=0).validate()
        with pytest.raises(ConfigurationError):
            CongestionConfig(max_utilization=1.0).validate()
        with pytest.raises(ConfigurationError):
            CongestionConfig(
                streams=[CrossTrafficStream("a", "b", 1.0, start=2.0, stop=1.0)]
            ).validate()

    def test_config_round_trips_through_dict(self):
        config = CongestionConfig(
            capacity_bytes_per_sec=2.0e7,
            streams=[CrossTrafficStream("us-west1", "europe-west3", 1.0e6, start=0.5)],
        )
        rebuilt = CongestionConfig.from_dict(config.to_dict())
        assert rebuilt.to_dict() == config.to_dict()


# --------------------------------------------------------------------------- #
# Satellite: triangle-inequality RTT fallback
# --------------------------------------------------------------------------- #
class TestTriangleFallback:
    TABLE = {
        ("atlantis-1", "us-west1"): 50.0,
        ("us-west1", "lemuria-2"): 60.0,
    }

    @pytest.fixture(autouse=True)
    def _reset_warning_memo(self):
        latency_module._estimated_pairs.clear()
        yield
        latency_module._estimated_pairs.clear()

    def test_estimates_via_hub_with_one_time_warning(self):
        with pytest.warns(RuntimeWarning, match="triangle-inequality"):
            estimate = region_rtt_ms("atlantis-1", "lemuria-2", table=self.TABLE)
        assert estimate == pytest.approx(110.0)
        # Second lookup of the same pair (either order) stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert region_rtt_ms("lemuria-2", "atlantis-1", table=self.TABLE) == pytest.approx(110.0)

    def test_explicit_entries_stay_authoritative(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert region_rtt_ms("atlantis-1", "us-west1", table=self.TABLE) == 50.0

    def test_pair_without_hub_route_still_raises(self):
        with pytest.raises(ConfigurationError):
            region_rtt_ms("atlantis-1", "mu-3", table=self.TABLE)


# --------------------------------------------------------------------------- #
# Gray-failure and clock-skew knobs
# --------------------------------------------------------------------------- #
def _tiny_deployment():
    spec = (
        Scenario("adv-knobs")
        .clusters(4, 4)
        .engine("hotstuff")
        .threads(2)
        .duration(0.5)
        .warmup(0.1)
        .seeds(3)
        .spec()
    )
    return spec.build()


class TestGrayAndSkewKnobs:
    def test_set_cpu_factor_reaches_the_network_port(self):
        deployment = _tiny_deployment()
        replica = deployment.replicas["c0/r1"]
        replica.set_cpu_factor(6.0)
        port = replica.network.pipeline.ports[replica.process_id]
        assert replica.cpu_factor == 6.0
        assert port.cpu_factor == 6.0
        replica.set_cpu_factor(1.0)
        assert port.cpu_factor == 1.0

    def test_set_timer_rate_reaches_timers_and_pools(self):
        deployment = _tiny_deployment()
        replica = deployment.replicas["c0/r1"]
        timer_before = replica.new_timer(1.0, lambda: None, name="probe-before")
        replica.set_timer_rate(2.5)
        timer_after = replica.new_timer(1.0, lambda: None, name="probe-after")
        assert timer_before.rate == 2.5  # retroactively reskewed
        assert timer_after.rate == 2.5
        assert replica._brd_timer_pool.rate == 2.5

    def test_invalid_knob_values_raise(self):
        deployment = _tiny_deployment()
        replica = deployment.replicas["c0/r0"]
        with pytest.raises(ValueError):
            replica.set_cpu_factor(0.0)
        with pytest.raises(ValueError):
            replica.set_timer_rate(-1.0)


# --------------------------------------------------------------------------- #
# Satellite: replica-scoped fault routing under forked shard workers
# --------------------------------------------------------------------------- #
class TestFaultShardRouting:
    def _spec(self, crash: bool):
        builder = (
            Scenario("adv-crash-routing")
            .clusters(4, 4, 4, 4)
            .engine("hotstuff")
            .threads(2)
            .duration(0.8)
            .warmup(0.2)
            .seeds(19)
        )
        if crash:
            # c2/r1 lives on shard 1 of a 2-way split: the fault must be
            # scheduled by the worker that owns the replica, not worker 0.
            builder = builder.crash("c2/r1", at=0.3)
        return builder.spec()

    def test_crash_on_nonzero_shard_matches_serial(self):
        serial = run_scenario(self._spec(crash=True)).to_json()
        sharded = self._spec(crash=True)
        sharded.shards = 2
        sharded.shard_parallel = True
        assert run_scenario(sharded).to_json() == serial

    def test_crash_actually_takes_effect(self):
        with_crash = run_scenario(self._spec(crash=True)).to_json()
        without = run_scenario(self._spec(crash=False)).to_json()
        assert with_crash != without

    def test_unknown_replica_raises_at_schedule_time(self):
        spec = self._spec(crash=False)
        deployment = spec.build()
        with pytest.raises(Exception):
            deployment.faults.crash_replica("c9/r9", 0.3)


# --------------------------------------------------------------------------- #
# Satellite: partition healing overlapping reconfiguration
# --------------------------------------------------------------------------- #
class TestPartitionHealing:
    def _spec(self, shards: int = 1):
        spec = (
            Scenario("adv-heal")
            .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
            .engine("hotstuff")
            .threads(2)
            .partition(0, 1, at=0.25, duration=0.2)
            .join(1, at=0.3)  # reconfiguration in flight while the link is cut
            .duration(0.8)
            .warmup(0.2)
            .seeds(23)
            .spec()
        )
        spec.shards = shards
        return spec

    def test_healing_leaves_no_stale_drop_rules(self):
        for shards in (1, 2, 4):
            spec = self._spec(shards)
            deployment = spec.build()
            deployment.run(duration=spec.duration, warmup=spec.warmup)
            for shard in deployment.shards:
                assert shard.network.pipeline.drop_rules == [], (
                    f"shards={shards}: shard {shard.index} kept a stale drop rule"
                )

    def test_drop_counts_match_across_shard_layouts(self):
        rows = {shards: run_scenario(self._spec(shards)) for shards in (1, 2, 4)}
        dropped = {shards: row.network["messages_dropped"] for shards, row in rows.items()}
        assert dropped[1] > 0, "the partition should drop cross-cluster traffic"
        assert dropped[1] == dropped[2] == dropped[4]
        # And the rows agree byte-for-byte, not just on the drop counter.
        payloads = {row.to_json() for row in rows.values()}
        assert len(payloads) == 1


# --------------------------------------------------------------------------- #
# Event grammar: validation and serialization
# --------------------------------------------------------------------------- #
class TestEventGrammar:
    def _base_spec(self):
        return (
            Scenario("adv-grammar")
            .clusters(4, 4)
            .engine("hotstuff")
            .duration(0.5)
            .seeds(3)
            .spec()
        )

    @pytest.mark.parametrize(
        "event",
        [
            GrayReplicaEvent(at=0.1, factor=0.0, replica="c0/r1"),
            GrayReplicaEvent(at=0.1, scope="replica"),  # replica missing
            GrayReplicaEvent(at=0.1, scope="leader"),  # cluster missing
            GrayReplicaEvent(at=0.1, replica="c0/r1", duration=0.0),
            ClockSkewEvent(at=0.1, rate=0.0, replica="c0/r1"),
            ClockSkewEvent(at=0.1, scope="leader"),
            FlappingPartitionEvent(cluster_a=0, cluster_b=1, at=0.1, period=0.0),
            FlappingPartitionEvent(cluster_a=0, cluster_b=1, at=0.1, period=0.2, duty=1.5),
            FlappingPartitionEvent(cluster_a=0, cluster_b=1, at=0.1, period=0.2, cycles=0),
            FlappingPartitionEvent(
                cluster_a=0, cluster_b=1, at=0.1, period=0.2, direction="sideways"
            ),
            RegionOutageEvent(region="us-west1", at=0.1, duration=0.0),
        ],
    )
    def test_validate_rejects_malformed_events(self, event):
        spec = self._base_spec()
        spec.schedule.append(event)
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_adversity_spec_round_trips_through_dict(self):
        trace = RttTrace.synthetic(
            pairs=[("us-west1", "europe-west3", 148.0)], duration=0.6, seed=5
        )
        spec = (
            Scenario("adv-roundtrip")
            .clusters((4, "us-west1"), (4, "europe-west3"))
            .engine("hotstuff")
            .threads(2)
            .gray_leader(0, at=0.2, factor=40.0, duration=0.1)
            .clock_skew("c1/r2", at=0.25, rate=0.2)
            .flapping_partition(0, 1, at=0.3, period=0.1, duty=0.4, cycles=2, direction="a_to_b")
            .region_outage("europe-west3", at=0.4, duration=0.05)
            .rtt_trace(trace)
            .congestion(capacity_bytes_per_sec=2.0e7)
            .cross_traffic("us-west1", "europe-west3", 1.0e7, start=0.2, stop=0.5)
            .duration(0.6)
            .warmup(0.1)
            .seeds(7)
            .spec()
        )
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.to_dict() == spec.to_dict()
        kinds = [type(event).kind for event in rebuilt.schedule]
        assert kinds == ["gray", "clock_skew", "flapping_partition", "region_outage"]
        assert rebuilt.rtt_trace is not None
        assert rebuilt.rtt_trace.segments == trace.segments
        assert rebuilt.congestion is not None
        assert len(rebuilt.congestion.streams) == 1

    def test_with_seed_deep_copies_trace_and_congestion(self):
        trace = RttTrace.from_points({("us-west1", "europe-west3"): [(0.0, 140.0)]})
        spec = (
            Scenario("adv-copy")
            .clusters((4, "us-west1"), (4, "europe-west3"))
            .engine("hotstuff")
            .rtt_trace(trace)
            .congestion()
            .duration(0.5)
            .seeds(3)
            .spec()
        )
        clone = spec.with_seed(99)
        assert clone.rtt_trace is not spec.rtt_trace
        assert clone.rtt_trace.segments == spec.rtt_trace.segments
        assert clone.congestion is not spec.congestion


# --------------------------------------------------------------------------- #
# strict_streams stays clean under adversity
# --------------------------------------------------------------------------- #
class TestStrictStreamsUnderAdversity:
    def test_adversity_run_is_clean_and_unchanged_under_audit(self):
        def build():
            trace = RttTrace.synthetic(
                pairs=[("us-west1", "europe-west3", 148.0)], duration=0.6, seed=11
            )
            return (
                Scenario("adv-strict")
                .clusters((4, "us-west1"), (4, "europe-west3"))
                .engine("hotstuff")
                .threads(2)
                .gray_leader(0, at=0.2, factor=30.0)
                .rtt_trace(trace)
                .congestion(capacity_bytes_per_sec=2.0e7)
                .cross_traffic("us-west1", "europe-west3", 1.5e7, start=0.2)
                .duration(0.6)
                .warmup(0.1)
                .seeds(11)
                .spec()
            )

        plain = run_scenario(build()).to_json()
        audited_spec = build()
        audited_spec.strict_streams = True
        assert run_scenario(audited_spec).to_json() == plain
