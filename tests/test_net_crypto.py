"""Tests for simulated signatures and quorum certificates."""

from __future__ import annotations

import pytest

from repro.errors import CryptoError
from repro.net.crypto import Certificate, KeyRegistry


@pytest.fixture
def keys() -> KeyRegistry:
    registry = KeyRegistry(seed=1)
    for name in ("p0", "p1", "p2", "p3"):
        registry.register(name)
    return registry


class TestSignatures:
    def test_sign_and_verify(self, keys):
        signature = keys.sign("p0", "digest-1")
        assert keys.verify(signature)

    def test_unknown_signer_rejected(self, keys):
        with pytest.raises(CryptoError):
            keys.sign("mallory", "digest")

    def test_forged_signature_fails_verification(self, keys):
        forged = keys.forge("p0", "digest-1")
        assert not keys.verify(forged)

    def test_signature_bound_to_digest(self, keys):
        signature = keys.sign("p0", "digest-1")
        tampered = type(signature)(signer="p0", digest="digest-2", token=signature.token)
        assert not keys.verify(tampered)

    def test_signature_bound_to_signer(self, keys):
        signature = keys.sign("p0", "digest-1")
        impersonated = type(signature)(signer="p1", digest="digest-1", token=signature.token)
        assert not keys.verify(impersonated)

    def test_register_is_idempotent(self, keys):
        before = keys.sign("p0", "d")
        keys.register("p0")
        after = keys.sign("p0", "d")
        assert before == after


class TestCertificates:
    def test_certificate_counts_distinct_signers(self, keys):
        cert = Certificate("d")
        for name in ("p0", "p1", "p2"):
            cert.add(keys.sign(name, "d"))
        cert.add(keys.sign("p0", "d"))  # duplicate signer
        assert len(cert) == 3
        assert cert.signers() == {"p0", "p1", "p2"}

    def test_certificate_rejects_other_digest(self, keys):
        cert = Certificate("d")
        with pytest.raises(CryptoError):
            cert.add(keys.sign("p0", "other"))

    def test_certificate_valid_requires_threshold(self, keys):
        cert = Certificate("d")
        cert.add(keys.sign("p0", "d"))
        cert.add(keys.sign("p1", "d"))
        members = ["p0", "p1", "p2", "p3"]
        assert keys.certificate_valid(cert, members, threshold=2)
        assert not keys.certificate_valid(cert, members, threshold=3)

    def test_certificate_valid_ignores_non_members(self, keys):
        keys.register("outsider")
        cert = Certificate("d")
        cert.add(keys.sign("p0", "d"))
        cert.add(keys.sign("outsider", "d"))
        assert not keys.certificate_valid(cert, ["p0", "p1", "p2"], threshold=2)

    def test_certificate_valid_ignores_forged(self, keys):
        cert = Certificate("d")
        cert.add(keys.sign("p0", "d"))
        cert.add(keys.forge("p1", "d"))
        assert not keys.certificate_valid(cert, ["p0", "p1", "p2"], threshold=2)

    def test_certificate_valid_checks_expected_digest(self, keys):
        cert = Certificate("d")
        cert.add(keys.sign("p0", "d"))
        assert not keys.certificate_valid(cert, ["p0"], threshold=1, digest="other")
        assert keys.certificate_valid(cert, ["p0"], threshold=1, digest="d")

    def test_none_certificate_is_invalid(self, keys):
        assert not keys.certificate_valid(None, ["p0"], threshold=1)

    def test_merge_and_copy(self, keys):
        a = Certificate("d")
        a.add(keys.sign("p0", "d"))
        b = Certificate("d")
        b.add(keys.sign("p1", "d"))
        a.merge(b)
        assert len(a) == 2
        copy = a.copy()
        copy.add(keys.sign("p2", "d"))
        assert len(a) == 2 and len(copy) == 3
