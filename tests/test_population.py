"""Tests for the open-loop client-population subsystem.

Covers the load shapes (semantics + tagged-dict round-trips), the
population config and presets, the ScenarioSpec JSON round-trip of the new
workload fields, fixed-seed determinism of open-loop runs per load shape,
the read-lease state machine and its end-to-end effect, the leader-hint
caching fix, multi-seed aggregation (mean/stddev/95% CI), and the gating
A/B: with the whole subsystem present, the closed-loop YCSB goldens must
stay byte-identical (no re-pin).
"""

from __future__ import annotations

import json

import pytest

from repro.consensus.interface import ReadLease
from repro.core.messages import ClientResponse
from repro.core.types import make_transaction
from repro.errors import ConfigurationError, WorkloadError
from repro.harness.builder import Scenario
from repro.harness.runner import (
    AGGREGATE_METRICS,
    ResultRow,
    ScenarioRunner,
    aggregate_rows,
    failed_row,
    run_scenario,
)
from repro.harness.scenario import ScenarioSpec
from repro.net.message import Envelope
from repro.sim.rng import SeededRng
from repro.sim.simulator import Simulator
from repro.workload.clients import WorkloadClient
from repro.workload.population import (
    POPULATION_PRESETS,
    PopulationConfig,
    population_from_dict,
    population_to_dict,
    resolve_population_preset,
)
from repro.workload.shapes import (
    SHAPE_TYPES,
    ConstantShape,
    DiurnalShape,
    RampShape,
    SpikeShape,
    StepShape,
    TraceShape,
    shape_from_dict,
    shape_to_dict,
)
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from tests.repin_goldens import e0_spec, load_goldens

ALL_SHAPES = [
    ConstantShape(rate=750.0),
    RampShape(start_rate=100.0, end_rate=900.0, start=0.5, end=2.0),
    SpikeShape(base_rate=300.0, spike_rate=1200.0, at=0.75, width=0.5),
    StepShape(initial_rate=200.0, steps=((0.6, 600.0), (1.2, 1000.0))),
    DiurnalShape(mean_rate=500.0, amplitude=300.0, period=1.5, phase=0.25),
    TraceShape(points=((0.0, 200.0), (0.8, 900.0), (1.6, 400.0))),
]


# ---------------------------------------------------------------------- #
# Load shapes: semantics and serialization
# ---------------------------------------------------------------------- #
class TestShapes:
    def test_constant(self):
        shape = ConstantShape(rate=123.0)
        assert shape.rate_at(0.0) == shape.rate_at(99.0) == 123.0

    def test_ramp_interpolates_and_holds(self):
        shape = RampShape(start_rate=100.0, end_rate=300.0, start=1.0, end=3.0)
        assert shape.rate_at(0.0) == 100.0
        assert shape.rate_at(2.0) == pytest.approx(200.0)
        assert shape.rate_at(10.0) == 300.0

    def test_spike_window_is_half_open(self):
        shape = SpikeShape(base_rate=100.0, spike_rate=900.0, at=2.0, width=1.0)
        assert shape.rate_at(1.999) == 100.0
        assert shape.rate_at(2.0) == 900.0
        assert shape.rate_at(2.999) == 900.0
        assert shape.rate_at(3.0) == 100.0

    def test_step_takes_latest_step_at_or_before(self):
        shape = StepShape(initial_rate=50.0, steps=((1.0, 100.0), (2.0, 200.0)))
        assert shape.rate_at(0.5) == 50.0
        assert shape.rate_at(1.0) == 100.0
        assert shape.rate_at(1.9) == 100.0
        assert shape.rate_at(5.0) == 200.0

    def test_diurnal_clamps_at_zero(self):
        shape = DiurnalShape(mean_rate=100.0, amplitude=500.0, period=4.0)
        assert shape.rate_at(1.0) == pytest.approx(600.0)
        assert shape.rate_at(3.0) == 0.0  # trough would be negative

    def test_trace_interpolates_and_holds_endpoints(self):
        shape = TraceShape(points=((1.0, 100.0), (3.0, 300.0)))
        assert shape.rate_at(0.0) == 100.0
        assert shape.rate_at(2.0) == pytest.approx(200.0)
        assert shape.rate_at(9.0) == 300.0

    def test_every_shape_round_trips_through_json(self):
        for shape in ALL_SHAPES:
            payload = json.loads(json.dumps(shape_to_dict(shape)))
            rebuilt = shape_from_dict(payload)
            assert rebuilt == shape
            assert type(rebuilt) is type(shape)

    def test_kind_registry_covers_every_shape(self):
        assert set(SHAPE_TYPES) == {
            "constant", "ramp", "spike", "step", "diurnal", "trace"
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            shape_from_dict({"kind": "sawtooth"})

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            ConstantShape(rate=-1.0).validate()
        with pytest.raises(WorkloadError):
            RampShape(start=2.0, end=1.0).validate()
        with pytest.raises(WorkloadError):
            SpikeShape(width=0.0).validate()
        with pytest.raises(WorkloadError):
            StepShape(steps=((2.0, 100.0), (1.0, 200.0))).validate()
        with pytest.raises(WorkloadError):
            DiurnalShape(period=0.0).validate()
        with pytest.raises(WorkloadError):
            TraceShape(points=()).validate()


# ---------------------------------------------------------------------- #
# Population config and presets
# ---------------------------------------------------------------------- #
class TestPopulationConfig:
    def test_defaults_validate(self):
        PopulationConfig().validate()

    def test_round_trips_with_and_without_shape(self):
        for shape in [None] + ALL_SHAPES:
            config = PopulationConfig(clients=5000, rate=321.0, shape=shape)
            payload = json.loads(json.dumps(population_to_dict(config)))
            assert population_from_dict(payload) == config

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            PopulationConfig(clients=0).validate()
        with pytest.raises(WorkloadError):
            PopulationConfig(arrival="bursty").validate()
        with pytest.raises(WorkloadError):
            PopulationConfig(batch_window=0.0).validate()
        with pytest.raises(WorkloadError):
            PopulationConfig(max_outstanding=0).validate()
        with pytest.raises(WorkloadError):
            PopulationConfig(shape=ConstantShape(rate=-5.0)).validate()

    def test_every_preset_is_valid_and_fresh(self):
        for name in POPULATION_PRESETS:
            config = resolve_population_preset(name)
            config.validate()
            # Presets are factories: resolving twice must not share state.
            assert resolve_population_preset(name) is not config

    def test_unknown_preset_rejected(self):
        with pytest.raises(WorkloadError):
            resolve_population_preset("tsunami")

    def test_copy_is_independent(self):
        config = PopulationConfig(rate=100.0)
        clone = config.copy()
        clone.rate = 999.0
        assert config.rate == 100.0


# ---------------------------------------------------------------------- #
# ScenarioSpec round-trip of the new workload fields
# ---------------------------------------------------------------------- #
class TestScenarioSpecRoundTrip:
    def _open_spec(self, shape) -> ScenarioSpec:
        return (
            Scenario("roundtrip")
            .clusters(4)
            .open_loop(clients=12_345, shape=shape, batch_window=0.02)
            .read_leases(True, duration=1.5)
            .duration(1.0, warmup=0.1)
            .seeds(3)
            .spec()
        )

    def test_open_loop_spec_round_trips_per_shape(self):
        for shape in ALL_SHAPES:
            spec = self._open_spec(shape)
            payload = json.loads(json.dumps(spec.to_dict(), sort_keys=True))
            rebuilt = ScenarioSpec.from_dict(payload)
            assert rebuilt.workload_model == "open"
            assert rebuilt.population == spec.population
            assert rebuilt.to_dict() == spec.to_dict()

    def test_closed_spec_defaults_round_trip(self):
        spec = Scenario("closed").clusters(4).duration(1.0).spec()
        payload = json.loads(json.dumps(spec.to_dict()))
        rebuilt = ScenarioSpec.from_dict(payload)
        assert rebuilt.workload_model == "closed"
        assert rebuilt.population is None

    def test_invalid_workload_model_rejected(self):
        spec = Scenario("bad").clusters(4).duration(1.0).spec()
        spec.workload_model = "half-open"
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_unknown_population_field_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario("bad").clusters(4).open_loop(think_time=1.0)


# ---------------------------------------------------------------------- #
# Fixed-seed determinism: same seed => byte-identical ResultRows
# ---------------------------------------------------------------------- #
def _open_loop_row(shape, seed: int = 5) -> ResultRow:
    spec = (
        Scenario(f"determinism-{type(shape).kind}")
        .clusters(4)
        .engine("hotstuff")
        .open_loop(clients=150_000, shape=shape)
        .read_leases(True)
        .duration(1.2, warmup=0.2)
        .seeds(seed)
        .spec()
    )
    return run_scenario(spec)


class TestOpenLoopDeterminism:
    @pytest.mark.parametrize("shape", ALL_SHAPES, ids=lambda s: type(s).kind)
    def test_same_seed_is_byte_identical_per_shape(self, shape):
        first = _open_loop_row(shape)
        second = _open_loop_row(shape)
        assert first.error is None
        assert first.operations > 0
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        shape = ConstantShape(rate=750.0)
        assert _open_loop_row(shape, seed=5).to_json() != _open_loop_row(shape, seed=6).to_json()


# ---------------------------------------------------------------------- #
# Scale: >= 100k simulated clients per region with O(1) state
# ---------------------------------------------------------------------- #
class TestPopulationScale:
    def test_100k_clients_per_region_sustained(self):
        spec = (
            Scenario("scale")
            .clusters(4, 4)
            .open_loop(preset="steady")
            .read_leases(True)
            .duration(2.0, warmup=0.25)
            .seeds(11)
            .spec()
        )
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        assert len(deployment.populations) == 2
        ticks = spec.duration / deployment.populations[0].config.batch_window
        for population in deployment.populations:
            # One aggregate process stands in for >= 100k users per region...
            assert population.config.clients >= 100_000
            stats = population.stats()
            assert stats["completed"] > 0
            # ...while per-population state stays O(ticks + in-flight), never
            # O(clients) or O(operations).
            assert len(population._backlog) <= ticks + 1
            assert stats["in_flight"] <= population.config.max_outstanding
            # The default deployment keeps up with the steady preset: the
            # backlog does not grow without bound.
            assert stats["backlog"] < 0.25 * stats["offered"]
        assert metrics.committed_count() > 0

    def test_offered_vs_goodput_divergence_under_overload(self):
        # A rate far beyond what the pipelining window admits: open loop
        # means offered load keeps arriving and the backlog absorbs the
        # excess — the signal closed-loop clients structurally cannot
        # produce (their offered load collapses to whatever completes).
        spec = (
            Scenario("overload")
            .clusters(4)
            .open_loop(clients=200_000, rate=30_000.0, max_outstanding=100)
            .duration(1.0, warmup=0.1)
            .seeds(11)
            .spec()
        )
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        summary = metrics.open_loop_summary()
        population = deployment.populations[0]
        assert summary["offered"] > 1.5 * summary["goodput"] * spec.duration
        assert population.backlog_size() > 0
        assert population.queueing_delay_mean() > 0.0
        # Backlog compression: tens of thousands of queued ops, O(ticks) pairs.
        assert len(population._backlog) <= spec.duration / population.config.batch_window + 1


# ---------------------------------------------------------------------- #
# Read leases
# ---------------------------------------------------------------------- #
class TestReadLease:
    def test_install_and_expiry(self):
        lease = ReadLease(duration=2.0)
        lease.install(view_ts=1, granted_at=10.0, duration=2.0)
        assert lease.valid(now=11.9, current_view_ts=1)
        assert not lease.valid(now=12.0, current_view_ts=1)

    def test_wrong_view_is_invalid(self):
        lease = ReadLease()
        lease.install(view_ts=1, granted_at=0.0, duration=5.0)
        assert not lease.valid(now=1.0, current_view_ts=2)

    def test_stale_grant_from_deposed_leader_ignored(self):
        lease = ReadLease()
        lease.install(view_ts=3, granted_at=0.0, duration=2.0)
        lease.install(view_ts=1, granted_at=0.0, duration=99.0)
        assert lease.view_ts == 3
        assert not lease.valid(now=5.0, current_view_ts=3)

    def test_view_advance_resets_expiry(self):
        lease = ReadLease()
        lease.install(view_ts=1, granted_at=0.0, duration=10.0)
        lease.install(view_ts=2, granted_at=1.0, duration=2.0)
        # The old view's generous expiry must not leak into the new view.
        assert not lease.valid(now=5.0, current_view_ts=2)
        assert lease.valid(now=2.9, current_view_ts=2)

    def test_refresh_extends_not_shrinks(self):
        lease = ReadLease()
        lease.install(view_ts=1, granted_at=0.0, duration=4.0)
        lease.install(view_ts=1, granted_at=1.0, duration=2.0)
        assert lease.expires_at == 4.0

    def test_revoke(self):
        lease = ReadLease()
        lease.install(view_ts=1, granted_at=0.0, duration=5.0)
        lease.revoke()
        assert not lease.valid(now=0.1, current_view_ts=1)

    def test_leases_serve_reads_locally_end_to_end(self):
        spec = (
            Scenario("leases-on")
            .clusters(4)
            .open_loop(preset="smoke")
            # A short lease so the first grant (half a duration after start)
            # covers most of the run instead of its tail.
            .read_leases(True, duration=0.4)
            .duration(1.5, warmup=0.2)
            .seeds(9)
            .spec()
        )
        row = run_scenario(spec)
        assert row.error is None
        assert row.population["lease_hits"] > 0
        # Reads are 85% of the mix and every non-leader replica holds a
        # lease after the first grant round, so most reads must hit.
        assert row.population["lease_hit_rate"] > 0.5

    def test_leases_off_by_default(self):
        spec = (
            Scenario("leases-off")
            .clusters(4)
            .open_loop(preset="smoke")
            .duration(1.0, warmup=0.2)
            .seeds(9)
            .spec()
        )
        row = run_scenario(spec)
        assert row.error is None
        assert row.population["lease_hits"] == 0
        assert row.population["lease_misses"] == 0


# ---------------------------------------------------------------------- #
# Leader-hint caching (closed-loop fix)
# ---------------------------------------------------------------------- #
class TestLeaderHintCaching:
    def _client(self) -> WorkloadClient:
        simulator = Simulator(seed=1)
        workload = YcsbWorkload(YcsbConfig(), SeededRng(1))
        return WorkloadClient(
            client_id="c",
            simulator=simulator,
            network=None,
            workload=workload,
            target_replicas=["r1", "r2"],
            threads=1,
        )

    def _respond(self, client: WorkloadClient, sender: str, hint: str) -> None:
        thread = client.threads[0]
        txn = make_transaction("c", sender, "read", "user1")
        thread.outstanding_txn = txn
        thread.awaiting = sender
        client._by_txn[txn.txn_id] = thread
        response = ClientResponse(txn_id=txn.txn_id, leader_hint=hint)
        client.on_message(sender, Envelope(sender=sender, payload=response))

    def test_hint_outside_initial_target_set_is_cached(self):
        # A joiner that won leadership is not in the client's start-time
        # target list; its hint must still route writes straight to it.
        client = self._client()
        self._respond(client, "r1", "joiner7")
        assert client._leader_hint == "joiner7"

    def test_suspected_hint_is_not_adopted(self):
        client = self._client()
        client._suspected.add("r2")
        self._respond(client, "r1", "r2")
        assert client._leader_hint == ""

    def test_suspecting_the_cached_leader_invalidates_it(self):
        client = self._client()
        self._respond(client, "r1", "r2")
        assert client._leader_hint == "r2"
        client._suspect("r2")
        assert client._leader_hint == ""


# ---------------------------------------------------------------------- #
# Multi-seed aggregation: mean, stddev, 95% CI
# ---------------------------------------------------------------------- #
def _row(scenario: str, seed: int, throughput: float) -> ResultRow:
    return ResultRow(
        scenario=scenario,
        seed=seed,
        engine="hotstuff",
        preset="",
        throughput=throughput,
        throughput_reads=throughput * 0.85,
        throughput_writes=throughput * 0.15,
        latency_mean=0.01,
        latency_read=0.01,
        latency_write=0.02,
        latency_p99=0.05,
        operations=int(throughput),
        rounds=10,
        reconfigs_applied=0,
        joins_completed=0,
    )


class TestAggregateRows:
    def test_mean_std_ci_across_seeds(self):
        rows = [_row("a", seed, value) for seed, value in [(1, 90.0), (2, 100.0), (3, 110.0)]]
        (aggregate,) = aggregate_rows(rows)
        assert aggregate.scenario == "a"
        assert aggregate.seeds == [1, 2, 3]
        assert aggregate.mean["throughput"] == pytest.approx(100.0)
        assert aggregate.std["throughput"] == pytest.approx(10.0)
        # Student t (dof=2) half-width: 4.303 * 10 / sqrt(3).
        assert aggregate.ci95["throughput"] == pytest.approx(4.303 * 10.0 / 3**0.5)
        assert set(aggregate.mean) == set(AGGREGATE_METRICS)
        assert "±" in aggregate.format_metric("throughput")

    def test_single_seed_has_zero_spread(self):
        (aggregate,) = aggregate_rows([_row("solo", 1, 100.0)])
        assert aggregate.std["throughput"] == 0.0
        assert aggregate.ci95["throughput"] == 0.0

    def test_failed_rows_excluded_but_reported(self):
        spec = Scenario("a").clusters(4).duration(1.0).seeds(3).spec()
        rows = [_row("a", 1, 90.0), _row("a", 2, 110.0), failed_row(spec, "boom")]
        (aggregate,) = aggregate_rows(rows)
        assert aggregate.seeds == [1, 2]
        assert aggregate.failed_seeds == [3]
        assert aggregate.mean["throughput"] == pytest.approx(100.0)

    def test_groups_preserve_first_seen_order(self):
        rows = [_row("b", 1, 10.0), _row("a", 1, 20.0), _row("b", 2, 30.0)]
        aggregates = aggregate_rows(rows)
        assert [a.scenario for a in aggregates] == ["b", "a"]

    def test_runner_aggregate_end_to_end(self):
        scenario = Scenario("agg-e2e").clusters(4).threads(2).duration(0.5, warmup=0.1)
        (aggregate,) = ScenarioRunner().aggregate(scenario, seeds=[1, 2])
        assert aggregate.seeds == [1, 2]
        assert aggregate.failed_seeds == []
        assert aggregate.mean["operations"] > 0


# ---------------------------------------------------------------------- #
# Gating A/B: closed-loop goldens stay byte-identical (NO re-pin)
# ---------------------------------------------------------------------- #
class TestClosedLoopGoldensAB:
    def test_goldens_unchanged_after_open_loop_ran_in_process(self):
        goldens = load_goldens()
        assert goldens, "goldens_e0.json missing; run `python -m tests.repin_goldens`"
        # Arm B first: a full open-loop run with leases in the same process,
        # so any global-state leakage (RNG, caches, counters) from the new
        # subsystem would poison the closed-loop run that follows.
        open_row = _open_loop_row(ConstantShape(rate=500.0))
        assert open_row.error is None
        # Arm A: the pinned closed-loop E0 scenario must still match the
        # committed goldens bit-for-bit — the new subsystem is opt-in.
        spec = e0_spec()
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        assert metrics.summary() == goldens["summary"]
        assert deployment.network.stats.snapshot() == goldens["network"]
        assert deployment.simulator.events_processed == goldens["events"]
        # And the closed-loop run never touches the open-loop counters.
        assert metrics.offered == 0
        assert metrics.lease_hits == metrics.lease_misses == 0
