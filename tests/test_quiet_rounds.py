"""Quiet-round BRD: safety under faults, traffic elision, and satellites.

The quiet path (see ``core/brd.py``) skips the Echo phase when the round's
aggregate is provably empty-and-unanimous.  These tests pin the safety
argument's load-bearing claims — a Byzantine leader cannot *forge*
emptiness, one pending request forces the full path, crashes mid-quiet-round
recover — plus the wire-traffic invariant the optimisation exists for, the
:class:`~repro.sim.simulator.DeadlinePool` the protocol timers moved onto,
and this PR's satellite bugfixes (fault-time fault resolution, partial
throughput buckets, crashing-scenario result rows).
"""

from __future__ import annotations

import pytest

from helpers import fast_config, members_fn, small_deployment
from repro.core.brd import (
    ByzantineReliableDissemination,
    CollectionEntry,
    CollectionProof,
    canonical_recs,
    ready_digest,
    submit_digest,
)
from repro.core.messages import BrdAgg, BrdEcho
from repro.core.types import join_request
from repro.harness.faults import FaultInjector
from repro.harness.metrics import MetricsCollector
from repro.harness.runner import ScenarioRunner
from repro.harness.scenario import ScenarioSpec
from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.process import Process
from repro.sim.simulator import DeadlinePool, Simulator


class BrdHost(Process):
    """A process hosting one BRD instance (mirrors test_core_brd's host)."""

    def __init__(self, process_id, simulator, network, members, leader, timeout=1.0):
        super().__init__(process_id, simulator)
        network.register(self, "us-west1")
        self.delivered = []
        self.complaints = []
        self.brd = ByzantineReliableDissemination(
            owner=process_id,
            cluster_id=0,
            round_number=1,
            members_fn=members_fn(members),
            faults_fn=lambda: (len(members) - 1) // 3,
            network=network,
            simulator=simulator,
            leader=leader,
            view_ts=0,
            timeout=timeout,
            on_deliver=lambda recs, proof, cert: self.delivered.append((recs, proof, cert)),
            on_complain=self.complaints.append,
        )

    def on_message(self, sender, envelope):
        self.brd.on_message(sender, envelope)


def build_cluster(size=4, seed=9, timeout=1.0):
    simulator = Simulator(seed=seed)
    registry = KeyRegistry(seed=seed)
    network = Network(
        simulator, LatencyModel(simulator.rng), registry, NetworkConfig(cpu_model=False)
    )
    members = [f"p{i}" for i in range(size)]
    hosts = [BrdHost(m, simulator, network, members, "p0", timeout) for m in members]
    return simulator, network, hosts


class TestQuietHappyPath:
    def test_empty_round_elides_echo_and_delivers_uniformly(self):
        simulator, network, hosts = build_cluster()
        for host in hosts:
            host.brd.broadcast(())
        simulator.run(until=5.0)
        for host in hosts:
            assert len(host.delivered) == 1
            recs, proof, cert = host.delivered[0]
            assert recs == ()
        assert network.stats.by_type.get("BrdEcho", 0) == 0, "quiet rounds must not echo"
        assert network.stats.by_type.get("BrdQuietDeliver", 0) > 0

    def test_quiet_certificate_is_the_standard_ready_certificate(self):
        simulator, network, hosts = build_cluster()
        for host in hosts:
            host.brd.broadcast(())
        simulator.run(until=5.0)
        _, _, cert = hosts[2].delivered[0]
        members = [h.process_id for h in hosts]
        # Remote clusters validate the quiet Σ' exactly like the full path's.
        assert network.registry.certificate_valid(
            cert, members, threshold=3, digest=ready_digest(0, 1, ())
        )

    def test_quiet_round_message_count_is_linear(self):
        simulator, network, hosts = build_cluster()
        for host in hosts:
            host.brd.broadcast(())
        simulator.run(until=5.0)
        by_type = network.stats.by_type
        n = len(hosts)
        # submit + agg + ready-to-leader + deliver: each one message per
        # replica (loop-backs included in the census), nothing quadratic.
        assert by_type["BrdSubmit"] == n
        assert by_type["BrdAgg"] == n
        assert by_type["BrdReady"] == n
        assert by_type["BrdQuietDeliver"] == n
        assert "BrdEcho" not in by_type


class TestQuietRoundSafety:
    def _empty_digest(self):
        return submit_digest(0, 1, ())

    def test_byzantine_leader_cannot_forge_empty_unanimity(self):
        """With f+1 correct replicas holding a request, no quiet proof exists."""
        simulator, network, hosts = build_cluster()
        request = (join_request("newbie", 0),)
        # p1 and p2 (f+1 = 2 correct replicas) hold the request; p3 is empty.
        hosts[1].brd.broadcast(request)
        hosts[2].brd.broadcast(request)
        hosts[3].brd.broadcast(())
        # The Byzantine leader p0 needs 2f+1 = 3 signed *empty* submissions
        # but can only produce two real ones (its own and p3's); p1's must be
        # forged — and forged signatures do not verify.
        entries = (
            CollectionEntry("p0", (), network.registry.sign("p0", self._empty_digest())),
            CollectionEntry("p3", (), network.registry.sign("p3", self._empty_digest())),
            CollectionEntry("p1", (), network.registry.forge("p1", self._empty_digest())),
        )
        proof = CollectionProof(cluster_id=0, round_number=1, entries=entries)
        agg = BrdAgg(
            cluster_id=0,
            round_number=1,
            view_ts=0,
            recs=(),
            collection_certificate=proof,
            attestation_kind="collection",
        )
        network.multicast(
            "p0",
            [h.process_id for h in hosts],
            agg,
            network.registry.sign("p0", agg.digest()),
        )
        simulator.run(until=5.0)
        for host in hosts[1:]:
            # The forged proof is rejected: nobody goes quiet, nobody
            # delivers the empty set.  (The *honest* leader machinery at p0
            # still aggregates the real submissions, so the request itself
            # is delivered through the full path — exactly the "one pending
            # request forces the full path" guarantee.)
            assert not host.brd.quiet
            for recs, _proof, _cert in host.delivered:
                assert recs != (), "forged emptiness must never deliver the empty set"
                assert join_request("newbie", 0) in recs

    def test_censorship_of_unstored_request_stays_uniform(self):
        """A leader may quietly omit a request held by a single replica (the
        full path permits the same), but delivery must stay uniform: the
        censored replica delivers the empty set too."""
        simulator, network, hosts = build_cluster()
        hosts[1].brd.broadcast((join_request("newbie", 0),))
        hosts[2].brd.broadcast(())
        hosts[3].brd.broadcast(())
        entries = tuple(
            CollectionEntry(p, (), network.registry.sign(p, self._empty_digest()))
            for p in ("p0", "p2", "p3")  # a real 2f+1 quorum of empty submissions
        )
        proof = CollectionProof(cluster_id=0, round_number=1, entries=entries)
        agg = BrdAgg(
            cluster_id=0,
            round_number=1,
            view_ts=0,
            recs=(),
            collection_certificate=proof,
            attestation_kind="collection",
        )
        network.multicast(
            "p0",
            [h.process_id for h in hosts],
            agg,
            network.registry.sign("p0", agg.digest()),
        )
        simulator.run(until=5.0)
        delivered = [h.delivered[0][0] for h in hosts[1:] if h.delivered]
        assert len(delivered) == 3
        assert all(recs == () for recs in delivered), "uniform empty delivery"

    def test_one_pending_request_forces_the_full_path(self):
        """Exactly one replica with a pending request: an honest leader's
        union is non-empty, so everyone runs Echo/Ready and delivers it."""
        simulator, network, hosts = build_cluster()
        request = join_request("newbie", 0)
        for host in hosts:
            host.brd.broadcast((request,) if host.process_id == "p2" else ())
        simulator.run(until=5.0)
        for host in hosts:
            assert len(host.delivered) == 1
            assert request in host.delivered[0][0]
            assert not host.brd.quiet
        assert network.stats.by_type.get("BrdEcho", 0) > 0, "full path must echo"

    def test_crash_mid_quiet_round_recovers_after_leader_change(self):
        simulator, network, hosts = build_cluster(timeout=0.5)
        for host in hosts:
            host.brd.broadcast(())
        # Step until the followers accepted the quiet aggregate (readied the
        # empty set) but nobody delivered yet, then crash the leader: the
        # deliver marker is never broadcast.
        while not hosts[1].brd.quiet:
            assert simulator.step(), "quiet aggregate never arrived"
        assert not hosts[1].brd.delivered
        hosts[0].crash()

        def rotate():
            for host in hosts[1:]:
                host.brd.new_leader("p1", 1)

        simulator.schedule(1.0, rotate)
        simulator.run(until=6.0)
        assert all(host.complaints for host in hosts[1:]), "timeout must complain"
        for host in hosts[1:]:
            assert len(host.delivered) == 1
            assert host.delivered[0][0] == ()

    def test_quiet_acceptor_hands_proof_to_new_leader(self):
        """A quiet acceptor's stored valid set (the collection proof) is
        accepted by the next leader's validation."""
        simulator, network, hosts = build_cluster(timeout=0.5)
        for host in hosts:
            host.brd.broadcast(())
        while not hosts[1].brd.quiet:
            simulator.step()
        valid = hosts[1].brd.valid
        assert valid is not None and valid.kind == "collection"
        assert hosts[2].brd._attestation_valid((), valid.certificate, "collection")


class TestQuietRoundsEndToEnd:
    def test_steady_state_deployment_sends_no_echo_submit_or_agg(self):
        deployment = small_deployment(seed=21, client_threads=4)
        deployment.run(duration=2.0)
        by_type = deployment.network.stats.by_type
        assert by_type.get("BrdEcho", 0) == 0, "steady state must take the quiet path"
        # Submissions ride the commit votes, the quiet proof rides the
        # decide broadcast (HotStuff), so neither explicit message appears.
        assert by_type.get("BrdSubmit", 0) == 0
        assert by_type.get("BrdAgg", 0) == 0
        assert by_type.get("BrdReady", 0) > 0
        assert by_type.get("BrdQuietDeliver", 0) > 0
        rounds = max(r.executed_rounds for r in deployment.replicas.values())
        assert rounds > 20, "quiet rounds must not stall progress"

    def test_bftsmart_steady_state_elides_echo_and_submit(self):
        deployment = small_deployment(seed=22, engine="bftsmart", client_threads=4)
        deployment.run(duration=2.0)
        by_type = deployment.network.stats.by_type
        assert by_type.get("BrdEcho", 0) == 0
        assert by_type.get("BrdSubmit", 0) == 0
        # BFT-SMaRt has no decide broadcast to piggyback on, so the quiet
        # aggregate stays an explicit (linear) BrdAgg.
        assert by_type.get("BrdAgg", 0) > 0
        rounds = max(r.executed_rounds for r in deployment.replicas.values())
        assert rounds > 20

    def test_reconfiguration_still_flows_through_quiet_regime(self):
        deployment = small_deployment(seed=23, client_threads=2)
        joiner = deployment.add_joiner(0, at_time=0.5, replica_id="newbie")
        deployment.run(duration=6.0)
        assert joiner.mode == "active", "join must complete despite quiet rounds"
        assert "newbie" in deployment.active_view(0)
        # The join round ran the full path: at least one Echo was sent.
        assert deployment.network.stats.by_type.get("BrdEcho", 0) > 0

    def test_wire_messages_per_committed_op_stays_pinned(self):
        """The quiet-round invariant, pinned like PR 4's kernel-events pin.

        Deterministic per seed.  At the quiet-round commit this measures
        ~4.20 on the golden E0 shape (6.52 before); the ceiling trips long
        before the n^2 Echo/Ready exchange could sneak back (which alone
        pushes it past 5).
        """
        from repin_goldens import e0_spec

        spec = e0_spec()
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        wire = deployment.network.stats.messages_sent
        ratio = wire / metrics.committed_count()
        assert ratio <= 4.40, f"wire messages per committed op regressed: {ratio:.3f}"


class TestDeadlinePool:
    def test_fires_in_deadline_order_with_one_resident_event(self):
        simulator = Simulator()
        fired = []
        pool = DeadlinePool(simulator, fired.append, name="t")
        pool.arm("a", 3.0)
        pool.arm("b", 1.0)
        pool.arm("c", 2.0)
        assert simulator.pending_events <= 2  # one chase (plus one re-chase)
        simulator.run(until=10.0)
        assert fired == ["b", "c", "a"]

    def test_disarm_is_lazy_and_silent(self):
        simulator = Simulator()
        fired = []
        pool = DeadlinePool(simulator, fired.append)
        pool.arm("a", 1.0)
        pool.disarm("a")
        simulator.run(until=5.0)
        assert fired == []
        assert not pool.pending("a")

    def test_rearm_moves_the_deadline_forward(self):
        simulator = Simulator()
        fired = []
        pool = DeadlinePool(simulator, lambda key: fired.append((key, simulator.now)))
        pool.arm("a", 1.0)
        simulator.run(until=0.5)
        pool.arm("a", 1.0)  # now due at 1.5, not 1.0
        simulator.run(until=5.0)
        assert fired == [("a", 1.5)]

    def test_callback_may_rearm_its_own_key(self):
        simulator = Simulator()
        fired = []

        def on_fire(key):
            fired.append(simulator.now)
            if len(fired) < 3:
                pool.arm(key, 1.0)

        pool = DeadlinePool(simulator, on_fire)
        pool.arm("a", 1.0)
        simulator.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_shorter_deadline_undercuts_the_resident_event(self):
        simulator = Simulator()
        fired = []
        pool = DeadlinePool(simulator, lambda key: fired.append((key, simulator.now)))
        pool.arm("slow", 5.0)
        pool.arm("fast", 1.0)
        simulator.run(until=10.0)
        assert fired == [("fast", 1.0), ("slow", 5.0)]

    def test_pooled_timer_facade_matches_timer_interface(self):
        simulator = Simulator()
        fired = []
        pool = DeadlinePool(simulator, fired.append)
        timer = pool.timer("k", 2.0)
        timer.start()
        assert timer.pending
        assert timer.remaining() == pytest.approx(2.0)
        timer.stop()
        assert not timer.pending
        timer.start(1.0)
        simulator.run(until=5.0)
        assert fired == ["k"]


class TestFaultTimeResolution:
    def test_crash_leader_targets_the_leader_at_fault_time(self):
        """Scheduling a leader crash before an earlier leader change must
        crash the *new* leader, not the install-time one."""
        deployment = small_deployment(seed=31, client_threads=2)
        injector = FaultInjector(deployment)
        # First fault: the original leader (c0/r0) dies at 0.8; the cluster
        # elects c0/r1.  Second fault, scheduled up front: "crash the
        # leader at t=6" — by then that is c0/r1.
        injector.crash_replica("c0/r0", at_time=0.8)
        injector.crash_leader(0, at_time=6.0)
        deployment.run(duration=7.0)
        survivor = deployment.replicas["c0/r2"]
        elected = survivor.leader
        assert elected != "c0/r0", "leader change never happened"
        assert deployment.replicas[elected].crashed or elected not in (
            "c0/r0",
            "c0/r1",
        ), "the fault-time leader must have been crashed"
        assert deployment.replicas["c0/r1"].crashed

    def test_partition_applies_to_replica_joining_after_install(self):
        deployment = small_deployment(seed=32, client_threads=2)
        injector = FaultInjector(deployment)
        injector.partition_clusters(0, 1, at_time=1.0, duration=10.0)
        joiner = deployment.add_joiner(0, at_time=2.5, replica_id="late")
        deployment.run(duration=4.0)
        network = deployment.network
        assert joiner.mode != "idle"
        assert network._should_drop("late", "c1/r0", None), (
            "a replica joining after the partition installed must be partitioned"
        )
        assert network._should_drop("c1/r0", "late", None)
        assert not network._should_drop("late", "c0/r0", None)


class TestThroughputTimeseriesPartialBucket:
    def test_last_partial_bucket_normalised_by_actual_width(self):
        metrics = MetricsCollector()
        # A steady 10 ops/sec for 2.5 seconds.
        for index in range(25):
            metrics.record_transaction(
                txn_id=f"t{index}", op="write", latency=0.01,
                completed_at=index * 0.1, client_id="c",
            )
        series = metrics.throughput_timeseries(bucket=1.0, until=2.5)
        assert [start for start, _ in series] == [0.0, 1.0, 2.0]
        full_buckets = [rate for _, rate in series[:-1]]
        assert all(rate == pytest.approx(10.0) for rate in full_buckets)
        # The 0.5 s tail holds 5 completions: 10 ops/sec, not 5.
        assert series[-1][1] == pytest.approx(10.0)

    def test_exact_multiple_keeps_full_width(self):
        metrics = MetricsCollector()
        for index in range(20):
            metrics.record_transaction(
                txn_id=f"t{index}", op="write", latency=0.01,
                completed_at=index * 0.1, client_id="c",
            )
        series = metrics.throughput_timeseries(bucket=1.0, until=2.0)
        assert len(series) == 2
        assert all(rate == pytest.approx(10.0) for _, rate in series)


class TestRunnerSurfacesWorkerCrashes:
    def _specs(self):
        good = ScenarioSpec(name="ok", clusters=[(4, "us-west1")], duration=0.2, seed=5)
        bad = ScenarioSpec(name="broken", clusters=[(0, "us-west1")], duration=0.2, seed=6)
        return [good, bad]

    def test_serial_grid_reports_crash_as_failed_row(self):
        rows = ScenarioRunner(workers=1).run(self._specs())
        assert len(rows) == 2
        assert rows[0].error is None and rows[0].operations > 0
        assert rows[1].error is not None
        assert rows[1].scenario == "broken" and rows[1].seed == 6
        assert "seed 6" in rows[1].error and "Traceback" in rows[1].error

    def test_pool_grid_reports_crash_without_dropping_other_seeds(self):
        rows = ScenarioRunner(workers=2, mp_context="fork").run(self._specs())
        assert len(rows) == 2
        assert rows[0].error is None and rows[0].operations > 0
        failed = rows[1]
        assert failed.error is not None and failed.seed == 6
        assert "Traceback" in failed.error

    def test_failed_rows_round_trip_through_json(self):
        import json

        rows = ScenarioRunner(workers=1).run(self._specs())
        from repro.harness.runner import ResultRow

        clone = ResultRow.from_dict(json.loads(rows[1].to_json()))
        assert clone.error == rows[1].error
