"""Importable helpers shared across the test suite.

These used to live in ``conftest.py``, but test modules importing them via
``from conftest import ...`` resolved whichever ``conftest.py`` appeared
first on ``sys.path`` (the benchmarks' one, breaking collection).  A
uniquely named module keeps the import unambiguous.
"""

from __future__ import annotations

from typing import Callable, Iterable, Tuple

from repro.core.config import HamavaConfig
from repro.harness.deployment import Deployment, DeploymentSpec


def members_fn(members: Iterable[str]) -> Callable[[], Tuple[str, ...]]:
    """A ``members_fn`` stub honouring the sorted-tuple contract.

    The engines, BRD, and leader election no longer defensively re-sort
    membership (see ``consensus/interface.py``), so every stub handed to
    them must return a *sorted tuple* — this helper replaces the old
    ``lambda: list(members)`` stubs, which returned unsorted mutable lists.
    """
    frozen = tuple(sorted(members))
    return lambda: frozen


def fast_config(engine: str = "hotstuff", **overrides) -> HamavaConfig:
    """A Hamava configuration with short fault-detection timeouts for tests."""
    config = HamavaConfig().with_engine(engine).with_timeouts(
        remote_timeout=2.0, instance_timeout=2.0, brd_timeout=2.0
    )
    config.batch_timeout = 0.01
    config.retry_timeout = 2.0
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def small_deployment(
    clusters=((4, "us-west1"), (4, "us-west1")),
    engine: str = "hotstuff",
    seed: int = 11,
    client_threads: int = 4,
    config: HamavaConfig | None = None,
    **spec_kwargs,
) -> Deployment:
    """Build a small two-cluster deployment suitable for integration tests."""
    spec = DeploymentSpec(
        clusters=list(clusters),
        config=config or fast_config(engine),
        seed=seed,
        client_threads=client_threads,
        **spec_kwargs,
    )
    return Deployment(spec)


__all__ = ["fast_config", "members_fn", "small_deployment"]
