"""Fault tolerance: crashes, leader failure, Byzantine leaders, attacks."""

from __future__ import annotations

import pytest

from helpers import fast_config, small_deployment
from repro.harness.faults import FaultInjector


class TestCrashFaults:
    def test_f_non_leader_crashes_tolerated(self):
        deployment = small_deployment(
            clusters=((4, "us-west1"), (4, "us-west1")), seed=41, client_threads=8
        )
        injector = FaultInjector(deployment)
        victims = injector.crash_non_leaders(0, at_time=0.5) + injector.crash_non_leaders(1, at_time=0.5)
        metrics = deployment.run(duration=5.0, warmup=0.0)
        assert len(victims) == 2  # f = 1 per cluster
        # The system keeps committing after the crashes (clients need a retry
        # period to fail over away from the crashed replicas).
        late = [r for r in metrics.transactions if r.completed_at > 3.5 and r.op == "write"]
        assert late, "no writes committed after non-leader crashes"

    def test_leader_crash_recovers_via_local_leader_change(self):
        deployment = small_deployment(seed=42)
        injector = FaultInjector(deployment)
        old_leader = injector.crash_leader(0, at_time=0.8)
        metrics = deployment.run(duration=6.0, warmup=0.0)
        survivor = next(
            r for r in deployment.cluster_replicas(0) if r.process_id != old_leader
        )
        assert survivor.leader != old_leader
        assert survivor.leader_ts >= 1
        late = [r for r in metrics.transactions if r.completed_at > 4.0 and r.op == "write"]
        assert late, "cluster did not recover after leader crash"

    def test_more_than_f_crashes_stalls_cluster(self):
        deployment = small_deployment(seed=43)
        injector = FaultInjector(deployment)
        # Crash 2 of 4 replicas (f = 1): quorum of 3 is no longer available.
        injector.crash_replica("c0/r2", at_time=0.5)
        injector.crash_replica("c0/r3", at_time=0.5)
        deployment.run(duration=3.0)
        stalled_rounds = deployment.replicas["c0/r0"].executed_rounds
        healthy_deployment = small_deployment(seed=43)
        healthy_deployment.run(duration=3.0)
        healthy_rounds = healthy_deployment.replicas["c0/r0"].executed_rounds
        # Beyond-f crashes lose the quorum: the cluster stops committing new
        # rounds shortly after the fault, far short of the healthy run.
        assert stalled_rounds < healthy_rounds / 2


class TestByzantineLeader:
    def test_silent_leader_triggers_remote_leader_change(self):
        deployment = small_deployment(seed=44)
        injector = FaultInjector(deployment)
        bad = injector.silence_leader_inter_broadcast(0, at_time=0.8)
        metrics = deployment.run(duration=8.0, warmup=0.0)
        replica = deployment.replicas["c0/r1"]
        assert replica.leader != bad, "Byzantine leader was never replaced"
        assert replica.leader_ts >= 1
        # Progress resumes after the remote leader change.
        late = [r for r in metrics.transactions if r.completed_at > 6.0 and r.op == "write"]
        assert late, "no writes after the remote leader change"

    def test_remote_cluster_detects_fault_not_local(self):
        deployment = small_deployment(seed=45)
        injector = FaultInjector(deployment)
        injector.silence_leader_inter_broadcast(0, at_time=0.8)
        deployment.run(duration=8.0)
        # The change was requested through the remote-complaint path at
        # cluster 0's replicas (next-leader), so their rlc counters moved.
        changed = [
            r.rlc.remote_changes_applied for r in deployment.cluster_replicas(0)
            if r.process_id != deployment.replicas["c0/r1"].leader
        ]
        assert any(count >= 1 for count in changed)


class TestForgeryResistance:
    def test_stale_threshold_attack_rejected(self):
        """§II-B attack: a certificate with too few signatures must be rejected
        by a replica whose view says the cluster is larger."""
        deployment = small_deployment(clusters=((4, "us-west1"), (7, "us-west1")), seed=46)
        deployment.run(duration=0.5)
        receiver = deployment.replicas["c0/r0"]
        # Build a bundle for cluster 1 whose certificate carries only
        # 2*f+1 = 3 signatures computed against a *stale* (4-member) view,
        # while the receiver knows cluster 1 has 7 members (threshold 5).
        from repro.consensus.interface import commit_digest
        from repro.core.types import OperationsBundle
        from repro.net.crypto import Certificate

        transactions = []
        digest = commit_digest(1, receiver.round_number, transactions)
        forged_cert = Certificate(digest)
        for signer in ["c1/r0", "c1/r1", "c1/r2"]:
            forged_cert.add(deployment.registry.sign(signer, digest))
        bundle = OperationsBundle(
            cluster_id=1,
            round_number=receiver.round_number,
            transactions=transactions,
            reconfigs=(),
            txn_certificate=forged_cert,
        )
        assert not receiver._bundle_valid(1, receiver.round_number, bundle)

    def test_valid_bundle_accepted(self):
        deployment = small_deployment(seed=47)
        deployment.run(duration=1.5)
        replica = deployment.replicas["c0/r0"]
        # Whatever cluster 1 actually shipped must have validated.
        assert replica.executed_rounds > 0
